//! `gnnone-prof` — offline analysis of `--metrics` / `--trace` output,
//! plus the registry-wide sanitizer sweep.
//!
//! ```text
//! gnnone-prof show     metrics.json           per-kernel summary table
//! gnnone-prof diff     a.json b.json          A-vs-B comparison by kernel
//! gnnone-prof trace    trace.json             chrome-trace sanity summary
//! gnnone-prof sanitize [figure flags]         sweep every kernel under the sanitizer
//! ```
//!
//! `show` and `diff` read [`MetricsSnapshot`] files written by any figure
//! binary's `--metrics` flag (or by [`MetricsSnapshot::write`] directly);
//! `trace` reads the Chrome-trace JSON written by `--trace`. See
//! `docs/PROFILING.md` for the counter definitions and a worked diff
//! example.
//!
//! `sanitize` takes the figure binaries' flags (`--scale`, `--dims`,
//! `--datasets`, `--out`), runs every registered kernel on the selected
//! graphs with the sanitizer attached, prints per-kernel verdicts, and
//! exits non-zero when any finding fires. See `docs/SANITIZER.md`.
//!
//! `fuzz` drives every registered kernel through the watchdog (and, with
//! `--sanitize`, the sanitizer) over the adversarial corpus from
//! `gnnone_sparse::gen::adversarial` plus any `--datasets` Table 1 graphs
//! at tiny scale. Malformed inputs must be rejected with typed errors;
//! valid-extreme inputs must run clean. Exits non-zero on any panic,
//! abort, sanitizer finding, or validation hole. See `docs/ROBUSTNESS.md`.
//!
//! `verify` runs the static kernel verifier: every registry kernel's
//! symbolic access summary is checked (race freedom, bounds, barrier
//! epochs, watchdog budget) under both execution models on the selected
//! graphs, plus the 24-point config lattice for the tunable GNNOne
//! kernels. Exits non-zero unless every obligation is `Proved` — a kernel
//! without a summary is a coverage failure. See `docs/STATIC_ANALYSIS.md`.

use std::process::ExitCode;

use gnnone_kernels::sanitize::{sweep_graph, total_findings};
use gnnone_sim::jsonio::{self, Json};
use gnnone_sim::{Gpu, KernelMetrics, MetricsSnapshot, SanitizeConfig};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("show") if args.len() == 2 => show(&args[1]),
        Some("diff") if args.len() == 3 => diff(&args[1], &args[2]),
        Some("trace") if args.len() == 2 => trace_summary(&args[1]),
        Some("sanitize") => sanitize_cmd(&args[1..]),
        Some("verify") => verify_cmd(&args[1..]),
        Some("fuzz") => fuzz_cmd(&args[1..]),
        Some("chaos") => chaos_cmd(&args[1..]),
        Some("shard") => shard_cmd(&args[1..]),
        Some("bench") => bench_cmd(&args[1..]),
        Some("fuse") => fuse_cmd(&args[1..]),
        Some("serve-bench") => serve_bench_cmd(&args[1..]),
        Some("--help") | Some("-h") => {
            usage();
            Ok(())
        }
        _ => {
            usage();
            Err("expected: show <metrics.json> | diff <a.json> <b.json> | \
                 trace <trace.json> | sanitize [flags] | verify [flags] | \
                 fuzz [flags] | chaos [flags] | shard [flags] | bench [flags] | \
                 fuse [flags] | serve-bench [flags]"
                .to_string())
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("gnnone-prof: {e}");
            ExitCode::FAILURE
        }
    }
}

fn usage() {
    eprintln!(
        "usage:\n  gnnone-prof show <metrics.json>\n  \
         gnnone-prof diff <a.json> <b.json>\n  \
         gnnone-prof trace <trace.json>\n  \
         gnnone-prof sanitize [--scale tiny|small|medium] [--dims 6,16] \
         [--datasets G0,G3] [--out report.json]\n  \
         gnnone-prof verify [--scale tiny|small|medium] [--dims 6,16] \
         [--datasets G0,G3] [--out verdicts.json]\n  \
         gnnone-prof fuzz [--seed N|0xHEX] [--sanitize] [--datasets G0,G3] \
         [--f 8] [--out report.json]\n  \
         gnnone-prof chaos [--seed N|0xHEX] [--datasets G0,G5] [--f 8] \
         [--schedule-seeds 8] [--kernels GnnOne,FusedGAT] [--out report.json]\n  \
         gnnone-prof shard [--seed N|0xHEX] [--datasets G0,G5] [--f 8] \
         [--shards 2,4,8] [--seeds 8] [--threads N] \
         [--kernels GnnOne,FusedGAT] [--out report.json]\n  \
         gnnone-prof bench [--scale tiny|small|medium] [--datasets G0,G5] \
         [--f 32] [--threads N] [--warmup 2] [--repeats 5] \
         [--kernels FusedGAT,GnnOne-UAddV] [--out BENCH_NATIVE.json]\n  \
         gnnone-prof fuse [--scale tiny|small|medium] [--datasets G0,G5] \
         [--f 8] [--threads N] [--warmup 2] [--repeats 5] \
         [--kernels FusedGAT,GnnOne] \
         [--out fusion.json] [--append BENCH_NATIVE.json]\n  \
         gnnone-prof serve-bench [--dataset G2] [--scale tiny|small|medium] \
         [--model gcn|gat] [--backend sim|native] [--seed N|0xHEX] \
         [--requests N] [--out BENCH_SERVE.json]"
    );
}

fn parse_seed(text: &str) -> Result<u64, String> {
    let parsed = if let Some(hex) = text.strip_prefix("0x").or_else(|| text.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16)
    } else {
        text.parse()
    };
    parsed.map_err(|_| format!("bad --seed `{text}` (expected decimal or 0x-hex)"))
}

fn fuzz_cmd(args: &[String]) -> Result<(), String> {
    let mut opts = gnnone_bench::fuzz::FuzzOpts {
        sanitize: false,
        dataset_ids: Vec::new(),
        ..Default::default()
    };
    let mut out: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match arg.as_str() {
            "--seed" => opts.seed = parse_seed(&value("--seed")?)?,
            "--sanitize" => opts.sanitize = true,
            "--datasets" => {
                opts.dataset_ids = value("--datasets")?
                    .split(',')
                    .filter(|s| !s.is_empty())
                    .map(str::to_string)
                    .collect();
            }
            "--f" => {
                opts.f = value("--f")?
                    .parse()
                    .map_err(|_| "bad --f (expected a positive integer)".to_string())?;
            }
            "--out" => out = Some(value("--out")?),
            other => return Err(format!("unknown fuzz flag `{other}`")),
        }
    }

    println!(
        "fuzz: seed {:#x}, sanitizer {}, control datasets [{}]",
        opts.seed,
        if opts.sanitize { "on" } else { "off" },
        opts.dataset_ids.join(", ")
    );
    let report = gnnone_bench::fuzz::run_fuzz(&opts)?;
    println!(
        "{} case(s), {} kernel launch(es), {} structured rejection(s), {} finding(s)",
        report.cases_run,
        report.kernels_driven,
        report.rejected.len(),
        report.findings.len()
    );
    for (case, err) in &report.rejected {
        println!("  rejected {case}: {err}");
    }
    for finding in &report.findings {
        println!("  FINDING {finding}");
    }
    if let Some(path) = &out {
        std::fs::write(path, report.to_json().to_string_pretty())
            .map_err(|e| format!("write {path}: {e}"))?;
        println!("report: {path}");
    }
    if !report.clean() {
        return Err(format!(
            "{} fuzz finding(s) — reproduce with --seed {:#x}",
            report.findings.len(),
            report.seed
        ));
    }
    println!("fuzz sweep clean");
    Ok(())
}

fn chaos_cmd(args: &[String]) -> Result<(), String> {
    use gnnone_bench::chaos::{run_chaos, ChaosOpts};
    use gnnone_sim::Verdict;

    let mut opts = ChaosOpts::default();
    let mut out: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match arg.as_str() {
            "--seed" => opts.seed = parse_seed(&value("--seed")?)?,
            "--datasets" => {
                opts.dataset_ids = value("--datasets")?
                    .split(',')
                    .filter(|s| !s.is_empty())
                    .map(str::to_string)
                    .collect();
            }
            "--f" => {
                opts.f = value("--f")?
                    .parse()
                    .map_err(|_| "bad --f (expected a positive integer)".to_string())?;
            }
            "--schedule-seeds" => {
                opts.schedule_seeds = value("--schedule-seeds")?.parse().map_err(|_| {
                    "bad --schedule-seeds (expected a non-negative integer)".to_string()
                })?;
            }
            "--kernels" => {
                opts.kernels = value("--kernels")?
                    .split(',')
                    .filter(|s| !s.is_empty())
                    .map(str::to_string)
                    .collect();
            }
            "--out" => out = Some(value("--out")?),
            other => return Err(format!("unknown chaos flag `{other}`")),
        }
    }

    println!(
        "chaos: fault seed {:#x}, datasets [{}], f {}, {} schedule seed(s)",
        opts.seed,
        opts.dataset_ids.join(", "),
        opts.f,
        opts.schedule_seeds
    );
    let report = run_chaos(&opts)?;
    print!("{}", report.resilience_matrix());
    println!(
        "{} run(s): {} detected, {} aborted, {} declined, {} masked, \
         {} not-injected, {} SILENT",
        report.cells.len(),
        report.verdict_count(Verdict::DetectedBySanitizer),
        report.verdict_count(Verdict::AbortedByWatchdog),
        report.verdict_count(Verdict::StructuredDecline),
        report.verdict_count(Verdict::Masked),
        report.verdict_count(Verdict::NotInjected),
        report.verdict_count(Verdict::SilentDataCorruption),
    );
    let schedule_ok = report.schedule.iter().filter(|s| s.identical).count();
    println!(
        "schedule determinism: {}/{} kernels bit-identical across {} seeds",
        schedule_ok,
        report.schedule.len(),
        report.schedule.first().map_or(0, |s| s.seeds_checked)
    );
    if let Some(path) = &out {
        std::fs::write(path, report.to_json().to_string_pretty())
            .map_err(|e| format!("write {path}: {e}"))?;
        println!("report: {path}");
    }
    if !report.clean() {
        for c in report.silent_corruptions() {
            eprintln!("  SDC {c}");
        }
        for s in report.schedule.iter().filter(|s| !s.identical) {
            eprintln!(
                "  NONDETERMINISTIC {} on {}: {}",
                s.kernel, s.dataset, s.detail
            );
        }
        return Err(format!(
            "chaos sweep failed — reproduce with --seed {:#x}",
            report.seed
        ));
    }
    println!("chaos sweep clean — every injected fault detected, masked, or declined");
    Ok(())
}

/// `shard` — the shard-fault sweep: every selected registry kernel runs
/// shard-by-shard under injected shard faults, and every recovered run
/// must be bitwise identical to the fault-free unsharded launch.
fn shard_cmd(args: &[String]) -> Result<(), String> {
    use gnnone_bench::shard::{run_shard_sweep, ShardOpts, ShardVerdict};

    let mut opts = ShardOpts::default();
    let mut out: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match arg.as_str() {
            "--seed" => opts.seed = parse_seed(&value("--seed")?)?,
            "--datasets" => {
                opts.dataset_ids = value("--datasets")?
                    .split(',')
                    .filter(|s| !s.is_empty())
                    .map(str::to_string)
                    .collect();
            }
            "--f" => {
                opts.f = value("--f")?
                    .parse()
                    .map_err(|_| "bad --f (expected a positive integer)".to_string())?;
            }
            "--shards" => {
                opts.shards = value("--shards")?
                    .split(',')
                    .filter(|s| !s.is_empty())
                    .map(|s| {
                        s.trim().parse::<usize>().ok().filter(|&k| k >= 1).ok_or(
                            "bad --shards (expected comma-separated integers >= 1)".to_string(),
                        )
                    })
                    .collect::<Result<Vec<_>, _>>()?;
            }
            "--seeds" => {
                opts.seeds = value("--seeds")?
                    .parse()
                    .map_err(|_| "bad --seeds (expected a positive integer)".to_string())?;
            }
            "--threads" => {
                let t: usize = value("--threads")?
                    .parse()
                    .map_err(|_| "bad --threads (expected a positive integer)".to_string())?;
                if t == 0 {
                    return Err("--threads must be >= 1".to_string());
                }
                opts.threads = Some(t);
            }
            "--kernels" => {
                opts.kernels = value("--kernels")?
                    .split(',')
                    .filter(|s| !s.is_empty())
                    .map(str::to_string)
                    .collect();
            }
            "--out" => out = Some(value("--out")?),
            other => return Err(format!("unknown shard flag `{other}`")),
        }
    }

    println!(
        "shard: base seed {:#x}, datasets [{}], f {}, K {:?}, {} seed(s)/cell",
        opts.seed,
        opts.dataset_ids.join(", "),
        opts.f,
        opts.shards,
        opts.seeds
    );
    let report = run_shard_sweep(&opts).map_err(|e| e.to_string())?;
    println!("partition balance:");
    let rows: Vec<Vec<String>> = report
        .partitions
        .iter()
        .map(|p| {
            vec![
                p.dataset.clone(),
                p.stats.shards.to_string(),
                p.stats.max_nnz.to_string(),
                p.stats.min_nnz.to_string(),
                format!("{:.1}", p.stats.avg_nnz),
                format!("{:.3}", p.stats.imbalance),
                p.stats.empty_shards.to_string(),
            ]
        })
        .collect();
    print_table(
        &[
            "dataset",
            "K",
            "max_nnz",
            "min_nnz",
            "avg_nnz",
            "imbalance",
            "empty",
        ],
        &rows,
    );
    print!("{}", report.recovery_matrix());
    let parity_ok = report.parity.iter().filter(|p| p.identical).count();
    println!(
        "fault-free parity: {}/{} (kernel, K) cells bitwise identical to the \
         unsharded run",
        parity_ok,
        report.parity.len()
    );
    println!(
        "{} run(s): {} recovered-identical, {} not-injected, {} declined, \
         {} errors, {} SILENT",
        report.cells.len(),
        report.verdict_count(ShardVerdict::RecoveredIdentical),
        report.verdict_count(ShardVerdict::CleanNotInjected),
        report.verdict_count(ShardVerdict::DegradedDeclined),
        report.verdict_count(ShardVerdict::UnexpectedError),
        report.verdict_count(ShardVerdict::SilentCorruption),
    );
    if let Some(path) = &out {
        std::fs::write(path, report.to_json().to_string_pretty())
            .map_err(|e| format!("write {path}: {e}"))?;
        println!("report: {path}");
    }
    if !report.clean() {
        for v in report.violations() {
            eprintln!("  VIOLATION {v}");
            eprintln!("    reproduce: {}", v.reproduce());
        }
        for p in report.parity.iter().filter(|p| !p.identical) {
            eprintln!(
                "  PARITY {} ({}) on {} at K={}: {}",
                p.kernel, p.family, p.dataset, p.shards, p.detail
            );
        }
        return Err(format!(
            "shard sweep failed — reproduce with --seed {:#x}",
            report.seed
        ));
    }
    println!(
        "shard sweep clean — every injected shard fault recovered \
         bitwise-identically from its checkpoint"
    );
    Ok(())
}

/// `bench` — the native-backend performance sweep behind
/// `BENCH_NATIVE.json`.
fn bench_cmd(args: &[String]) -> Result<(), String> {
    use gnnone_bench::native::{run_native_bench, NativeBenchOpts, REGISTRY_KERNEL_COUNT};
    use gnnone_sparse::datasets::Scale;

    let mut opts = NativeBenchOpts::default();
    let mut out = "BENCH_NATIVE.json".to_string();
    let mut it = args.iter();
    let int = |flag: &str, v: &str| -> Result<usize, String> {
        v.parse()
            .map_err(|_| format!("bad {flag} (expected a positive integer)"))
    };
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match arg.as_str() {
            "--scale" => {
                opts.scale = match value("--scale")?.to_ascii_lowercase().as_str() {
                    "tiny" => Scale::Tiny,
                    "small" => Scale::Small,
                    "medium" => Scale::Medium,
                    other => return Err(format!("unknown scale `{other}` (tiny|small|medium)")),
                }
            }
            "--datasets" => {
                opts.dataset_ids = value("--datasets")?
                    .split(',')
                    .filter(|s| !s.is_empty())
                    .map(str::to_string)
                    .collect();
            }
            "--f" => opts.f = int("--f", &value("--f")?)?,
            "--threads" => {
                let t = int("--threads", &value("--threads")?)?;
                if t == 0 {
                    return Err("--threads must be >= 1".to_string());
                }
                opts.threads = Some(t);
            }
            "--warmup" => opts.warmup = int("--warmup", &value("--warmup")?)?,
            "--repeats" => {
                let r = int("--repeats", &value("--repeats")?)?;
                if r == 0 {
                    return Err("--repeats must be >= 1".to_string());
                }
                opts.repeats = r;
            }
            "--kernels" => {
                opts.kernels = value("--kernels")?
                    .split(',')
                    .filter(|s| !s.is_empty())
                    .map(str::to_string)
                    .collect();
            }
            "--out" => out = value("--out")?,
            other => return Err(format!("unknown bench flag `{other}`")),
        }
    }

    let report = run_native_bench(&opts)?;
    println!(
        "native bench: {} thread(s), {} warmup + {} timed run(s) per cell, f={}",
        report.threads, report.warmup, report.repeats, report.f
    );
    let rows: Vec<Vec<String>> = report
        .entries
        .iter()
        .map(|e| {
            vec![
                e.dataset.clone(),
                e.op.to_string(),
                e.name.clone(),
                e.format.clone(),
                format!("{:.3}", e.best_ms),
                format!("{:.3}", e.median_ms),
                format!("{:.3e}", e.edges_per_sec),
            ]
        })
        .collect();
    print_table(
        &[
            "dataset",
            "op",
            "kernel",
            "format",
            "best_ms",
            "median_ms",
            "edges/s",
        ],
        &rows,
    );
    println!(
        "\n{} cell(s) over {} kernel(s) on {} dataset(s)",
        report.entries.len(),
        report.distinct_kernels(),
        report.datasets.len()
    );
    // A filtered sweep deliberately covers fewer kernels; only a full
    // sweep must account for the whole registry.
    if opts.kernels.is_empty() && report.distinct_kernels() != REGISTRY_KERNEL_COUNT {
        return Err(format!(
            "sweep covered {} kernels, registry has {REGISTRY_KERNEL_COUNT}",
            report.distinct_kernels()
        ));
    }
    std::fs::write(&out, report.to_json().to_string_pretty() + "\n")
        .map_err(|e| format!("write {out}: {e}"))?;
    println!("wrote {out}");
    Ok(())
}

/// `fuse` — the fusion-IR match/lower report plus fused-vs-unfused GAT
/// timings (the `fusion` section of `BENCH_NATIVE.json`).
fn fuse_cmd(args: &[String]) -> Result<(), String> {
    use gnnone_bench::fuse::{append_fusion_section, run_fuse, FuseOpts};
    use gnnone_sparse::datasets::Scale;

    let mut opts = FuseOpts::default();
    let mut out: Option<String> = None;
    let mut append: Option<String> = None;
    let mut it = args.iter();
    let int = |flag: &str, v: &str| -> Result<usize, String> {
        v.parse()
            .map_err(|_| format!("bad {flag} (expected a positive integer)"))
    };
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match arg.as_str() {
            "--scale" => {
                opts.scale = match value("--scale")?.to_ascii_lowercase().as_str() {
                    "tiny" => Scale::Tiny,
                    "small" => Scale::Small,
                    "medium" => Scale::Medium,
                    other => return Err(format!("unknown scale `{other}` (tiny|small|medium)")),
                }
            }
            "--datasets" => {
                opts.dataset_ids = value("--datasets")?
                    .split(',')
                    .filter(|s| !s.is_empty())
                    .map(str::to_string)
                    .collect();
            }
            "--f" => opts.f = int("--f", &value("--f")?)?,
            "--threads" => {
                let t = int("--threads", &value("--threads")?)?;
                if t == 0 {
                    return Err("--threads must be >= 1".to_string());
                }
                opts.threads = Some(t);
            }
            "--warmup" => opts.warmup = int("--warmup", &value("--warmup")?)?,
            "--repeats" => {
                let r = int("--repeats", &value("--repeats")?)?;
                if r == 0 {
                    return Err("--repeats must be >= 1".to_string());
                }
                opts.repeats = r;
            }
            "--kernels" => {
                opts.kernels = value("--kernels")?
                    .split(',')
                    .filter(|s| !s.is_empty())
                    .map(str::to_string)
                    .collect();
            }
            "--out" => out = Some(value("--out")?),
            "--append" => append = Some(value("--append")?),
            other => return Err(format!("unknown fuse flag `{other}`")),
        }
    }

    let report = run_fuse(&opts)?;
    println!("fusion IR match/lower report:");
    for m in &report.matches {
        println!("\n== {} ==", m.graph);
        println!("{}", m.report.trim_end());
    }
    println!(
        "\nfused-vs-unfused GAT chain (end-to-end plan wall-clock; *_launch = \
         launch+host medians): {} thread(s), {} warmup + {} timed run(s), f={}",
        report.threads, report.warmup, report.repeats, report.f
    );
    let rows: Vec<Vec<String>> = report
        .cells
        .iter()
        .map(|c| {
            vec![
                c.dataset.clone(),
                c.nnz.to_string(),
                format!("{:.3}", c.fused_best_ms),
                format!("{:.3}", c.fused_median_ms),
                format!("{:.3}", c.fused_launch_ms),
                format!("{:.3}", c.unfused_best_ms),
                format!("{:.3}", c.unfused_median_ms),
                format!("{:.3}", c.unfused_launch_ms),
                format!("{:.2}x", c.speedup()),
            ]
        })
        .collect();
    print_table(
        &[
            "dataset",
            "nnz",
            "fused_best",
            "fused_med",
            "fused_launch",
            "unfused_best",
            "unfused_med",
            "unfused_launch",
            "speedup",
        ],
        &rows,
    );

    if let Some(path) = &out {
        std::fs::write(path, report.to_json().to_string_pretty() + "\n")
            .map_err(|e| format!("write {path}: {e}"))?;
        println!("wrote {path}");
    }
    if let Some(path) = &append {
        let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
        let doc = gnnone_sim::jsonio::parse(&text).map_err(|e| format!("parse {path}: {e}"))?;
        let doc = append_fusion_section(doc, &report)?;
        std::fs::write(path, doc.to_string_pretty() + "\n")
            .map_err(|e| format!("write {path}: {e}"))?;
        println!("appended fusion section to {path}");
    }
    Ok(())
}

fn serve_bench_cmd(args: &[String]) -> Result<(), String> {
    use gnnone_bench::serve_bench::{serve_bench_to, ServeBenchOpts};
    use gnnone_sparse::datasets::Scale;

    let mut opts = ServeBenchOpts::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match arg.as_str() {
            "--dataset" => opts.dataset = value("--dataset")?,
            "--scale" => {
                opts.scale = match value("--scale")?.to_ascii_lowercase().as_str() {
                    "tiny" => Scale::Tiny,
                    "small" => Scale::Small,
                    "medium" => Scale::Medium,
                    other => return Err(format!("unknown scale `{other}` (tiny|small|medium)")),
                }
            }
            "--model" => opts.model = value("--model")?.parse()?,
            "--backend" => opts.backend = value("--backend")?.parse()?,
            "--seed" => opts.seed = parse_seed(&value("--seed")?)?,
            "--requests" => {
                let n: u64 = value("--requests")?
                    .parse()
                    .map_err(|_| "bad --requests (expected a positive integer)".to_string())?;
                if n == 0 {
                    return Err("--requests must be >= 1".to_string());
                }
                opts.requests = n;
            }
            "--out" => opts.out = Some(value("--out")?),
            other => return Err(format!("unknown serve-bench flag `{other}`")),
        }
    }
    serve_bench_to(&opts)
}

fn sanitize_cmd(args: &[String]) -> Result<(), String> {
    let opts = gnnone_bench::cli::parse(args.iter().cloned()).map_err(|e| e.to_string())?;
    gnnone_bench::runner::require_sim_backend(&opts, "gnnone-prof sanitize")
        .map_err(|e| e.to_string())?;
    let specs = gnnone_bench::runner::try_selected_specs(&opts)?;
    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut entries: Vec<Json> = Vec::new();
    let mut total: u64 = 0;
    for spec in &specs {
        let ld = gnnone_bench::runner::load(spec, opts.scale);
        for &f in &opts.dims {
            // A fresh device per (dataset, f) keeps audits attributable.
            let gpu = Gpu::new(gnnone_bench::figure_gpu_spec());
            gpu.enable_sanitizer(SanitizeConfig::on());
            let sweeps = sweep_graph(&gpu, &ld.graph, f);
            total += total_findings(&sweeps);
            for s in &sweeps {
                rows.push(vec![
                    spec.id.to_string(),
                    f.to_string(),
                    s.name.clone(),
                    s.op.to_string(),
                    s.format.to_string(),
                    match &s.skipped {
                        None => "ok".to_string(),
                        Some(reason) => format!("skip ({reason})"),
                    },
                    s.findings.to_string(),
                ]);
            }
            entries.push(Json::obj(vec![
                ("dataset", Json::Str(spec.id.to_string())),
                ("f", Json::U64(f as u64)),
                (
                    "kernels",
                    Json::Arr(
                        sweeps
                            .iter()
                            .map(|s| {
                                Json::obj(vec![
                                    ("name", Json::Str(s.name.clone())),
                                    ("op", Json::Str(s.op.to_string())),
                                    ("format", Json::Str(s.format.to_string())),
                                    (
                                        "skipped",
                                        match &s.skipped {
                                            None => Json::Null,
                                            Some(r) => Json::Str(r.clone()),
                                        },
                                    ),
                                    ("findings", Json::U64(s.findings)),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ]));
        }
    }
    let header = [
        "dataset", "f", "kernel", "op", "format", "status", "findings",
    ];
    print_table(&header, &rows);
    println!(
        "\n{} kernel run(s), {total} finding(s){}",
        rows.len(),
        if total == 0 { " — clean" } else { "" }
    );
    if let Some(path) = &opts.out {
        let report = Json::obj(vec![
            ("total_findings", Json::U64(total)),
            ("sweeps", Json::Arr(entries)),
        ]);
        std::fs::write(path, report.to_string_pretty())
            .map_err(|e| format!("write {path}: {e}"))?;
        println!("report: {path}");
    }
    if total > 0 {
        return Err(format!("{total} sanitizer finding(s) — see table above"));
    }
    Ok(())
}

fn verify_cmd(args: &[String]) -> Result<(), String> {
    use gnnone_kernels::analysis::ExecModel;
    let opts = gnnone_bench::cli::parse(args.iter().cloned()).map_err(|e| e.to_string())?;
    let cells =
        gnnone_bench::verify::verify_datasets(&opts, &[ExecModel::Sim, ExecModel::Native], true)
            .map_err(|e| e.to_string())?;
    let mut rows: Vec<Vec<String>> = Vec::new();
    for c in &cells {
        for v in &c.verdicts {
            rows.push(vec![
                c.dataset.clone(),
                c.f.to_string(),
                v.kernel.clone(),
                v.op.to_string(),
                v.model.as_str().to_string(),
                v.verdict.as_str().to_string(),
            ]);
        }
    }
    print_table(&["dataset", "f", "kernel", "op", "model", "verdict"], &rows);
    let lattice_total: usize = cells.iter().map(|c| c.lattice.len()).sum();
    let failures: Vec<(String, String)> = cells
        .iter()
        .flat_map(|c| {
            c.failures()
                .into_iter()
                .map(move |(label, _)| (format!("{} f={}", c.dataset, c.f), label))
        })
        .collect();
    println!(
        "\n{} registry obligation(s) + {lattice_total} lattice obligation(s): {}",
        rows.len(),
        if failures.is_empty() {
            "all proved".to_string()
        } else {
            format!("{} FAILED", failures.len())
        }
    );
    for (cell, label) in &failures {
        println!("  {cell}: {label}");
    }
    if let Some(path) = &opts.out {
        let report = gnnone_bench::verify::sweep_to_json(&cells);
        std::fs::write(path, report.to_string_pretty())
            .map_err(|e| format!("write {path}: {e}"))?;
        println!("report: {path}");
    }
    if !failures.is_empty() {
        return Err(format!(
            "{} verification obligation(s) not proved — see list above",
            failures.len()
        ));
    }
    Ok(())
}

fn load_snapshot(path: &str) -> Result<MetricsSnapshot, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    MetricsSnapshot::from_json_str(&text).map_err(|e| format!("parse {path}: {e}"))
}

/// One row of the `show` table, pre-formatted.
fn summary_row(k: &KernelMetrics) -> Vec<String> {
    vec![
        k.name.clone(),
        k.launches.to_string(),
        format!("{:.3}", k.time_ms),
        format!("{:.1}", k.achieved_bandwidth_gbs()),
        format!("{:.1}%", 100.0 * k.sector_efficiency()),
        format!("{:.1}%", 100.0 * k.stall_fraction()),
        format!("{:.2}", k.atomic_conflict_rate()),
        format!("{:.2}", k.avg_occupancy()),
    ]
}

const SUMMARY_HEADER: [&str; 8] = [
    "kernel",
    "launches",
    "time_ms",
    "GB/s",
    "sector_eff",
    "stall",
    "atomic_conf",
    "occupancy",
];

fn print_table(header: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let line = |cells: Vec<&str>| {
        let mut s = String::new();
        for (i, (cell, w)) in cells.iter().zip(&widths).enumerate() {
            if i == 0 {
                s.push_str(&format!("{cell:<w$}"));
            } else {
                s.push_str(&format!("  {cell:>w$}"));
            }
        }
        println!("{}", s.trim_end());
    };
    line(header.to_vec());
    let dashes: Vec<String> = widths.iter().map(|&w| "-".repeat(w)).collect();
    line(dashes.iter().map(String::as_str).collect());
    for row in rows {
        line(row.iter().map(String::as_str).collect());
    }
}

fn show(path: &str) -> Result<(), String> {
    let snap = load_snapshot(path)?;
    println!(
        "device: {} @ {:.2} GHz — {} kernel(s)\n",
        snap.device,
        snap.clock_ghz,
        snap.kernels.len()
    );
    let rows: Vec<Vec<String>> = snap.kernels.iter().map(summary_row).collect();
    print_table(&SUMMARY_HEADER, &rows);
    Ok(())
}

fn ratio(a: f64, b: f64) -> String {
    if b == 0.0 {
        "-".to_string()
    } else {
        format!("{:.2}x", a / b)
    }
}

fn diff(path_a: &str, path_b: &str) -> Result<(), String> {
    let a = load_snapshot(path_a)?;
    let b = load_snapshot(path_b)?;
    println!("A = {path_a}\nB = {path_b}\n");

    let mut rows = Vec::new();
    for ka in &a.kernels {
        let Some(kb) = b.kernel(&ka.name) else {
            println!("only in A: {}", ka.name);
            continue;
        };
        rows.push(vec![
            ka.name.clone(),
            format!("{:.3}", ka.time_ms),
            format!("{:.3}", kb.time_ms),
            ratio(kb.time_ms, ka.time_ms),
            format!(
                "{:.1}% / {:.1}%",
                100.0 * ka.sector_efficiency(),
                100.0 * kb.sector_efficiency()
            ),
            format!(
                "{:.1}% / {:.1}%",
                100.0 * ka.stall_fraction(),
                100.0 * kb.stall_fraction()
            ),
            format!(
                "{:.0} / {:.0}",
                ka.achieved_bandwidth_gbs(),
                kb.achieved_bandwidth_gbs()
            ),
        ]);
    }
    for kb in &b.kernels {
        if a.kernel(&kb.name).is_none() {
            println!("only in B: {}", kb.name);
        }
    }
    let header = [
        "kernel",
        "A time_ms",
        "B time_ms",
        "B/A",
        "sector_eff A/B",
        "stall A/B",
        "GB/s A/B",
    ];
    print_table(&header, &rows);
    println!("\nB/A > 1 means A is faster; sector_eff and stall explain why.");
    Ok(())
}

fn trace_summary(path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    let doc = jsonio::parse(&text).map_err(|e| format!("parse {path}: {e}"))?;
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .ok_or("not a chrome trace: missing 'traceEvents' array")?;

    let mut counts: Vec<(String, usize)> = Vec::new();
    let mut end_us: f64 = 0.0;
    let mut spans = 0usize;
    for e in events {
        let ph = e.get("ph").and_then(Json::as_str).unwrap_or("?");
        let key = if ph == "M" {
            "metadata".to_string()
        } else {
            e.get("cat")
                .and_then(Json::as_str)
                .unwrap_or("?")
                .to_string()
        };
        match counts.iter_mut().find(|(k, _)| *k == key) {
            Some((_, n)) => *n += 1,
            None => counts.push((key, 1)),
        }
        if ph == "X" {
            spans += 1;
            let ts = e.get("ts").and_then(Json::as_f64).unwrap_or(0.0);
            let dur = e.get("dur").and_then(Json::as_f64).unwrap_or(0.0);
            end_us = end_us.max(ts + dur);
        }
    }
    let device = doc
        .get("otherData")
        .and_then(|o| o.get("device"))
        .and_then(Json::as_str)
        .unwrap_or("unknown");
    println!(
        "{path}: {} events ({spans} spans) on {device}, timeline ends at {:.3} ms",
        events.len(),
        end_us / 1e3
    );
    for (k, n) in counts {
        println!("  {k:<10} {n}");
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_handles_zero_denominator() {
        assert_eq!(ratio(1.0, 0.0), "-");
        assert_eq!(ratio(3.0, 2.0), "1.50x");
    }

    #[test]
    fn seed_parses_decimal_and_hex() {
        assert_eq!(parse_seed("42").unwrap(), 42);
        assert_eq!(parse_seed("0xC0FFEE").unwrap(), 0xC0FFEE);
        assert_eq!(parse_seed("0Xff").unwrap(), 255);
        assert!(parse_seed("zzz").is_err());
        assert!(parse_seed("0x").is_err());
    }
}
