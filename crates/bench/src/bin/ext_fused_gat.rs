//! **Extension experiment** (paper future work, §5.3.2): fused vs unfused
//! GAT attention.
//!
//! The unfused GNNOne pipeline launches `u_add_v`, `edge_softmax` and SpMM
//! separately, writing logits and α to device memory between them; the
//! fused kernel does all three in one launch with no edge-tensor round
//! trips. The paper conjectured "kernel fusion would provide even better
//! performance to GNNOne" — this bench measures by how much, per dataset.

use std::sync::Arc;

use gnnone_bench::report::{Cell, Table};
use gnnone_bench::{cli, profiling, report, runner};
use gnnone_kernels::gnnone::{FusedGatAttention, GnnOneConfig, GnnOneSpmm, GnnOneUAddV};
use gnnone_kernels::ir::IrFusedGat;
use gnnone_sim::DeviceBuffer;

fn main() -> std::process::ExitCode {
    gnnone_bench::figure_main("ext_fused_gat", run)
}

fn run() -> Result<(), gnnone_sim::GnnOneError> {
    let opts = cli::from_env()?;
    runner::require_unsharded(&opts, "ext_fused_gat")?;
    let backend = runner::backend_from_options(&opts)?;
    let prof = profiling::Profiler::from_opts(&opts);
    prof.attach_backend(&backend);
    let f = *opts.dims.first().unwrap_or(&16);
    let mut table = Table::new(
        &format!("Extension: fused vs unfused GAT attention, dim={f}"),
        &["Fused (1 launch)", "Unfused GnnOne (3 launches)"],
    );

    for spec in runner::selected_specs(&opts) {
        let ld = runner::load(&spec, opts.scale);
        let n = ld.graph.num_vertices();
        let z_host = runner::vertex_features(n, f, 41);
        let z = DeviceBuffer::from_slice(&z_host);
        let el = DeviceBuffer::from_slice(&runner::vertex_features(n, 1, 43));
        let er = DeviceBuffer::from_slice(&runner::vertex_features(n, 1, 47));

        // Every buffer and kernel instance is built up front, outside the
        // measured launches, so fused-vs-unfused deltas reflect kernel
        // time rather than allocator traffic.
        let y_fused = DeviceBuffer::<f32>::zeros(n * f);
        let y_lowered = DeviceBuffer::<f32>::zeros(n * f);
        let y_unfused = DeviceBuffer::<f32>::zeros(n * f);
        let logits = DeviceBuffer::<f32>::zeros(ld.graph.nnz());
        let fused = FusedGatAttention::new(Arc::clone(&ld.graph), 0.2);
        let lowered = IrFusedGat::new(Arc::clone(&ld.graph), 0.2);
        let uv = GnnOneUAddV::new(Arc::clone(&ld.graph));
        let spmm = GnnOneSpmm::new(Arc::clone(&ld.graph), GnnOneConfig::default());
        let alpha_host = unfused_alpha(&ld, &el.to_vec(), &er.to_vec());
        let alpha = DeviceBuffer::from_slice(&alpha_host);

        // Fused: one launch, α never leaves the SM (backward-less
        // inference shape; training keeps α via `alpha_out`).
        let fused_cell = match backend.run_fused(&fused, &z, &el, &er, f, &y_fused, None) {
            Ok(r) => Cell::Ms(r.time_ms),
            Err(e) => Cell::Err(format!("{e}")),
        };

        // Golden check: the IR-lowered fused kernel must reproduce the
        // hand-built one byte for byte on every dataset it is timed on.
        backend
            .run_fused(&lowered, &z, &el, &er, f, &y_lowered, None)
            .map_err(|e| gnnone_sim::GnnOneError::Panic {
                context: "ext_fused_gat".to_string(),
                detail: format!("IR-lowered fused launch failed on {}: {e}", spec.id),
            })?;
        let handwritten = y_fused.to_vec();
        let via_ir = y_lowered.to_vec();
        assert!(
            handwritten
                .iter()
                .zip(&via_ir)
                .all(|(a, b)| a.to_bits() == b.to_bits()),
            "{}: IR-lowered fused GAT diverged from the hand-built kernel",
            spec.id
        );

        // Unfused: SpMM launch + the edge-parallel passes (u_add_v +
        // 3-pass softmax, 4 edge passes total). On the simulator the
        // edge passes are costed analytically as in the training stack
        // (16 B/NZE each plus 2 extra launch overheads); on native, one
        // real edge pass (u_add_v) is measured and charged 4×.
        let unfused_cell = match backend.run_spmm(&spmm, &alpha, &z, f, &y_unfused) {
            Ok(r) => {
                let extra_ms = match backend.as_gpu() {
                    Some(gpu) => {
                        let spec_gpu = gpu.spec();
                        let edge_pass_bytes = (ld.graph.nnz() as u64) * 16 * 4;
                        let bw = spec_gpu.bytes_per_cycle_per_sm() * spec_gpu.num_sms as f64;
                        let extra_cycles = 2 * spec_gpu.timing.kernel_launch_overhead_cycles
                            + (edge_pass_bytes as f64 / bw) as u64;
                        spec_gpu.cycles_to_ms(extra_cycles)
                    }
                    None => backend
                        .run_edge_apply(&uv, &el, &er, &logits)
                        .map(|r| 4.0 * r.time_ms)
                        .unwrap_or(0.0),
                };
                Cell::Ms(r.time_ms + extra_ms)
            }
            Err(e) => Cell::Err(format!("{e}")),
        };
        table.push_row(spec.id, vec![fused_cell, unfused_cell]);
    }
    table.print();
    println!("(extension beyond the paper: quantifies §5.3.2's fusion conjecture)");

    let out = opts
        .out
        .unwrap_or_else(|| "results/ext_fused_gat.json".into());
    report::write_json(&out, &table).map_err(|e| gnnone_bench::io_error(&out, e))?;
    println!("wrote {out}");
    prof.write();
    Ok(())
}

/// Host-side attention coefficients for the unfused SpMM input (their
/// device cost is charged analytically above).
fn unfused_alpha(ld: &runner::LoadedDataset, el: &[f32], er: &[f32]) -> Vec<f32> {
    let csr = &ld.dataset.csr;
    let mut alpha = vec![0.0f32; csr.nnz()];
    for r in 0..csr.num_rows() {
        let range = csr.row_range(r);
        if range.is_empty() {
            continue;
        }
        let logits: Vec<f32> = range
            .clone()
            .map(|e| {
                let raw = el[r] + er[csr.cols()[e] as usize];
                if raw > 0.0 {
                    raw
                } else {
                    raw * 0.2
                }
            })
            .collect();
        let max = logits.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let sum: f32 = logits.iter().map(|&v| (v - max).exp()).sum();
        for (i, e) in range.enumerate() {
            alpha[e] = (logits[i] - max).exp() / sum;
        }
    }
    alpha
}
