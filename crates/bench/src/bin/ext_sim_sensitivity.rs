//! **Extension experiment**: sensitivity of the headline result to the
//! simulator's timing parameters.
//!
//! The reproduction's claim is that GNNOne's advantage is a property of
//! the *execution model*, not of one parameter choice. This bench sweeps
//! the main timing knobs (DRAM latency, per-warp outstanding-load limit,
//! latency-hiding warps, bandwidth) and reports GNNOne's SpMM/SDDMM
//! geomean speedup over the strongest baseline at each point — if the
//! advantage held only at the defaults, the reproduction would be fragile.

use gnnone_bench::{cli, figure_gpu_spec, profiling, report, runner};
use gnnone_kernels::registry;
use gnnone_sim::{DeviceBuffer, Gpu, GpuSpec};
use serde::Serialize;

#[derive(Serialize)]
struct SensitivityRow {
    knob: String,
    value: String,
    sddmm_geomean_vs_best: f64,
    spmm_geomean_vs_best: f64,
}

impl report::ToJson for SensitivityRow {
    fn to_json(&self) -> gnnone_sim::jsonio::Json {
        use gnnone_sim::jsonio::Json;
        Json::obj(vec![
            ("knob", Json::Str(self.knob.clone())),
            ("value", Json::Str(self.value.clone())),
            (
                "sddmm_geomean_vs_best",
                Json::F64(self.sddmm_geomean_vs_best),
            ),
            ("spmm_geomean_vs_best", Json::F64(self.spmm_geomean_vs_best)),
        ])
    }
}

fn main() -> std::process::ExitCode {
    gnnone_bench::figure_main("ext_sim_sensitivity", run)
}

fn run() -> Result<(), gnnone_sim::GnnOneError> {
    let mut opts = cli::from_env()?;
    runner::require_sim_backend(&opts, "ext_sim_sensitivity")?;
    if opts.datasets.is_empty() {
        // A skewed, a uniform and a dense dataset.
        opts.datasets = vec!["G5".into(), "G10".into(), "G14".into()];
    }
    let f = 32;
    let loaded: Vec<_> = runner::selected_specs(&opts)
        .iter()
        .map(|s| runner::load(s, opts.scale))
        .collect();

    let mut variants: Vec<(String, String, GpuSpec)> = Vec::new();
    let base = figure_gpu_spec();
    variants.push(("default".into(), "-".into(), base.clone()));
    for lat in [240u64, 960] {
        let mut s = base.clone();
        s.timing.dram_latency = lat;
        variants.push(("dram_latency".into(), lat.to_string(), s));
    }
    for out in [4usize, 16] {
        let mut s = base.clone();
        s.timing.max_outstanding_loads = out;
        variants.push(("max_outstanding".into(), out.to_string(), s));
    }
    for hide in [8u64, 48] {
        let mut s = base.clone();
        s.timing.latency_hiding_warps = hide;
        variants.push(("hiding_warps".into(), hide.to_string(), s));
    }
    for bw_scale in [0.5f64, 2.0] {
        let mut s = base.clone();
        s.dram_bandwidth_gbs *= bw_scale;
        variants.push(("bandwidth".into(), format!("{bw_scale}x"), s));
    }

    let prof = profiling::Profiler::from_opts(&opts);
    let mut rows = Vec::new();
    println!(
        "{:<16} {:>8} {:>22} {:>22}",
        "knob", "value", "SDDMM geomean vs best", "SpMM geomean vs best"
    );
    for (knob, value, spec) in variants {
        let gpu = Gpu::new(spec);
        prof.attach(&gpu);
        let mut sddmm_ratios = Vec::new();
        let mut spmm_ratios = Vec::new();
        for ld in &loaded {
            let n = ld.graph.num_vertices();
            let x = DeviceBuffer::from_slice(&runner::vertex_features(n, f, 3));
            let y = DeviceBuffer::from_slice(&runner::vertex_features(n, f, 5));
            let w_out = DeviceBuffer::<f32>::zeros(ld.graph.nnz());
            let mut base_ms = None;
            let mut best = f64::INFINITY;
            for k in registry::sddmm_kernels(&ld.graph) {
                if let Ok(r) = k.run(&gpu, &x, &y, f, &w_out) {
                    if base_ms.is_none() {
                        base_ms = Some(r.time_ms);
                    } else {
                        best = best.min(r.time_ms);
                    }
                }
            }
            if let Some(b) = base_ms {
                sddmm_ratios.push((best / b).ln());
            }

            let ev = DeviceBuffer::from_slice(&runner::edge_values(ld.graph.nnz(), 7));
            let y_out = DeviceBuffer::<f32>::zeros(n * f);
            let mut base_ms = None;
            let mut best = f64::INFINITY;
            for k in registry::spmm_kernels(&ld.graph) {
                if let Ok(r) = k.run(&gpu, &ev, &x, f, &y_out) {
                    if base_ms.is_none() {
                        base_ms = Some(r.time_ms);
                    } else {
                        best = best.min(r.time_ms);
                    }
                }
            }
            if let Some(b) = base_ms {
                spmm_ratios.push((best / b).ln());
            }
        }
        let geo = |v: &[f64]| (v.iter().sum::<f64>() / v.len().max(1) as f64).exp();
        let row = SensitivityRow {
            knob: knob.clone(),
            value: value.clone(),
            sddmm_geomean_vs_best: geo(&sddmm_ratios),
            spmm_geomean_vs_best: geo(&spmm_ratios),
        };
        println!(
            "{:<16} {:>8} {:>21.2}x {:>21.2}x",
            row.knob, row.value, row.sddmm_geomean_vs_best, row.spmm_geomean_vs_best
        );
        rows.push(row);
    }
    println!("\n(values > 1 mean GNNOne beats the strongest baseline at that parameter point)");

    let out = opts
        .out
        .unwrap_or_else(|| "results/ext_sim_sensitivity.json".into());
    report::write_json(&out, &rows).map_err(|e| gnnone_bench::io_error(&out, e))?;
    println!("wrote {out}");
    prof.write();
    Ok(())
}
