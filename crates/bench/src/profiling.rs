//! `--trace` / `--metrics` / `--sanitize` plumbing shared by the figure
//! binaries.
//!
//! A [`Profiler`] is built once from the parsed [`Options`], attached to
//! every simulated device the binary creates (directly via
//! [`Profiler::attach`], or through a training context with
//! [`Profiler::attach_ctx`]), and written out at the end with
//! [`Profiler::write`]. When none of `--trace`, `--metrics`, `--sanitize`
//! was given every method is a no-op, so binaries can call them
//! unconditionally — and the timing reports are identical either way (the
//! sanitizer shadows accesses without touching the clock).

use std::sync::Arc;

use gnnone_gnn::systems::GnnContext;
use gnnone_sim::{
    ChaosConfig, ChaosEngine, Gpu, GpuSpec, MetricsRegistry, SanitizeConfig, Sanitizer,
    TraceConfig, TraceSession,
};

use crate::cli::Options;

/// Collects trace/metrics/sanitizer output for one figure-binary run.
pub struct Profiler {
    trace_path: Option<String>,
    metrics_path: Option<String>,
    sanitize_path: Option<String>,
    session: Option<Arc<TraceSession>>,
    registry: Option<Arc<MetricsRegistry>>,
    sanitizer: Option<Arc<Sanitizer>>,
    chaos: Option<Arc<ChaosEngine>>,
}

impl Profiler {
    /// Builds a profiler from the binary's options, recording against the
    /// given device spec (clock used for trace timestamps).
    pub fn new(opts: &Options, spec: &GpuSpec) -> Self {
        let session = opts.trace.as_ref().map(|_| {
            Arc::new(TraceSession::new(
                TraceConfig::on(),
                &spec.name,
                spec.clock_ghz,
            ))
        });
        let registry = opts.metrics.as_ref().map(|_| {
            let r = MetricsRegistry::new();
            r.set_device(&spec.name, spec.clock_ghz);
            Arc::new(r)
        });
        // The dynamic shadow sanitizer exists only on the simulator; with
        // `--backend native`, `--sanitize` means the static verifier and
        // the report path belongs to the preflight in `crate::verify`.
        let sanitizer = (opts.backend == gnnone_kernels::backend::BackendKind::Sim)
            .then_some(opts.sanitize.as_ref())
            .flatten()
            .map(|_| Arc::new(Sanitizer::new(SanitizeConfig::on())));
        // `--chaos SEED` is schedule-chaos only: launches execute under a
        // seeded CTA/warp permutation, with no fault injected, so every
        // table and report must stay byte-identical to a detached run.
        let chaos = opts
            .chaos
            .map(|seed| Arc::new(ChaosEngine::new(ChaosConfig::schedule(seed))));
        Profiler {
            trace_path: opts.trace.clone(),
            metrics_path: opts.metrics.clone(),
            sanitize_path: opts.sanitize.clone(),
            session,
            registry,
            sanitizer,
            chaos,
        }
    }

    /// Builds a profiler against [`crate::figure_gpu_spec`].
    pub fn from_opts(opts: &Options) -> Self {
        Self::new(opts, &crate::figure_gpu_spec())
    }

    /// True when the run records anything or perturbs the schedule.
    pub fn enabled(&self) -> bool {
        self.session.is_some()
            || self.registry.is_some()
            || self.sanitizer.is_some()
            || self.chaos.is_some()
    }

    /// The shared trace session, if `--trace` was given.
    pub fn session(&self) -> Option<&Arc<TraceSession>> {
        self.session.as_ref()
    }

    /// The shared metrics registry, if `--metrics` was given.
    pub fn registry(&self) -> Option<&Arc<MetricsRegistry>> {
        self.registry.as_ref()
    }

    /// The shared sanitizer, if `--sanitize` was given.
    pub fn sanitizer(&self) -> Option<&Arc<Sanitizer>> {
        self.sanitizer.as_ref()
    }

    /// The shared schedule-chaos engine, if `--chaos` was given.
    pub fn chaos(&self) -> Option<&Arc<ChaosEngine>> {
        self.chaos.as_ref()
    }

    /// Attaches the profiler to a device. All launches on `gpu` (and its
    /// clones) are then recorded. Safe to call on any number of devices —
    /// they share one timeline and one registry.
    pub fn attach(&self, gpu: &Gpu) {
        if let Some(session) = &self.session {
            gpu.attach_trace(Arc::clone(session));
        }
        if let Some(registry) = &self.registry {
            gpu.attach_metrics(Arc::clone(registry));
        }
        if let Some(sanitizer) = &self.sanitizer {
            gpu.attach_sanitizer(Arc::clone(sanitizer));
        }
        if let Some(chaos) = &self.chaos {
            gpu.attach_chaos(Arc::clone(chaos));
        }
    }

    /// Attaches the profiler to whatever device a [`Backend`] wraps. The
    /// dynamic observability layers are simulator-only, so this is
    /// [`Profiler::attach`] on the sim backend and a no-op on native —
    /// CLI validation rejects `--trace`/`--metrics`/`--chaos` with
    /// `--backend native`, and native `--sanitize` is served statically by
    /// the verifier preflight, so nothing is silently dropped here.
    ///
    /// [`Backend`]: gnnone_kernels::backend::Backend
    pub fn attach_backend(&self, backend: &gnnone_kernels::backend::Backend) {
        if let Some(gpu) = backend.as_gpu() {
            self.attach(gpu);
        }
    }

    /// Attaches the profiler to a training context: the device for sparse
    /// kernels plus the training clock for dense-op spans. Schedule chaos
    /// is a device-level concern and is attached through
    /// [`Profiler::attach`] only.
    pub fn attach_ctx(&self, ctx: &GnnContext) {
        if let Some(session) = &self.session {
            ctx.attach_trace(Arc::clone(session));
        }
        if let Some(registry) = &self.registry {
            ctx.attach_metrics(Arc::clone(registry));
        }
        if let Some(sanitizer) = &self.sanitizer {
            ctx.attach_sanitizer(Arc::clone(sanitizer));
        }
    }

    /// Writes whatever was requested, printing each output path. Call once
    /// at the end of `main`.
    pub fn write(&self) {
        if let (Some(path), Some(session)) = (&self.trace_path, &self.session) {
            match session.write_chrome_trace(path) {
                Ok(()) => println!(
                    "trace: {path} ({} events; load in chrome://tracing or ui.perfetto.dev)",
                    session.event_count()
                ),
                Err(e) => eprintln!("trace: failed to write {path}: {e}"),
            }
        }
        if let (Some(path), Some(registry)) = (&self.metrics_path, &self.registry) {
            let snapshot = registry.snapshot();
            match snapshot.write(path) {
                Ok(()) => println!(
                    "metrics: {path} ({} kernels; inspect with gnnone-prof show {path})",
                    snapshot.kernels.len()
                ),
                Err(e) => eprintln!("metrics: failed to write {path}: {e}"),
            }
        }
        if let (Some(path), Some(sanitizer)) = (&self.sanitize_path, &self.sanitizer) {
            match sanitizer.write(path) {
                Ok(()) => println!(
                    "sanitize: {path} ({} launches, {} findings)",
                    sanitizer.launches().len(),
                    sanitizer.finding_count()
                ),
                Err(e) => eprintln!("sanitize: failed to write {path}: {e}"),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnnone_sim::{DeviceBuffer, KernelResources, WarpCtx, WarpKernel};

    struct Touch<'a>(&'a DeviceBuffer<f32>);
    impl WarpKernel for Touch<'_> {
        fn resources(&self) -> KernelResources {
            KernelResources {
                threads_per_cta: 32,
                regs_per_thread: 16,
                shared_bytes_per_cta: 0,
            }
        }
        fn grid_warps(&self) -> usize {
            4
        }
        fn run_warp(&self, _w: usize, ctx: &mut WarpCtx) {
            ctx.load_f32(self.0, Some);
        }
    }

    #[test]
    fn disabled_profiler_is_inert() {
        let p = Profiler::from_opts(&Options::default());
        assert!(!p.enabled());
        let gpu = Gpu::new(GpuSpec::tiny());
        p.attach(&gpu);
        let buf = DeviceBuffer::<f32>::zeros(64);
        gpu.launch(&Touch(&buf));
        assert!(gpu.trace().is_none());
        assert!(gpu.metrics().is_none());
        assert!(gpu.sanitizer().is_none());
        p.write();
    }

    #[test]
    fn sanitize_flag_attaches_a_shared_sanitizer() {
        let opts = Options {
            sanitize: Some("unused.json".to_string()),
            ..Default::default()
        };
        let p = Profiler::new(&opts, &GpuSpec::tiny());
        assert!(p.enabled());
        let a = Gpu::new(GpuSpec::tiny());
        let b = Gpu::new(GpuSpec::tiny());
        p.attach(&a);
        p.attach(&b);
        let buf = DeviceBuffer::<f32>::zeros(128);
        a.launch(&Touch(&buf));
        b.launch(&Touch(&buf));
        let san = p.sanitizer().unwrap();
        assert_eq!(san.launches().len(), 2);
        assert!(san.is_clean());
    }

    #[test]
    fn chaos_flag_attaches_schedule_chaos_without_changing_output() {
        let opts = Options {
            chaos: Some(7),
            ..Default::default()
        };
        let p = Profiler::new(&opts, &GpuSpec::tiny());
        assert!(p.enabled());
        let chaotic = Gpu::new(GpuSpec::tiny());
        p.attach(&chaotic);
        assert!(chaotic.chaos().is_some());
        let plain = Gpu::new(GpuSpec::tiny());
        let a = DeviceBuffer::<f32>::from_slice(&[1.0; 128]);
        let b = DeviceBuffer::<f32>::from_slice(&[1.0; 128]);
        let ra = chaotic.launch(&Touch(&a));
        let rb = plain.launch(&Touch(&b));
        assert_eq!(a.to_vec(), b.to_vec());
        assert_eq!(ra.cycles, rb.cycles, "permuted schedule changed the clock");
    }

    #[test]
    fn enabled_profiler_records_across_devices() {
        let opts = Options {
            trace: Some("unused.json".to_string()),
            metrics: Some("unused.json".to_string()),
            ..Default::default()
        };
        let p = Profiler::new(&opts, &GpuSpec::tiny());
        assert!(p.enabled());
        let a = Gpu::new(GpuSpec::tiny());
        let b = Gpu::new(GpuSpec::tiny());
        p.attach(&a);
        p.attach(&b);
        let buf = DeviceBuffer::<f32>::zeros(64);
        a.launch(&Touch(&buf));
        b.launch(&Touch(&buf));
        let session = p.session().unwrap();
        let registry = p.registry().unwrap();
        assert_eq!(
            session
                .events()
                .iter()
                .filter(|e| e.cat == "kernel")
                .count(),
            2
        );
        assert_eq!(registry.snapshot().kernels[0].launches, 2);
    }
}
