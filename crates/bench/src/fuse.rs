//! `gnnone-prof fuse` — the fusion-IR match/lower report plus
//! fused-vs-unfused timings on the native backend.
//!
//! Two halves:
//!
//! 1. **Match report**: every prebuilt IR chain is lowered and its plan
//!    printed — which pattern matched, which pipeline each step launches,
//!    how many launches survive. The GAT chain is lowered twice (fused
//!    and `fuse: false`) so the report shows exactly what the pattern
//!    matcher buys.
//! 2. **Timing sweep**: the GAT chain (inference shape) is executed
//!    through [`gnnone_kernels::ir::execute`] under both plans on the
//!    selected Table 1 graphs, warmup/repeat policy as in the native
//!    bench. The headline columns are end-to-end plan wall-clock —
//!    launches, host fallback steps, and the device↔host movement of
//!    every value between steps. That movement is the object of study:
//!    the unfused chain round-trips its logits and α edge tensors
//!    through device buffers between launches, which is exactly the
//!    traffic the fused launch eliminates (§5.3.2's conjecture).
//!    Launch-region-only medians
//!    ([`ExecResult::plan_ms`](gnnone_kernels::ir::ExecResult::plan_ms))
//!    ride along as `*_launch_ms` diagnostics, matching the per-kernel
//!    bench cell accounting. The fused plan must win end-to-end — that
//!    result is what the `fusion` section of `BENCH_NATIVE.json`
//!    records.

use std::time::Instant;

use gnnone_kernels::backend::{Backend, NativeEngine};
use gnnone_kernels::ir::{self, lower::LowerOptions, lower::Plan, lower::Step};
use gnnone_sim::jsonio::Json;
use gnnone_sparse::datasets::Scale;

use crate::cli::Options;
use crate::runner;

/// Options for one `fuse` sweep (mirrors the native bench policy).
#[derive(Debug, Clone)]
pub struct FuseOpts {
    /// Dataset scale for the Table 1 analogues.
    pub scale: Scale,
    /// Table 1 ids to sweep; empty = all 19.
    pub dataset_ids: Vec<String>,
    /// Feature length for the GAT chain's `z`. Defaults to 8 — the
    /// classic GAT per-head feature width (8 heads × 8 features), which
    /// is what a fused attention launch processes per head.
    pub f: usize,
    /// Worker threads; `None` = every available core.
    pub threads: Option<usize>,
    /// Untimed warmup runs per plan.
    pub warmup: usize,
    /// Timed runs per plan.
    pub repeats: usize,
    /// Kernel-name filter (`--kernels FusedGAT,GnnOne`), case-insensitive;
    /// empty = time both chains. A chain is timed only when its lowered
    /// plan launches at least one selected kernel, so e.g.
    /// `--kernels FusedGAT` isolates the fused launch.
    pub kernels: Vec<String>,
}

impl Default for FuseOpts {
    fn default() -> Self {
        Self {
            scale: Scale::Small,
            dataset_ids: Vec::new(),
            f: 8,
            threads: None,
            warmup: 2,
            repeats: 5,
            kernels: Vec::new(),
        }
    }
}

/// Registry names of the kernels a lowered plan launches (host fallback
/// steps have none) — the vocabulary `--kernels` filters against.
pub fn plan_kernel_names(plan: &Plan) -> Vec<&'static str> {
    let mut names: Vec<&'static str> = plan
        .steps
        .iter()
        .filter_map(|s| match s {
            Step::FusedGat { .. } => Some("FusedGAT"),
            Step::Spmm { .. } | Step::SpmmOnes { .. } | Step::Sddmm { .. } => Some("GnnOne"),
            Step::UAddV { .. } => Some("GnnOne-UAddV"),
            _ => None,
        })
        .collect();
    names.dedup();
    names
}

/// Whether a plan launches any kernel selected by `filter` (empty
/// filter selects everything).
fn plan_selected(plan: &Plan, filter: &[String]) -> bool {
    filter.is_empty()
        || plan_kernel_names(plan)
            .iter()
            .any(|n| filter.iter().any(|k| k.eq_ignore_ascii_case(n)))
}

/// One (graph, plan) row of the match report.
#[derive(Debug, Clone)]
pub struct MatchRow {
    /// IR graph name (plus the lowering mode for the GAT chain).
    pub graph: String,
    /// Number of pipeline launches in the lowered plan.
    pub launches: usize,
    /// Whether the fused GAT pattern matched.
    pub fused: bool,
    /// `Plan::describe` output.
    pub report: String,
}

/// Fused-vs-unfused timings for one dataset.
///
/// The headline `*_best_ms`/`*_median_ms` columns are **end-to-end plan
/// executions** ([`gnnone_kernels::ir::execute`] wall-clock): launches,
/// host fallback steps, *and* the device↔host movement of every value
/// between steps. That movement is the object of study — the unfused
/// chain round-trips its logits and α edge tensors through device
/// buffers between launches, which is exactly the traffic the fused
/// launch eliminates (§5.3.2's conjecture). Launch-region-only timing
/// would credit the unfused chain with free round trips.
///
/// The `*_launch_ms` columns record the narrower launch + host-step
/// accounting ([`gnnone_kernels::ir::ExecResult::plan_ms`]) as a
/// diagnostic: it matches the per-kernel bench cell methodology, so the
/// fused number here lines up with the `fused` family row of the sweep.
#[derive(Debug, Clone)]
pub struct FuseCell {
    /// Table 1 dataset id.
    pub dataset: String,
    /// Nonzeros of the swept graph.
    pub nnz: usize,
    /// Fastest fused plan execution, end-to-end milliseconds.
    pub fused_best_ms: f64,
    /// Median fused plan execution, end-to-end milliseconds.
    pub fused_median_ms: f64,
    /// Fastest unfused plan execution, end-to-end milliseconds.
    pub unfused_best_ms: f64,
    /// Median unfused plan execution, end-to-end milliseconds.
    pub unfused_median_ms: f64,
    /// Median fused launch + host-step milliseconds (staging excluded).
    pub fused_launch_ms: f64,
    /// Median unfused launch + host-step milliseconds (staging excluded).
    pub unfused_launch_ms: f64,
}

impl FuseCell {
    /// `unfused_median / fused_median` (end-to-end) — > 1 means fusion
    /// wins.
    pub fn speedup(&self) -> f64 {
        if self.fused_median_ms > 0.0 {
            self.unfused_median_ms / self.fused_median_ms
        } else {
            f64::INFINITY
        }
    }

    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("dataset", Json::Str(self.dataset.clone())),
            ("nnz", Json::U64(self.nnz as u64)),
            ("fused_best_ms", Json::F64(self.fused_best_ms)),
            ("fused_median_ms", Json::F64(self.fused_median_ms)),
            ("unfused_best_ms", Json::F64(self.unfused_best_ms)),
            ("unfused_median_ms", Json::F64(self.unfused_median_ms)),
            ("fused_launch_ms", Json::F64(self.fused_launch_ms)),
            ("unfused_launch_ms", Json::F64(self.unfused_launch_ms)),
            ("speedup", Json::F64(self.speedup())),
        ])
    }
}

/// The full `fuse` result: match report + timing cells.
#[derive(Debug)]
pub struct FuseReport {
    /// Worker threads the engine actually used.
    pub threads: usize,
    /// Feature length of the GAT chain's `z`.
    pub f: usize,
    /// Untimed runs per plan.
    pub warmup: usize,
    /// Timed runs per plan.
    pub repeats: usize,
    /// One row per lowered prebuilt chain.
    pub matches: Vec<MatchRow>,
    /// One timing cell per dataset.
    pub cells: Vec<FuseCell>,
}

impl FuseReport {
    /// The `fusion` section appended to `BENCH_NATIVE.json`.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("threads", Json::U64(self.threads as u64)),
            ("f", Json::U64(self.f as u64)),
            ("warmup", Json::U64(self.warmup as u64)),
            ("repeats", Json::U64(self.repeats as u64)),
            (
                "plans",
                Json::Arr(
                    self.matches
                        .iter()
                        .map(|m| {
                            Json::obj(vec![
                                ("graph", Json::Str(m.graph.clone())),
                                ("launches", Json::U64(m.launches as u64)),
                                ("fused", Json::Bool(m.fused)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "gat_fused_vs_unfused",
                Json::Arr(self.cells.iter().map(FuseCell::to_json).collect()),
            ),
        ])
    }
}

fn match_row(name: &str, plan: &Plan) -> MatchRow {
    MatchRow {
        graph: name.to_string(),
        launches: plan.launches(),
        fused: plan.fused(),
        report: plan.describe(),
    }
}

/// Lowers every prebuilt chain and collects the match report.
pub fn match_report() -> Result<Vec<MatchRow>, String> {
    let lower = |g: &ir::IrGraph, opts: LowerOptions| {
        ir::lower(g, opts).map_err(|e| format!("{}: {e}", g.name()))
    };
    let fused = LowerOptions::default();
    let unfused = LowerOptions { fuse: false };
    Ok(vec![
        match_row(
            "gat_attention (fuse)",
            &lower(&ir::gat_attention_graph(0.2), fused)?,
        ),
        match_row(
            "gat_attention (no-fuse)",
            &lower(&ir::gat_attention_graph(0.2), unfused)?,
        ),
        match_row(
            "gat_attention_inference",
            &lower(&ir::gat_attention_inference_graph(0.2), fused)?,
        ),
        match_row("spmm", &lower(&ir::spmm_graph(), fused)?),
        match_row("copy_u_sum", &lower(&ir::copy_u_sum_graph(), fused)?),
        match_row("sddmm", &lower(&ir::sddmm_graph(), fused)?),
        match_row("u_add_v", &lower(&ir::u_add_v_graph(), fused)?),
        match_row("dot_attention", &lower(&ir::dot_attention_graph(), fused)?),
    ])
}

fn median(sorted: &[f64]) -> f64 {
    let n = sorted.len();
    if n == 0 {
        return 0.0;
    }
    if n % 2 == 1 {
        sorted[n / 2]
    } else {
        0.5 * (sorted[n / 2 - 1] + sorted[n / 2])
    }
}

/// Runs the full fuse sweep: lowers the prebuilt chains, then times the
/// GAT chain fused vs unfused through the IR executor per dataset.
pub fn run_fuse(opts: &FuseOpts) -> Result<FuseReport, String> {
    let cli = Options {
        datasets: opts.dataset_ids.clone(),
        scale: opts.scale,
        ..Default::default()
    };
    let specs = runner::try_selected_specs(&cli)?;
    let eng = match opts.threads {
        Some(t) => NativeEngine::with_threads(t)?,
        None => NativeEngine::new(),
    };
    let threads = eng.threads();
    let backend = Backend::Native(eng);

    let matches = match_report()?;
    // Inference shape: the fused launch keeps α in-launch while the
    // unfused chain still materializes it as the aggregation operand —
    // the exact round trip the fusion conjecture (§5.3.2) is about.
    let g = ir::gat_attention_inference_graph(0.2);
    let fused_plan =
        ir::lower(&g, LowerOptions::default()).map_err(|e| format!("lower fused: {e}"))?;
    let unfused_plan =
        ir::lower(&g, LowerOptions { fuse: false }).map_err(|e| format!("lower unfused: {e}"))?;
    if !fused_plan.fused() || fused_plan.launches() != 1 {
        return Err("GAT chain did not lower to a single fused launch".to_string());
    }

    // Resolve the --kernels filter against the kernels the two lowered
    // chains actually launch, so a typo fails fast instead of silently
    // timing nothing.
    let known = {
        let mut v = plan_kernel_names(&fused_plan);
        v.extend(plan_kernel_names(&unfused_plan));
        v.sort_unstable();
        v.dedup();
        v
    };
    for name in &opts.kernels {
        if !known.iter().any(|k| k.eq_ignore_ascii_case(name)) {
            return Err(format!(
                "unknown kernel name in --kernels: {name} (this sweep launches: {})",
                known.join(", ")
            ));
        }
    }
    let time_fused = plan_selected(&fused_plan, &opts.kernels);
    let time_unfused = plan_selected(&unfused_plan, &opts.kernels);

    let mut cells = Vec::new();
    for spec in &specs {
        let ld = runner::load(spec, opts.scale);
        let n = ld.graph.num_vertices();
        // Same operand seeds as the native bench, so the fused cell here
        // and the `fused` family cell there describe the same launch.
        let el = runner::vertex_features(n, 1, 43);
        let er = runner::vertex_features(n, 1, 47);
        let z = runner::vertex_features(n, opts.f, 41);
        let binds: Vec<(ir::ValueId, &[f32])> = vec![
            (g.find_input("att_src").expect("att_src"), &er),
            (g.find_input("att_dst").expect("att_dst"), &el),
            (g.find_input("z").expect("z"), &z),
        ];
        // Each run yields (end-to-end wall ms, launch+host ms).
        let run = |plan: &Plan| -> Result<(f64, f64), String> {
            let t = Instant::now();
            let res = ir::execute(&backend, &ld.graph, &g, plan, opts.f, &binds)
                .map_err(|e| format!("{}: {e}", spec.id))?;
            Ok((t.elapsed().as_secs_f64() * 1e3, res.plan_ms()))
        };
        // Repeats are interleaved so load and cache drift hit both plans
        // equally instead of biasing whichever ran last.
        for _ in 0..opts.warmup {
            if time_fused {
                run(&fused_plan)?;
            }
            if time_unfused {
                run(&unfused_plan)?;
            }
        }
        let mut fused_wall = Vec::with_capacity(opts.repeats);
        let mut fused_launch = Vec::with_capacity(opts.repeats);
        let mut unfused_wall = Vec::with_capacity(opts.repeats);
        let mut unfused_launch = Vec::with_capacity(opts.repeats);
        for _ in 0..opts.repeats.max(1) {
            if time_fused {
                let (w, l) = run(&fused_plan)?;
                fused_wall.push(w);
                fused_launch.push(l);
            }
            if time_unfused {
                let (w, l) = run(&unfused_plan)?;
                unfused_wall.push(w);
                unfused_launch.push(l);
            }
        }
        // A chain deselected by --kernels reports zeroed columns.
        let stats = |mut times: Vec<f64>| {
            if times.is_empty() {
                return (0.0, 0.0);
            }
            times.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
            (times[0], median(&times))
        };
        let (fb, fm) = stats(fused_wall);
        let (ub, um) = stats(unfused_wall);
        let (_, fl) = stats(fused_launch);
        let (_, ul) = stats(unfused_launch);
        cells.push(FuseCell {
            dataset: spec.id.to_string(),
            nnz: ld.graph.nnz(),
            fused_best_ms: fb,
            fused_median_ms: fm,
            unfused_best_ms: ub,
            unfused_median_ms: um,
            fused_launch_ms: fl,
            unfused_launch_ms: ul,
        });
    }

    Ok(FuseReport {
        threads,
        f: opts.f,
        warmup: opts.warmup,
        repeats: opts.repeats,
        matches,
        cells,
    })
}

/// Inserts (or replaces) the `fusion` section of an existing
/// `BENCH_NATIVE.json` document.
pub fn append_fusion_section(doc: Json, report: &FuseReport) -> Result<Json, String> {
    let Json::Obj(mut fields) = doc else {
        return Err("BENCH_NATIVE.json root is not an object".to_string());
    };
    fields.retain(|(k, _)| k != "fusion");
    fields.push(("fusion".to_string(), report.to_json()));
    Ok(Json::Obj(fields))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_opts() -> FuseOpts {
        FuseOpts {
            scale: Scale::Tiny,
            dataset_ids: vec!["G0".into()],
            f: 8,
            threads: Some(2),
            warmup: 1,
            repeats: 3,
            kernels: Vec::new(),
        }
    }

    #[test]
    fn kernels_filter_isolates_one_chain_and_rejects_typos() {
        let report = run_fuse(&FuseOpts {
            kernels: vec!["fusedgat".into()],
            ..tiny_opts()
        })
        .unwrap();
        let c = &report.cells[0];
        assert!(c.fused_median_ms > 0.0, "fused chain must be timed");
        assert_eq!(c.unfused_median_ms, 0.0, "unfused chain is deselected");
        let err = run_fuse(&FuseOpts {
            kernels: vec!["NoSuchKernel".into()],
            ..tiny_opts()
        })
        .unwrap_err();
        assert!(err.contains("unknown kernel name"), "{err}");
    }

    #[test]
    fn match_report_covers_every_prebuilt_chain() {
        let rows = match_report().unwrap();
        assert_eq!(rows.len(), 8);
        let gat = &rows[0];
        assert!(gat.fused);
        assert_eq!(gat.launches, 1);
        let unfused = &rows[1];
        assert!(!unfused.fused);
        assert_eq!(unfused.launches, 2);
        let inference = &rows[2];
        assert!(inference.fused);
        assert_eq!(inference.launches, 1);
        assert!(!inference.report.contains("+alpha"));
        // Every non-GAT chain lowers without the fused pattern.
        assert!(rows[3..].iter().all(|r| !r.fused));
    }

    #[test]
    fn fuse_sweep_times_both_plans() {
        let report = run_fuse(&tiny_opts()).unwrap();
        assert_eq!(report.threads, 2);
        assert_eq!(report.cells.len(), 1);
        let c = &report.cells[0];
        assert_eq!(c.dataset, "G0");
        assert!(c.fused_best_ms <= c.fused_median_ms);
        assert!(c.unfused_best_ms <= c.unfused_median_ms);
        assert!(c.speedup() > 0.0);
    }

    #[test]
    fn fusion_section_appends_and_replaces() {
        let report = FuseReport {
            threads: 2,
            f: 8,
            warmup: 1,
            repeats: 3,
            matches: match_report().unwrap(),
            cells: Vec::new(),
        };
        let doc = Json::obj(vec![("backend", Json::Str("native".to_string()))]);
        let doc = append_fusion_section(doc, &report).unwrap();
        assert!(doc.get("fusion").is_some());
        assert_eq!(doc.get("backend").and_then(Json::as_str), Some("native"));
        // Re-appending replaces rather than duplicates.
        let doc = append_fusion_section(doc, &report).unwrap();
        let fields = doc.as_obj().unwrap();
        assert_eq!(fields.iter().filter(|(k, _)| k == "fusion").count(), 1);
    }
}
