//! Registry-wide adversarial fuzz sweep — the engine behind
//! `gnnone-prof fuzz`.
//!
//! Drives every shipped kernel (the same registry set `gnnone-prof
//! sanitize` covers) over two input populations:
//!
//! * the adversarial corpus from [`gnnone_sparse::gen::adversarial`] —
//!   valid-extreme topologies must run clean, malformed inputs must be
//!   rejected by validation with a typed error;
//! * optionally, tiny-scale Table 1 graphs as a healthy-population control.
//!
//! Every kernel launch runs under the watchdog (armed by default in
//! `gnnone-sim`) and, with [`FuzzOpts::sanitize`], under the memory/race
//! sanitizer. The exit contract: the *process* never panics or hangs —
//! every failure surfaces as a structured [`FuzzFinding`] — and the run is
//! judged clean only when no finding fired. Structured rejections of
//! malformed inputs are successes, recorded separately.

use std::sync::Arc;

use gnnone_kernels::graph::GraphData;
use gnnone_kernels::registry;
use gnnone_sim::engine::LaunchError;
use gnnone_sim::jsonio::Json;
use gnnone_sim::{DeviceBuffer, Gpu, SanitizeConfig, Sanitizer};
use gnnone_sparse::datasets::{Dataset, Scale};
use gnnone_sparse::gen::adversarial;

/// What a fuzz finding means for the robustness contract.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FindingKind {
    /// A kernel (or its host-side prep) panicked — caught, but a bug.
    Panic,
    /// The sanitizer reported findings on a *valid* graph.
    Sanitizer,
    /// A malformed input was accepted by validation.
    ValidationHole,
    /// A valid input was rejected by validation.
    SpuriousRejection,
    /// A shipped kernel was aborted (watchdog or unsanitized OOB) on a
    /// valid graph.
    Abort,
}

impl FindingKind {
    /// Stable slug for reports.
    pub fn as_str(self) -> &'static str {
        match self {
            FindingKind::Panic => "panic",
            FindingKind::Sanitizer => "sanitizer",
            FindingKind::ValidationHole => "validation-hole",
            FindingKind::SpuriousRejection => "spurious-rejection",
            FindingKind::Abort => "abort",
        }
    }
}

/// One fuzz failure.
#[derive(Debug, Clone)]
pub struct FuzzFinding {
    /// Corpus case or dataset id the input came from.
    pub case: String,
    /// Kernel name when the failure is attributable to one.
    pub kernel: Option<String>,
    /// Failure class.
    pub kind: FindingKind,
    /// Human-readable detail (structured error display, panic message…).
    pub detail: String,
}

impl FuzzFinding {
    /// Serializes for the `--out` report.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("case", Json::Str(self.case.clone())),
            (
                "kernel",
                match &self.kernel {
                    Some(k) => Json::Str(k.clone()),
                    None => Json::Null,
                },
            ),
            ("kind", Json::Str(self.kind.as_str().to_string())),
            ("detail", Json::Str(self.detail.clone())),
        ])
    }
}

impl std::fmt::Display for FuzzFinding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "[{}] {}{}: {}",
            self.kind.as_str(),
            self.case,
            match &self.kernel {
                Some(k) => format!(" / {k}"),
                None => String::new(),
            },
            self.detail
        )
    }
}

/// Fuzz sweep configuration.
#[derive(Debug, Clone)]
pub struct FuzzOpts {
    /// Corpus seed (also printed in the report so failures reproduce).
    pub seed: u64,
    /// Attach the memory/race sanitizer to every launch.
    pub sanitize: bool,
    /// Table 1 ids to include at tiny scale as a healthy control
    /// population (empty: corpus only).
    pub dataset_ids: Vec<String>,
    /// Feature width for the Table 1 control graphs.
    pub f: usize,
}

impl Default for FuzzOpts {
    fn default() -> Self {
        Self {
            seed: 0xC0FFEE,
            sanitize: true,
            dataset_ids: Vec::new(),
            f: 8,
        }
    }
}

/// Outcome of a full fuzz sweep.
#[derive(Debug)]
pub struct FuzzReport {
    /// Seed the corpus was built from.
    pub seed: u64,
    /// Corpus cases + control datasets processed.
    pub cases_run: usize,
    /// Kernel launches attempted across all inputs.
    pub kernels_driven: usize,
    /// Malformed inputs rejected with a typed error: `(case, error)`.
    /// These are successes — the structured path worked.
    pub rejected: Vec<(String, String)>,
    /// Contract violations. Non-empty ⇒ the sweep failed.
    pub findings: Vec<FuzzFinding>,
}

impl FuzzReport {
    /// `true` when no finding fired.
    pub fn clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Serializes the full report.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("seed", Json::U64(self.seed)),
            ("cases_run", Json::U64(self.cases_run as u64)),
            ("kernels_driven", Json::U64(self.kernels_driven as u64)),
            (
                "rejected",
                Json::Arr(
                    self.rejected
                        .iter()
                        .map(|(case, err)| {
                            Json::obj(vec![
                                ("case", Json::Str(case.clone())),
                                ("error", Json::Str(err.clone())),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "findings",
                Json::Arr(self.findings.iter().map(FuzzFinding::to_json).collect()),
            ),
        ])
    }
}

/// Deterministic filler values for buffers the corpus case doesn't supply.
fn filler(n: usize, salt: usize) -> Vec<f32> {
    (0..n)
        .map(|i| (((i * 37 + salt * 101) % 29) as f32 - 14.0) * 0.11)
        .collect()
}

/// Runs the full fuzz sweep. Never panics: every kernel attempt is
/// individually isolated.
pub fn run_fuzz(opts: &FuzzOpts) -> Result<FuzzReport, String> {
    let mut report = FuzzReport {
        seed: opts.seed,
        cases_run: 0,
        kernels_driven: 0,
        rejected: Vec::new(),
        findings: Vec::new(),
    };

    for case in adversarial::corpus(opts.seed) {
        report.cases_run += 1;
        match case.resolve() {
            Ok(resolved) => {
                if !case.expect_valid {
                    report.findings.push(FuzzFinding {
                        case: case.name.to_string(),
                        kernel: None,
                        kind: FindingKind::ValidationHole,
                        detail: "malformed input passed validation".to_string(),
                    });
                    continue;
                }
                let graph = Arc::new(GraphData::new(resolved.coo.clone()));
                drive_all_kernels(
                    case.name,
                    &graph,
                    &resolved.features,
                    resolved.f,
                    opts.sanitize,
                    &mut report,
                );
            }
            Err(e) => {
                if case.expect_valid {
                    report.findings.push(FuzzFinding {
                        case: case.name.to_string(),
                        kernel: None,
                        kind: FindingKind::SpuriousRejection,
                        detail: e.to_string(),
                    });
                } else {
                    report.rejected.push((case.name.to_string(), e.to_string()));
                }
            }
        }
    }

    for id in &opts.dataset_ids {
        report.cases_run += 1;
        let ds = Dataset::try_by_id(id, Scale::Tiny).map_err(|e| e.to_string())?;
        let graph = Arc::new(GraphData::new(ds.coo.clone()));
        let nv = graph.num_vertices();
        let feats = filler(nv * opts.f, 1);
        drive_all_kernels(
            ds.spec.id,
            &graph,
            &feats,
            opts.f,
            opts.sanitize,
            &mut report,
        );
    }

    Ok(report)
}

/// Drives every registry kernel over one validated graph, recording
/// findings into `report`. Mirrors the `gnnone-prof sanitize` registry
/// coverage (all kernel families by name).
fn drive_all_kernels(
    case: &str,
    graph: &Arc<GraphData>,
    features: &[f32],
    f: usize,
    sanitize: bool,
    report: &mut FuzzReport,
) {
    let gpu = Gpu::new(crate::figure_gpu_spec());
    let san: Option<Arc<Sanitizer>> = if sanitize {
        Some(gpu.enable_sanitizer(SanitizeConfig::on()))
    } else {
        None
    };
    let nv = graph.num_vertices();
    let nnz = graph.nnz();
    let mut rev = features.to_vec();
    rev.reverse();
    let dx = DeviceBuffer::from_slice(features);
    let dz = DeviceBuffer::from_slice(&rev);
    let dw = DeviceBuffer::from_slice(&filler(nnz, 3));
    let del = DeviceBuffer::from_slice(&filler(nv, 4));
    let der = DeviceBuffer::from_slice(&filler(nv, 5));
    let dy = DeviceBuffer::<f32>::zeros(nv * f);
    let dwe = DeviceBuffer::<f32>::zeros(nnz);
    let dyv = DeviceBuffer::<f32>::zeros(nv);
    let dalpha = DeviceBuffer::<f32>::zeros(nnz);

    let mut drive = |name: &str, run: &mut dyn FnMut() -> Result<(), LaunchError>| {
        report.kernels_driven += 1;
        let before = san.as_ref().map_or(0, |s| s.finding_count());
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(&mut *run));
        match outcome {
            Ok(Ok(())) => {
                let delta = san.as_ref().map_or(0, |s| s.finding_count()) - before;
                if delta > 0 {
                    report.findings.push(FuzzFinding {
                        case: case.to_string(),
                        kernel: Some(name.to_string()),
                        kind: FindingKind::Sanitizer,
                        detail: format!("{delta} sanitizer finding(s) on a valid graph"),
                    });
                }
            }
            Ok(Err(LaunchError::Aborted(a))) => {
                report.findings.push(FuzzFinding {
                    case: case.to_string(),
                    kernel: Some(name.to_string()),
                    kind: FindingKind::Abort,
                    detail: a.to_string(),
                });
            }
            // A structured decline (grid shape, OOM…) is an allowed answer.
            Ok(Err(_)) => {}
            Err(payload) => {
                let msg = if let Some(s) = payload.downcast_ref::<&'static str>() {
                    (*s).to_string()
                } else if let Some(s) = payload.downcast_ref::<String>() {
                    s.clone()
                } else {
                    "non-string panic payload".to_string()
                };
                report.findings.push(FuzzFinding {
                    case: case.to_string(),
                    kernel: Some(name.to_string()),
                    kind: FindingKind::Panic,
                    detail: msg,
                });
            }
        }
    };

    for k in registry::sddmm_kernels(graph) {
        drive(k.name(), &mut || k.run(&gpu, &dx, &dz, f, &dwe).map(drop));
    }
    for k in registry::spmm_kernels(graph)
        .into_iter()
        .chain(registry::spmm_discussion_kernels(graph))
        .chain(registry::spmm_format_kernels(graph))
    {
        dy.fill_default();
        drive(k.name(), &mut || k.run(&gpu, &dw, &dx, f, &dy).map(drop));
    }
    for k in registry::spmv_class_kernels(graph) {
        dyv.fill_default();
        drive(k.name(), &mut || k.run(&gpu, &dw, &del, &dyv).map(drop));
    }
    for k in registry::fused_kernels(graph) {
        dy.fill_default();
        drive(k.name(), &mut || {
            k.run(&gpu, &dz, &del, &der, f, &dy, Some(&dalpha))
                .map(drop)
        });
    }
    for k in registry::edge_apply_kernels(graph) {
        drive(k.name(), &mut || k.run(&gpu, &del, &der, &dwe).map(drop));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fuzz_sweep_is_clean_and_covers_all_kernels() {
        let opts = FuzzOpts {
            seed: 0xC0FFEE,
            sanitize: true,
            dataset_ids: vec!["G0".to_string()],
            f: 8,
        };
        let report = run_fuzz(&opts).unwrap();
        for finding in &report.findings {
            eprintln!("finding: {finding}");
        }
        assert!(report.clean(), "{} finding(s)", report.findings.len());
        // All 21 registry kernels drive on each valid input; at least the
        // control dataset plus several valid-extreme cases ran.
        assert!(report.kernels_driven >= 21 * 5, "{}", report.kernels_driven);
        assert!(report.rejected.len() >= 8, "{}", report.rejected.len());
        assert!(report.cases_run >= 16);
    }

    #[test]
    fn report_serializes_with_findings() {
        let report = FuzzReport {
            seed: 7,
            cases_run: 1,
            kernels_driven: 2,
            rejected: vec![("bad".into(), "invalid Csr".into())],
            findings: vec![FuzzFinding {
                case: "c".into(),
                kernel: Some("K".into()),
                kind: FindingKind::Panic,
                detail: "boom".into(),
            }],
        };
        assert!(!report.clean());
        let j = report.to_json().to_string_compact();
        assert!(j.contains("\"panic\""), "{j}");
        assert!(j.contains("boom"), "{j}");
        assert!(j.contains("invalid Csr"), "{j}");
    }
}
