//! Minimal command-line parsing shared by the figure binaries (kept
//! dependency-free on purpose — the binaries take a handful of well-known
//! flags). Parsing is fallible: malformed flags come back as
//! [`GnnOneError::Config`] so `figure_main` emits its one machine-parseable
//! error line instead of a raw panic backtrace.

use gnnone_kernels::backend::BackendKind;
use gnnone_sim::GnnOneError;
use gnnone_sparse::datasets::Scale;

/// Parsed common options.
#[derive(Debug, Clone)]
pub struct Options {
    /// Execution backend (`--backend sim|native`, default sim). The
    /// dynamic observability flags (`--trace`, `--metrics`, `--chaos`)
    /// attach to the simulator and are rejected with a config error when
    /// combined with `native` — their static alternative is `--verify`.
    /// `--sanitize` works on both backends: dynamic shadow auditing on
    /// sim, the static pre-launch verifier on native. `--threads` is
    /// native-only.
    pub backend: BackendKind,
    /// Native worker thread count (`--threads N`, native backend only);
    /// `None` uses every available core.
    pub threads: Option<usize>,
    /// Dataset scale (`--scale tiny|small|medium`, default small).
    pub scale: Scale,
    /// Feature lengths to sweep (`--dims 6,16,32,64`).
    pub dims: Vec<usize>,
    /// Dataset IDs to run (`--datasets G0,G3,G10`), empty = all.
    pub datasets: Vec<String>,
    /// Training epochs (`--epochs 200`).
    pub epochs: usize,
    /// Output JSON path (`--out results/figN.json`).
    pub out: Option<String>,
    /// Dependency-free table output (`--plain-out golden.json`): the same
    /// tables as `--out`, serialized through `jsonio` so the bytes are
    /// stable for golden-parity diffs.
    pub plain_out: Option<String>,
    /// Chrome-trace output path (`--trace trace.json`); `None` disables
    /// tracing entirely.
    pub trace: Option<String>,
    /// Metrics-snapshot output path (`--metrics metrics.json`); `None`
    /// disables the metrics registry.
    pub metrics: Option<String>,
    /// Sanitizer report output path (`--sanitize sanitize.json`); `None`
    /// leaves the sanitizer detached (the default, zero-cost path). On
    /// `--backend native` the report holds the static verifier's verdicts
    /// instead of dynamic shadow findings.
    pub sanitize: Option<String>,
    /// Static pre-launch verification (`--verify`): before the sweep, run
    /// the symbolic access-summary verifier over every registry kernel on
    /// the selected datasets and refuse to launch unless every obligation
    /// is `Proved`. Works on both backends; the report goes to stderr so
    /// figure tables and `--out`/`--plain-out` files are byte-identical
    /// with and without the flag.
    pub verify: bool,
    /// Schedule-chaos seed (`--chaos 7`): every launch executes under a
    /// seeded permutation of CTA and warp order. Outputs and reports must
    /// be byte-identical to a detached run — that is the determinism
    /// contract the flag exists to exercise. `None` leaves chaos detached.
    pub chaos: Option<u64>,
    /// Sharded execution (`--shards K`): run each supporting figure's
    /// kernels through the fault-tolerant [`ShardedExecutor`] over a K-way
    /// row-aligned partition — K simulated devices on `--backend sim`,
    /// K rayon pools on `--backend native`. `K = 1` must be byte-identical
    /// to the unsharded run. Figures without a sharded path reject the
    /// flag, as do the sim-attached observability flags (`--trace`,
    /// `--metrics`, `--chaos`), which cannot follow launches onto the
    /// multi-device topology.
    ///
    /// [`ShardedExecutor`]: gnnone_kernels::shard::ShardedExecutor
    pub shards: Option<usize>,
    /// Kernel-name filter (`--kernels GnnOne,Sputnik`), case-insensitive;
    /// empty = every registry kernel. Honoured by the `gnnone-prof`
    /// sweeps (`bench`, `chaos`, `verify`, `shard`, `fuse`).
    pub kernels: Vec<String>,
}

impl Default for Options {
    fn default() -> Self {
        Self {
            backend: BackendKind::Sim,
            threads: None,
            scale: Scale::Small,
            dims: vec![6, 16, 32, 64],
            datasets: Vec::new(),
            epochs: 200,
            out: None,
            plain_out: None,
            trace: None,
            metrics: None,
            sanitize: None,
            verify: false,
            chaos: None,
            shards: None,
            kernels: Vec::new(),
        }
    }
}

fn config_error(detail: impl Into<String>) -> GnnOneError {
    GnnOneError::Config {
        detail: detail.into(),
    }
}

/// Parses `std::env::args`-style flags (everything after the binary name).
/// Malformed values come back as [`GnnOneError::Config`] — never a panic.
pub fn parse(args: impl Iterator<Item = String>) -> Result<Options, GnnOneError> {
    let mut opts = Options::default();
    let mut args = args.peekable();
    while let Some(arg) = args.next() {
        let mut take = |what: &str| -> Result<String, GnnOneError> {
            args.next()
                .ok_or_else(|| config_error(format!("missing value for {what}")))
        };
        match arg.as_str() {
            "--backend" => {
                let v = take("--backend")?;
                opts.backend = v.parse().map_err(config_error)?;
            }
            "--threads" => {
                let v = take("--threads")?;
                let threads: usize = v.parse().map_err(|_| {
                    config_error(format!("--threads expects an integer, got `{v}`"))
                })?;
                if threads == 0 {
                    return Err(config_error("--threads must be >= 1"));
                }
                opts.threads = Some(threads);
            }
            "--scale" => {
                let v = take("--scale")?;
                opts.scale = match v.to_ascii_lowercase().as_str() {
                    "tiny" => Scale::Tiny,
                    "small" => Scale::Small,
                    "medium" => Scale::Medium,
                    other => {
                        return Err(config_error(format!(
                            "unknown scale `{other}` (tiny|small|medium)"
                        )))
                    }
                }
            }
            "--dims" => {
                let v = take("--dims")?;
                opts.dims = v
                    .split(',')
                    .map(|d| {
                        d.trim().parse().map_err(|_| {
                            config_error(format!("--dims expects integers, got `{d}`"))
                        })
                    })
                    .collect::<Result<_, _>>()?;
            }
            "--datasets" => {
                opts.datasets = take("--datasets")?
                    .split(',')
                    .map(|s| s.trim().to_string())
                    .collect();
            }
            "--epochs" => {
                let v = take("--epochs")?;
                opts.epochs = v
                    .parse()
                    .map_err(|_| config_error(format!("--epochs expects an integer, got `{v}`")))?;
            }
            "--chaos" => {
                let v = take("--chaos")?;
                opts.chaos = Some(v.parse().map_err(|_| {
                    config_error(format!("--chaos expects an integer seed, got `{v}`"))
                })?);
            }
            "--shards" => {
                let v = take("--shards")?;
                let shards: usize = v
                    .parse()
                    .map_err(|_| config_error(format!("--shards expects an integer, got `{v}`")))?;
                if shards == 0 {
                    return Err(config_error("--shards must be >= 1"));
                }
                opts.shards = Some(shards);
            }
            "--kernels" => {
                opts.kernels = take("--kernels")?
                    .split(',')
                    .filter(|s| !s.is_empty())
                    .map(|s| s.trim().to_string())
                    .collect();
            }
            "--out" => opts.out = Some(take("--out")?),
            "--plain-out" => opts.plain_out = Some(take("--plain-out")?),
            "--trace" => opts.trace = Some(take("--trace")?),
            "--metrics" => opts.metrics = Some(take("--metrics")?),
            "--sanitize" => opts.sanitize = Some(take("--sanitize")?),
            "--verify" => opts.verify = true,
            "--help" | "-h" => {
                eprintln!(
                    "flags: --backend sim|native  --threads N (native only)  \
                     --scale tiny|small|medium  --dims 6,16,32,64  \
                     --datasets G0,G3  --epochs N  --out results/fig.json  \
                     --plain-out golden.json  --trace trace.json (sim only)  \
                     --metrics metrics.json (sim only)  \
                     --sanitize sanitize.json (dynamic on sim, static on native)  \
                     --verify (static pre-launch verification, both backends)  \
                     --chaos SEED (sim only)  \
                     --shards K (sharded execution, fig3/fig4/fig12)  \
                     --kernels A,B (name filter, gnnone-prof sweeps)"
                );
                std::process::exit(0);
            }
            other => return Err(config_error(format!("unknown flag {other} (see --help)"))),
        }
    }
    validate(&opts)?;
    Ok(opts)
}

/// Cross-flag validation: the dynamic observability layers attach to the
/// simulator only (`--sanitize` degrades to the static verifier on
/// native), and `--threads` sizes the native pool only. Invalid
/// combinations are structured config errors, not silent no-ops.
fn validate(opts: &Options) -> Result<(), GnnOneError> {
    if opts.backend == BackendKind::Native {
        let sim_only = [
            ("--trace", opts.trace.is_some()),
            ("--metrics", opts.metrics.is_some()),
            ("--chaos", opts.chaos.is_some()),
        ];
        for (flag, given) in sim_only {
            if given {
                return Err(config_error(format!(
                    "{flag} attaches to the simulator and cannot be combined \
                     with --backend native; the static alternative is \
                     --verify (symbolic access-summary verification before \
                     launch)"
                )));
            }
        }
    } else if opts.threads.is_some() {
        return Err(config_error(
            "--threads sizes the native worker pool; it requires --backend native",
        ));
    }
    if opts.shards.is_some() {
        let sim_attached = [
            ("--trace", opts.trace.is_some()),
            ("--metrics", opts.metrics.is_some()),
            ("--chaos", opts.chaos.is_some()),
        ];
        for (flag, given) in sim_attached {
            if given {
                return Err(config_error(format!(
                    "{flag} attaches to a single simulator device and cannot \
                     follow launches onto the --shards multi-device topology; \
                     use `gnnone-prof shard` for sharded fault injection"
                )));
            }
        }
    }
    Ok(())
}

/// Parses the process arguments (skipping the binary name).
pub fn from_env() -> Result<Options, GnnOneError> {
    parse(std::env::args().skip(1))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> impl Iterator<Item = String> + '_ {
        s.split_whitespace().map(str::to_string)
    }

    #[test]
    fn defaults() {
        let o = parse(argv("")).unwrap();
        assert_eq!(o.scale, Scale::Small);
        assert_eq!(o.dims, vec![6, 16, 32, 64]);
        assert!(o.datasets.is_empty());
        assert_eq!(o.epochs, 200);
        assert!(o.trace.is_none());
        assert!(o.metrics.is_none());
        assert!(o.sanitize.is_none());
        assert!(!o.verify);
        assert!(o.chaos.is_none());
    }

    #[test]
    fn full_flags() {
        let o = parse(argv(
            "--scale tiny --dims 16,32 --datasets G0,G3 --epochs 10 --out x.json \
             --plain-out p.json --trace t.json --metrics m.json --sanitize s.json \
             --verify --chaos 99",
        ))
        .unwrap();
        assert_eq!(o.scale, Scale::Tiny);
        assert_eq!(o.dims, vec![16, 32]);
        assert_eq!(o.datasets, vec!["G0", "G3"]);
        assert_eq!(o.epochs, 10);
        assert_eq!(o.out.as_deref(), Some("x.json"));
        assert_eq!(o.plain_out.as_deref(), Some("p.json"));
        assert_eq!(o.trace.as_deref(), Some("t.json"));
        assert_eq!(o.metrics.as_deref(), Some("m.json"));
        assert_eq!(o.sanitize.as_deref(), Some("s.json"));
        assert!(o.verify);
        assert_eq!(o.chaos, Some(99));
    }

    fn expect_config(r: Result<Options, GnnOneError>, needle: &str) {
        match r {
            Err(GnnOneError::Config { detail }) => {
                assert!(detail.contains(needle), "{detail}");
            }
            other => panic!("expected config error mentioning `{needle}`, got {other:?}"),
        }
    }

    #[test]
    fn bad_scale_is_config_error() {
        expect_config(parse(argv("--scale huge")), "unknown scale");
    }

    #[test]
    fn unknown_flag_is_config_error() {
        expect_config(parse(argv("--frobnicate")), "unknown flag");
    }

    #[test]
    fn malformed_dims_is_config_error() {
        expect_config(parse(argv("--dims 16,teapot,64")), "--dims");
    }

    #[test]
    fn malformed_epochs_is_config_error() {
        expect_config(parse(argv("--epochs many")), "--epochs");
    }

    #[test]
    fn malformed_chaos_seed_is_config_error() {
        expect_config(parse(argv("--chaos lucky")), "--chaos");
    }

    #[test]
    fn missing_value_is_config_error() {
        expect_config(parse(argv("--dims")), "missing value");
    }

    #[test]
    fn backend_flag_parses_both_kinds() {
        assert_eq!(parse(argv("")).unwrap().backend, BackendKind::Sim);
        assert_eq!(
            parse(argv("--backend sim")).unwrap().backend,
            BackendKind::Sim
        );
        let o = parse(argv("--backend native --threads 4")).unwrap();
        assert_eq!(o.backend, BackendKind::Native);
        assert_eq!(o.threads, Some(4));
    }

    #[test]
    fn unknown_backend_is_config_error() {
        expect_config(parse(argv("--backend cuda")), "unknown backend");
    }

    #[test]
    fn sim_only_flags_reject_native_backend() {
        expect_config(
            parse(argv("--backend native --trace t.json")),
            "--trace attaches to the simulator",
        );
        expect_config(
            parse(argv("--backend native --metrics m.json")),
            "--metrics attaches to the simulator",
        );
        expect_config(
            parse(argv("--backend native --chaos 7")),
            "--chaos attaches to the simulator",
        );
    }

    #[test]
    fn rejections_name_the_static_alternative() {
        for flags in [
            "--backend native --trace t.json",
            "--backend native --chaos 7",
        ] {
            match parse(argv(flags)) {
                Err(GnnOneError::Config { detail }) => {
                    assert!(detail.contains("--verify"), "{detail}");
                }
                other => panic!("expected config error, got {other:?}"),
            }
        }
    }

    #[test]
    fn sanitize_and_verify_accept_native_backend() {
        let o = parse(argv("--backend native --sanitize s.json")).unwrap();
        assert_eq!(o.backend, BackendKind::Native);
        assert_eq!(o.sanitize.as_deref(), Some("s.json"));
        let o = parse(argv("--backend native --verify")).unwrap();
        assert!(o.verify);
    }

    #[test]
    fn shards_flag_parses_and_validates() {
        assert!(parse(argv("")).unwrap().shards.is_none());
        assert_eq!(parse(argv("--shards 4")).unwrap().shards, Some(4));
        let o = parse(argv("--backend native --threads 2 --shards 2")).unwrap();
        assert_eq!(o.shards, Some(2));
        expect_config(parse(argv("--shards 0")), "--shards must be >= 1");
        expect_config(parse(argv("--shards few")), "--shards expects an integer");
        for flags in [
            "--shards 2 --trace t.json",
            "--shards 2 --metrics m.json",
            "--shards 2 --chaos 7",
        ] {
            expect_config(parse(argv(flags)), "multi-device topology");
        }
    }

    #[test]
    fn kernels_filter_parses_names() {
        assert!(parse(argv("")).unwrap().kernels.is_empty());
        let o = parse(argv("--kernels GnnOne,Sputnik")).unwrap();
        assert_eq!(o.kernels, vec!["GnnOne", "Sputnik"]);
        let o = parse(argv("--kernels GnnOne,")).unwrap();
        assert_eq!(o.kernels, vec!["GnnOne"]);
    }

    #[test]
    fn threads_requires_native_backend() {
        expect_config(parse(argv("--threads 4")), "requires --backend native");
        expect_config(
            parse(argv("--backend sim --threads 4")),
            "requires --backend native",
        );
        expect_config(
            parse(argv("--backend native --threads 0")),
            "--threads must be >= 1",
        );
        expect_config(
            parse(argv("--backend native --threads lots")),
            "--threads expects an integer",
        );
    }
}
