//! Minimal command-line parsing shared by the figure binaries (kept
//! dependency-free on purpose — the binaries take four well-known flags).

use gnnone_sparse::datasets::Scale;

/// Parsed common options.
#[derive(Debug, Clone)]
pub struct Options {
    /// Dataset scale (`--scale tiny|small|medium`, default small).
    pub scale: Scale,
    /// Feature lengths to sweep (`--dims 6,16,32,64`).
    pub dims: Vec<usize>,
    /// Dataset IDs to run (`--datasets G0,G3,G10`), empty = all.
    pub datasets: Vec<String>,
    /// Training epochs (`--epochs 200`).
    pub epochs: usize,
    /// Output JSON path (`--out results/figN.json`).
    pub out: Option<String>,
    /// Dependency-free table output (`--plain-out golden.json`): the same
    /// tables as `--out`, serialized through `jsonio` so the bytes are
    /// stable for golden-parity diffs.
    pub plain_out: Option<String>,
    /// Chrome-trace output path (`--trace trace.json`); `None` disables
    /// tracing entirely.
    pub trace: Option<String>,
    /// Metrics-snapshot output path (`--metrics metrics.json`); `None`
    /// disables the metrics registry.
    pub metrics: Option<String>,
    /// Sanitizer report output path (`--sanitize sanitize.json`); `None`
    /// leaves the sanitizer detached (the default, zero-cost path).
    pub sanitize: Option<String>,
}

impl Default for Options {
    fn default() -> Self {
        Self {
            scale: Scale::Small,
            dims: vec![6, 16, 32, 64],
            datasets: Vec::new(),
            epochs: 200,
            out: None,
            plain_out: None,
            trace: None,
            metrics: None,
            sanitize: None,
        }
    }
}

/// Parses `std::env::args`-style flags (everything after the binary name).
///
/// # Panics
/// On malformed flag values — these binaries are developer tools and fail
/// loudly.
pub fn parse(args: impl Iterator<Item = String>) -> Options {
    let mut opts = Options::default();
    let mut args = args.peekable();
    while let Some(arg) = args.next() {
        let mut take = |what: &str| -> String {
            args.next()
                .unwrap_or_else(|| panic!("missing value for {what}"))
        };
        match arg.as_str() {
            "--scale" => {
                opts.scale = match take("--scale").to_ascii_lowercase().as_str() {
                    "tiny" => Scale::Tiny,
                    "small" => Scale::Small,
                    "medium" => Scale::Medium,
                    other => panic!("unknown scale {other} (tiny|small|medium)"),
                }
            }
            "--dims" => {
                opts.dims = take("--dims")
                    .split(',')
                    .map(|d| d.trim().parse().expect("dims must be integers"))
                    .collect();
            }
            "--datasets" => {
                opts.datasets = take("--datasets")
                    .split(',')
                    .map(|s| s.trim().to_string())
                    .collect();
            }
            "--epochs" => {
                opts.epochs = take("--epochs").parse().expect("epochs must be an integer");
            }
            "--out" => opts.out = Some(take("--out")),
            "--plain-out" => opts.plain_out = Some(take("--plain-out")),
            "--trace" => opts.trace = Some(take("--trace")),
            "--metrics" => opts.metrics = Some(take("--metrics")),
            "--sanitize" => opts.sanitize = Some(take("--sanitize")),
            "--help" | "-h" => {
                eprintln!(
                    "flags: --scale tiny|small|medium  --dims 6,16,32,64  \
                     --datasets G0,G3  --epochs N  --out results/fig.json  \
                     --plain-out golden.json  --trace trace.json  \
                     --metrics metrics.json  --sanitize sanitize.json"
                );
                std::process::exit(0);
            }
            other => panic!("unknown flag {other} (see --help)"),
        }
    }
    opts
}

/// Parses the process arguments (skipping the binary name).
pub fn from_env() -> Options {
    parse(std::env::args().skip(1))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> impl Iterator<Item = String> + '_ {
        s.split_whitespace().map(str::to_string)
    }

    #[test]
    fn defaults() {
        let o = parse(argv(""));
        assert_eq!(o.scale, Scale::Small);
        assert_eq!(o.dims, vec![6, 16, 32, 64]);
        assert!(o.datasets.is_empty());
        assert_eq!(o.epochs, 200);
        assert!(o.trace.is_none());
        assert!(o.metrics.is_none());
        assert!(o.sanitize.is_none());
    }

    #[test]
    fn full_flags() {
        let o = parse(argv(
            "--scale tiny --dims 16,32 --datasets G0,G3 --epochs 10 --out x.json \
             --plain-out p.json --trace t.json --metrics m.json --sanitize s.json",
        ));
        assert_eq!(o.scale, Scale::Tiny);
        assert_eq!(o.dims, vec![16, 32]);
        assert_eq!(o.datasets, vec!["G0", "G3"]);
        assert_eq!(o.epochs, 10);
        assert_eq!(o.out.as_deref(), Some("x.json"));
        assert_eq!(o.plain_out.as_deref(), Some("p.json"));
        assert_eq!(o.trace.as_deref(), Some("t.json"));
        assert_eq!(o.metrics.as_deref(), Some("m.json"));
        assert_eq!(o.sanitize.as_deref(), Some("s.json"));
    }

    #[test]
    #[should_panic(expected = "unknown scale")]
    fn bad_scale_panics() {
        parse(argv("--scale huge"));
    }

    #[test]
    #[should_panic(expected = "unknown flag")]
    fn unknown_flag_panics() {
        parse(argv("--frobnicate"));
    }
}
