//! Native-backend performance sweep: the producer of `BENCH_NATIVE.json`,
//! the repo's first committed wall-clock baseline.
//!
//! Runs every kernel in the registry (all five families — 21 kernels) on
//! the selected Table 1 graphs via the native CPU backend, with an
//! explicit warmup/repeat policy: `warmup` untimed runs to populate
//! caches and spin up the worker pool, then `repeats` timed runs per
//! (kernel, dataset) cell. Each cell reports best and median wall-clock
//! milliseconds plus the throughput figure the paper's tables use,
//! `edges_per_sec = nnz / median_seconds`. See `EXPERIMENTS.md` for the
//! regeneration procedure (thread pinning, machine notes) and
//! `docs/BACKENDS.md` for a field-by-field walk through the output.

use gnnone_kernels::backend::{Backend, NativeEngine};
use gnnone_kernels::registry;
use gnnone_sim::engine::LaunchError;
use gnnone_sim::jsonio::Json;
use gnnone_sim::DeviceBuffer;
use gnnone_sparse::datasets::Scale;

use crate::cli::Options;
use crate::runner::{self, LoadedDataset};

/// Options for one native bench sweep.
#[derive(Debug, Clone)]
pub struct NativeBenchOpts {
    /// Dataset scale for the Table 1 analogues.
    pub scale: Scale,
    /// Table 1 ids to sweep; empty = all 19.
    pub dataset_ids: Vec<String>,
    /// Feature length for the feature-carrying families (SDDMM, SpMM,
    /// fused); SpMV and edge-apply are scalar by definition.
    pub f: usize,
    /// Worker threads; `None` = every available core.
    pub threads: Option<usize>,
    /// Untimed warmup runs per cell.
    pub warmup: usize,
    /// Timed runs per cell (best/median are taken over these).
    pub repeats: usize,
    /// Kernel-name filter (case-insensitive, validated against the
    /// registry `*_by_name` lookups); empty = every registry kernel.
    pub kernels: Vec<String>,
}

impl Default for NativeBenchOpts {
    fn default() -> Self {
        Self {
            scale: Scale::Small,
            dataset_ids: Vec::new(),
            f: 32,
            threads: None,
            warmup: 2,
            repeats: 5,
            kernels: Vec::new(),
        }
    }
}

/// One (kernel, dataset) cell of the sweep.
#[derive(Debug, Clone)]
pub struct NativeBenchEntry {
    /// System name as used in the paper's figures.
    pub name: String,
    /// Kernel family (`sddmm`, `spmm`, `spmv`, `edge_apply`, `fused`).
    pub op: &'static str,
    /// Storage format the kernel consumes.
    pub format: String,
    /// Table 1 dataset id.
    pub dataset: String,
    /// Fastest timed run, wall-clock milliseconds.
    pub best_ms: f64,
    /// Median timed run, wall-clock milliseconds.
    pub median_ms: f64,
    /// `nnz / median_seconds` — the throughput the paper's tables use.
    pub edges_per_sec: f64,
}

impl NativeBenchEntry {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("name", Json::Str(self.name.clone())),
            ("op", Json::Str(self.op.to_string())),
            ("format", Json::Str(self.format.clone())),
            ("dataset", Json::Str(self.dataset.clone())),
            ("best_ms", Json::F64(self.best_ms)),
            ("median_ms", Json::F64(self.median_ms)),
            ("edges_per_sec", Json::F64(self.edges_per_sec)),
        ])
    }
}

/// The full sweep result — what `BENCH_NATIVE.json` serializes.
#[derive(Debug)]
pub struct NativeBenchReport {
    /// Worker threads the engine actually used.
    pub threads: usize,
    /// Untimed runs per cell.
    pub warmup: usize,
    /// Timed runs per cell.
    pub repeats: usize,
    /// Scale the analogues were generated at.
    pub scale: Scale,
    /// Feature length used for SDDMM/SpMM/fused cells.
    pub f: usize,
    /// `(id, vertices, nnz)` for each swept dataset.
    pub datasets: Vec<(String, usize, usize)>,
    /// Every (kernel, dataset) cell.
    pub entries: Vec<NativeBenchEntry>,
}

impl NativeBenchReport {
    /// Distinct kernel names in the sweep (the registry-coverage count —
    /// 21 when every family ran).
    pub fn distinct_kernels(&self) -> usize {
        let mut names: Vec<(&str, &str)> = self
            .entries
            .iter()
            .map(|e| (e.name.as_str(), e.op))
            .collect();
        names.sort_unstable();
        names.dedup();
        names.len()
    }

    /// Serializes the report (the `BENCH_NATIVE.json` schema).
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("backend", Json::Str("native".to_string())),
            ("threads", Json::U64(self.threads as u64)),
            ("warmup", Json::U64(self.warmup as u64)),
            ("repeats", Json::U64(self.repeats as u64)),
            (
                "scale",
                Json::Str(format!("{:?}", self.scale).to_lowercase()),
            ),
            ("f", Json::U64(self.f as u64)),
            (
                "datasets",
                Json::Arr(
                    self.datasets
                        .iter()
                        .map(|(id, v, nnz)| {
                            Json::obj(vec![
                                ("id", Json::Str(id.clone())),
                                ("vertices", Json::U64(*v as u64)),
                                ("nnz", Json::U64(*nnz as u64)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "kernels",
                Json::Arr(self.entries.iter().map(|e| e.to_json()).collect()),
            ),
        ])
    }
}

fn median(sorted: &[f64]) -> f64 {
    let n = sorted.len();
    if n == 0 {
        return 0.0;
    }
    if n % 2 == 1 {
        sorted[n / 2]
    } else {
        0.5 * (sorted[n / 2 - 1] + sorted[n / 2])
    }
}

/// Runs one cell: `warmup` untimed + `repeats` timed launches of `run`,
/// which returns the wall-clock milliseconds of one launch.
fn time_cell(
    opts: &NativeBenchOpts,
    nnz: usize,
    mut run: impl FnMut() -> Result<f64, LaunchError>,
) -> Result<(f64, f64, f64), LaunchError> {
    for _ in 0..opts.warmup {
        run()?;
    }
    let mut times = Vec::with_capacity(opts.repeats);
    for _ in 0..opts.repeats.max(1) {
        times.push(run()?);
    }
    times.sort_by(|a, b| a.partial_cmp(b).expect("wall-clock times are finite"));
    let best = times[0];
    let med = median(&times);
    // Guard against a sub-resolution 0 ms median on tiny graphs.
    let edges_per_sec = if med > 0.0 {
        nnz as f64 / (med / 1e3)
    } else {
        f64::INFINITY
    };
    Ok((best, med, edges_per_sec))
}

/// Sweeps every registry kernel on one dataset, appending cells.
fn sweep_dataset(
    backend: &Backend,
    opts: &NativeBenchOpts,
    ld: &LoadedDataset,
    entries: &mut Vec<NativeBenchEntry>,
) -> Result<(), LaunchError> {
    let graph = &ld.graph;
    let n = graph.num_vertices();
    let nnz = graph.nnz();
    let f = opts.f;
    let id = ld.spec.id.to_string();

    let selected = |name: &str| {
        opts.kernels.is_empty() || opts.kernels.iter().any(|k| k.eq_ignore_ascii_case(name))
    };

    let mut push = |name: &str, op: &'static str, format: &str, stats: (f64, f64, f64)| {
        entries.push(NativeBenchEntry {
            name: name.to_string(),
            op,
            format: format.to_string(),
            dataset: id.clone(),
            best_ms: stats.0,
            median_ms: stats.1,
            edges_per_sec: stats.2,
        });
    };

    // Operand seeds match the figure runners so a bench cell and a figure
    // cell describe the same launch.
    let x_sddmm = DeviceBuffer::from_slice(&runner::vertex_features(n, f, 11));
    let y_sddmm = DeviceBuffer::from_slice(&runner::vertex_features(n, f, 13));
    for k in registry::sddmm_kernels(graph) {
        if !selected(k.name()) {
            continue;
        }
        let stats = time_cell(opts, nnz, || {
            let w = DeviceBuffer::<f32>::zeros(nnz);
            backend
                .run_sddmm(k.as_ref(), &x_sddmm, &y_sddmm, f, &w)
                .map(|r| r.time_ms)
        })?;
        push(k.name(), "sddmm", k.format(), stats);
    }

    let x_spmm = DeviceBuffer::from_slice(&runner::vertex_features(n, f, 17));
    let w_spmm = DeviceBuffer::from_slice(&runner::edge_values(nnz, 19));
    for k in registry::spmm_kernels(graph)
        .into_iter()
        .chain(registry::spmm_discussion_kernels(graph))
        .chain(registry::spmm_format_kernels(graph))
    {
        if !selected(k.name()) {
            continue;
        }
        let stats = time_cell(opts, nnz, || {
            let y = DeviceBuffer::<f32>::zeros(n * f);
            backend
                .run_spmm(k.as_ref(), &w_spmm, &x_spmm, f, &y)
                .map(|r| r.time_ms)
        })?;
        push(k.name(), "spmm", k.format(), stats);
    }

    let x_spmv = DeviceBuffer::from_slice(&runner::vertex_features(n, 1, 23));
    let w_spmv = DeviceBuffer::from_slice(&runner::edge_values(nnz, 29));
    for k in registry::spmv_class_kernels(graph) {
        if !selected(k.name()) {
            continue;
        }
        let stats = time_cell(opts, nnz, || {
            let y = DeviceBuffer::<f32>::zeros(n);
            backend
                .run_spmv(k.as_ref(), &w_spmv, &x_spmv, &y)
                .map(|r| r.time_ms)
        })?;
        push(k.name(), "spmv", k.format(), stats);
    }

    let el = DeviceBuffer::from_slice(&runner::vertex_features(n, 1, 43));
    let er = DeviceBuffer::from_slice(&runner::vertex_features(n, 1, 47));
    for k in registry::edge_apply_kernels(graph) {
        if !selected(k.name()) {
            continue;
        }
        let stats = time_cell(opts, nnz, || {
            let w = DeviceBuffer::<f32>::zeros(nnz);
            backend
                .run_edge_apply(k.as_ref(), &el, &er, &w)
                .map(|r| r.time_ms)
        })?;
        push(k.name(), "edge_apply", k.format(), stats);
    }

    let z = DeviceBuffer::from_slice(&runner::vertex_features(n, f, 41));
    for k in registry::fused_kernels(graph) {
        if !selected(k.name()) {
            continue;
        }
        let stats = time_cell(opts, nnz, || {
            let y = DeviceBuffer::<f32>::zeros(n * f);
            backend
                .run_fused(k.as_ref(), &z, &el, &er, f, &y, None)
                .map(|r| r.time_ms)
        })?;
        push(k.name(), "fused", k.format(), stats);
    }

    Ok(())
}

/// Checks every requested kernel name against the registry's `*_by_name`
/// lookups (SpMV classes have no lookup; their names are matched against
/// the class list directly) so a typo fails fast instead of silently
/// producing an empty sweep.
fn validate_kernel_filter(
    graph: &std::sync::Arc<gnnone_kernels::graph::GraphData>,
    names: &[String],
) -> Result<(), String> {
    for name in names {
        let known = registry::sddmm_by_name(graph, name).is_some()
            || registry::spmm_by_name(graph, name).is_some()
            || registry::edge_apply_by_name(graph, name).is_some()
            || registry::fused_by_name(graph, name).is_some()
            || registry::spmv_class_kernels(graph)
                .iter()
                .any(|k| k.name().eq_ignore_ascii_case(name));
        if !known {
            return Err(format!("unknown kernel name in --kernels: {name}"));
        }
    }
    Ok(())
}

/// Runs the full native sweep: every registry kernel on every selected
/// dataset under the warmup/repeat policy.
pub fn run_native_bench(opts: &NativeBenchOpts) -> Result<NativeBenchReport, String> {
    let cli = Options {
        datasets: opts.dataset_ids.clone(),
        scale: opts.scale,
        ..Default::default()
    };
    let specs = runner::try_selected_specs(&cli)?;
    let eng = match opts.threads {
        Some(t) => NativeEngine::with_threads(t)?,
        None => NativeEngine::new(),
    };
    let threads = eng.threads();
    let backend = Backend::Native(eng);

    let mut datasets = Vec::new();
    let mut entries = Vec::new();
    let mut filter_checked = opts.kernels.is_empty();
    for spec in &specs {
        let ld = runner::load(spec, opts.scale);
        if !filter_checked {
            validate_kernel_filter(&ld.graph, &opts.kernels)?;
            filter_checked = true;
        }
        datasets.push((spec.id.to_string(), ld.graph.num_vertices(), ld.graph.nnz()));
        sweep_dataset(&backend, opts, &ld, &mut entries)
            .map_err(|e| format!("native sweep failed on {}: {e}", spec.id))?;
    }

    Ok(NativeBenchReport {
        threads,
        warmup: opts.warmup,
        repeats: opts.repeats,
        scale: opts.scale,
        f: opts.f,
        datasets,
        entries,
    })
}

/// Registry-wide kernel count the sweep must cover — guards the committed
/// `BENCH_NATIVE.json` (and the CI `native-smoke` job) against silently
/// dropping a family when the registry grows.
pub const REGISTRY_KERNEL_COUNT: usize = 21;

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_opts() -> NativeBenchOpts {
        NativeBenchOpts {
            scale: Scale::Tiny,
            dataset_ids: vec!["G0".into()],
            f: 8,
            threads: Some(2),
            warmup: 1,
            repeats: 3,
            kernels: Vec::new(),
        }
    }

    #[test]
    fn sweep_covers_all_registry_kernels() {
        let report = run_native_bench(&tiny_opts()).unwrap();
        assert_eq!(report.distinct_kernels(), REGISTRY_KERNEL_COUNT);
        assert_eq!(report.entries.len(), REGISTRY_KERNEL_COUNT);
        assert_eq!(report.threads, 2);
        for e in &report.entries {
            assert!(e.best_ms <= e.median_ms, "{}: best > median", e.name);
            assert!(e.edges_per_sec > 0.0, "{}: no throughput", e.name);
        }
    }

    #[test]
    fn report_serializes_the_documented_schema() {
        let report = run_native_bench(&tiny_opts()).unwrap();
        let json = report.to_json();
        assert_eq!(json.get("backend").and_then(Json::as_str), Some("native"));
        for key in [
            "threads", "warmup", "repeats", "scale", "f", "datasets", "kernels",
        ] {
            assert!(json.get(key).is_some(), "missing {key}");
        }
        let kernels = json.get("kernels").and_then(Json::as_arr).unwrap();
        assert_eq!(kernels.len(), REGISTRY_KERNEL_COUNT);
        for k in kernels {
            for key in [
                "name",
                "op",
                "format",
                "dataset",
                "best_ms",
                "median_ms",
                "edges_per_sec",
            ] {
                assert!(k.get(key).is_some(), "missing kernel field {key}");
            }
        }
    }

    #[test]
    fn kernel_filter_restricts_the_sweep() {
        let opts = NativeBenchOpts {
            kernels: vec!["fusedgat".into(), "GnnOne-UAddV".into()],
            ..tiny_opts()
        };
        let report = run_native_bench(&opts).unwrap();
        assert_eq!(report.distinct_kernels(), 2);
        let names: Vec<&str> = report.entries.iter().map(|e| e.name.as_str()).collect();
        assert!(names.contains(&"FusedGAT"), "{names:?}");
        assert!(names.contains(&"GnnOne-UAddV"), "{names:?}");
    }

    #[test]
    fn unknown_kernel_name_is_an_error() {
        let opts = NativeBenchOpts {
            kernels: vec!["NoSuchKernel".into()],
            ..tiny_opts()
        };
        let err = run_native_bench(&opts).unwrap_err();
        assert!(err.contains("NoSuchKernel"), "{err}");
    }

    #[test]
    fn unknown_dataset_id_is_an_error() {
        let opts = NativeBenchOpts {
            dataset_ids: vec!["G99".into()],
            ..tiny_opts()
        };
        let err = run_native_bench(&opts).unwrap_err();
        assert!(err.contains("G99"), "{err}");
    }
}
