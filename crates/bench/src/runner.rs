//! Shared sweep machinery for the figure binaries.

use std::sync::Arc;

use gnnone_kernels::graph::GraphData;
use gnnone_sim::{DeviceBuffer, Gpu};
use gnnone_sparse::datasets::{table1, Dataset, DatasetSpec, Scale};

use crate::cli::Options;
use crate::report::Cell;

/// Datasets selected by the options, in Table 1 order.
///
/// Unknown `--datasets` ids are an error listing the valid Table 1 ids —
/// previously a typo silently produced an empty sweep.
pub fn try_selected_specs(opts: &Options) -> Result<Vec<DatasetSpec>, String> {
    let all = table1();
    if opts.datasets.is_empty() {
        return Ok(all);
    }
    let unknown: Vec<&String> = opts
        .datasets
        .iter()
        .filter(|want| !all.iter().any(|s| s.id.eq_ignore_ascii_case(want)))
        .collect();
    if !unknown.is_empty() {
        let valid: Vec<&str> = all.iter().map(|s| s.id).collect();
        return Err(format!(
            "unknown dataset id(s) {}; valid Table 1 ids: {}",
            unknown
                .iter()
                .map(|s| s.as_str())
                .collect::<Vec<_>>()
                .join(", "),
            valid.join(", ")
        ));
    }
    Ok(all
        .into_iter()
        .filter(|s| {
            opts.datasets
                .iter()
                .any(|want| s.id.eq_ignore_ascii_case(want))
        })
        .collect())
}

/// Like [`try_selected_specs`], but panics on unknown ids — the figure
/// binaries fail loudly on bad flags.
pub fn selected_specs(opts: &Options) -> Vec<DatasetSpec> {
    match try_selected_specs(opts) {
        Ok(specs) => specs,
        Err(msg) => panic!("{msg}"),
    }
}

/// A loaded dataset with device-resident graph tensors.
pub struct LoadedDataset {
    /// Table 1 spec.
    pub spec: DatasetSpec,
    /// Realized analogue.
    pub dataset: Dataset,
    /// Device graph.
    pub graph: Arc<GraphData>,
}

/// Generates and uploads one dataset.
pub fn load(spec: &DatasetSpec, scale: Scale) -> LoadedDataset {
    let dataset = Dataset::generate(spec, scale);
    let graph = Arc::new(GraphData::new(dataset.coo.clone()));
    LoadedDataset {
        spec: spec.clone(),
        dataset,
        graph,
    }
}

/// Deterministic pseudo-random vertex features (`|V| × f`), matching the
/// GNNBench practice of generated features for unlabeled datasets (§5.3).
pub fn vertex_features(num_vertices: usize, f: usize, seed: u64) -> Vec<f32> {
    let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
    (0..num_vertices * f)
        .map(|_| {
            // xorshift64*
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            let bits = state.wrapping_mul(0x2545_f491_4f6c_dd1d);
            ((bits >> 40) as f32 / (1u64 << 24) as f32) - 0.5
        })
        .collect()
}

/// Deterministic pseudo-random edge values (`|E|`).
pub fn edge_values(nnz: usize, seed: u64) -> Vec<f32> {
    vertex_features(nnz, 1, seed ^ 0xeeee)
}

/// Runs one SDDMM system on a loaded dataset, returning a [`Cell`].
pub fn run_sddmm(
    gpu: &Gpu,
    kernel: &dyn gnnone_kernels::traits::SddmmKernel,
    ld: &LoadedDataset,
    f: usize,
) -> Cell {
    let n = ld.graph.num_vertices();
    let x = DeviceBuffer::from_slice(&vertex_features(n, f, 11));
    let y = DeviceBuffer::from_slice(&vertex_features(n, f, 13));
    let w = DeviceBuffer::<f32>::zeros(ld.graph.nnz());
    match kernel.run(gpu, &x, &y, f, &w) {
        Ok(report) => Cell::Ms(report.time_ms),
        Err(e) => Cell::Err(short_error(&e)),
    }
}

/// Runs one SpMM system on a loaded dataset.
pub fn run_spmm(
    gpu: &Gpu,
    kernel: &dyn gnnone_kernels::traits::SpmmKernel,
    ld: &LoadedDataset,
    f: usize,
) -> Cell {
    let n = ld.graph.num_vertices();
    let x = DeviceBuffer::from_slice(&vertex_features(n, f, 17));
    let w = DeviceBuffer::from_slice(&edge_values(ld.graph.nnz(), 19));
    let y = DeviceBuffer::<f32>::zeros(n * f);
    match kernel.run(gpu, &w, &x, f, &y) {
        Ok(report) => Cell::Ms(report.time_ms),
        Err(e) => Cell::Err(short_error(&e)),
    }
}

/// Runs one SpMV system on a loaded dataset.
pub fn run_spmv(
    gpu: &Gpu,
    kernel: &dyn gnnone_kernels::traits::SpmvKernel,
    ld: &LoadedDataset,
) -> Cell {
    let n = ld.graph.num_vertices();
    let x = DeviceBuffer::from_slice(&vertex_features(n, 1, 23));
    let w = DeviceBuffer::from_slice(&edge_values(ld.graph.nnz(), 29));
    let y = DeviceBuffer::<f32>::zeros(n);
    match kernel.run(gpu, &w, &x, &y) {
        Ok(report) => Cell::Ms(report.time_ms),
        Err(e) => Cell::Err(short_error(&e)),
    }
}

fn short_error(e: &gnnone_sim::engine::LaunchError) -> String {
    use gnnone_sim::engine::LaunchError::*;
    match e {
        Unlaunchable { .. } => "CRASH".to_string(),
        GridTooLarge { .. } => "ERR".to_string(),
        OutOfMemory { .. } => "OOM".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figure_gpu_spec;
    use gnnone_kernels::registry;
    use gnnone_sparse::datasets::by_id;

    #[test]
    fn selected_specs_filters() {
        let mut opts = Options::default();
        assert_eq!(selected_specs(&opts).len(), 19);
        opts.datasets = vec!["g0".into(), "G10".into()];
        let sel = selected_specs(&opts);
        assert_eq!(sel.len(), 2);
        assert_eq!(sel[1].id, "G10");
    }

    #[test]
    fn unknown_dataset_id_is_an_error_listing_valid_ids() {
        let opts = Options {
            datasets: vec!["G0".into(), "G99".into()],
            ..Default::default()
        };
        let err = try_selected_specs(&opts).unwrap_err();
        assert!(err.contains("G99"), "{err}");
        assert!(err.contains("G0") && err.contains("G18"), "{err}");
    }

    #[test]
    #[should_panic(expected = "unknown dataset id")]
    fn selected_specs_panics_on_unknown_id() {
        let opts = Options {
            datasets: vec!["notagraph".into()],
            ..Default::default()
        };
        selected_specs(&opts);
    }

    #[test]
    fn features_are_deterministic_and_centered() {
        let a = vertex_features(100, 4, 5);
        let b = vertex_features(100, 4, 5);
        assert_eq!(a, b);
        let mean: f32 = a.iter().sum::<f32>() / a.len() as f32;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!(a.iter().all(|v| v.abs() <= 0.5));
    }

    #[test]
    fn end_to_end_sweep_cell() {
        let spec = by_id("G0").unwrap();
        let ld = load(&spec, Scale::Tiny);
        let gpu = Gpu::new(figure_gpu_spec());
        for k in registry::sddmm_kernels(&ld.graph) {
            let cell = run_sddmm(&gpu, k.as_ref(), &ld, 16);
            assert!(cell.ms().is_some(), "{} failed on tiny G0", k.name());
        }
        for k in registry::spmm_kernels(&ld.graph) {
            let cell = run_spmm(&gpu, k.as_ref(), &ld, 16);
            assert!(cell.ms().is_some(), "{} failed on tiny G0", k.name());
        }
        for k in registry::spmv_kernels(&ld.graph) {
            let cell = run_spmv(&gpu, k.as_ref(), &ld);
            assert!(cell.ms().is_some(), "{} failed on tiny G0", k.name());
        }
    }
}
