//! Shared sweep machinery for the figure binaries.
//!
//! The guarded entry points ([`SweepGuard`] and the `run_*_guarded`
//! functions) give every (kernel, dataset) cell crash isolation: a panic or
//! watchdog abort in one cell is caught, retried under a bounded
//! deterministic policy (aborts can be transient under a tight budget),
//! annotated with a CPU-reference fallback where one exists, and
//! quarantined with its attempt count — the figure completes and reports
//! the failure instead of dying mid-table. Expected structural failures (OOM,
//! grid overflow) are *not* quarantined: those are results the paper itself
//! reports, and their cells are unchanged.

use std::sync::Arc;

use gnnone_kernels::backend::{Backend, BackendKind, NativeEngine};
use gnnone_kernels::graph::GraphData;
use gnnone_kernels::registry;
use gnnone_kernels::shard::{RetryPolicy, ShardTopology, ShardedExecutor};
use gnnone_sim::engine::LaunchError;
use gnnone_sim::jsonio::Json;
use gnnone_sim::{DeviceBuffer, GnnOneError, Gpu};
use gnnone_sparse::datasets::{table1, Dataset, DatasetSpec, Scale};
use gnnone_sparse::reference;

use crate::cli::Options;
use crate::figure_gpu_spec;
use crate::report::Cell;

/// Builds the execution backend the options ask for: the figure-standard
/// simulator device for `--backend sim` (the default), or a
/// [`NativeEngine`] sized by `--threads` for `--backend native`.
///
/// When `--verify` is set (or `--sanitize` rides on the native backend),
/// the static pre-launch verifier runs first over every registry kernel
/// on the selected datasets — the backend is only handed out once every
/// obligation is `Proved`.
pub fn backend_from_options(opts: &Options) -> Result<Backend, GnnOneError> {
    crate::verify::static_preflight(opts)?;
    match opts.backend {
        BackendKind::Sim => Ok(Backend::Sim(Gpu::new(figure_gpu_spec()))),
        BackendKind::Native => {
            let eng = match opts.threads {
                Some(n) => NativeEngine::with_threads(n)
                    .map_err(|detail| GnnOneError::Config { detail })?,
                None => NativeEngine::new(),
            };
            Ok(Backend::Native(eng))
        }
    }
}

/// Rejects `--backend native` for figures whose measurement only exists on
/// the simulator (training curves, cycle breakdowns, GPU-spec sweeps).
/// The error names the binary so `figure_main`'s one-line report reads well.
/// Honours `--verify` the same way [`backend_from_options`] does, so
/// sim-only figures get the static preflight too.
pub fn require_sim_backend(opts: &Options, figure: &str) -> Result<(), GnnOneError> {
    require_unsharded(opts, figure)?;
    if opts.backend == BackendKind::Native {
        return Err(GnnOneError::Config {
            detail: format!(
                "{figure} measures simulator state (cycles/accuracy) and \
                 only supports --backend sim"
            ),
        });
    }
    crate::verify::static_preflight(opts)
}

/// Datasets selected by the options, in Table 1 order.
///
/// Unknown `--datasets` ids are an error listing the valid Table 1 ids —
/// previously a typo silently produced an empty sweep.
pub fn try_selected_specs(opts: &Options) -> Result<Vec<DatasetSpec>, String> {
    let all = table1();
    if opts.datasets.is_empty() {
        return Ok(all);
    }
    let unknown: Vec<&String> = opts
        .datasets
        .iter()
        .filter(|want| !all.iter().any(|s| s.id.eq_ignore_ascii_case(want)))
        .collect();
    if !unknown.is_empty() {
        let valid: Vec<&str> = all.iter().map(|s| s.id).collect();
        return Err(format!(
            "unknown dataset id(s) {}; valid Table 1 ids: {}",
            unknown
                .iter()
                .map(|s| s.as_str())
                .collect::<Vec<_>>()
                .join(", "),
            valid.join(", ")
        ));
    }
    Ok(all
        .into_iter()
        .filter(|s| {
            opts.datasets
                .iter()
                .any(|want| s.id.eq_ignore_ascii_case(want))
        })
        .collect())
}

/// Like [`try_selected_specs`], but panics on unknown ids — the figure
/// binaries fail loudly on bad flags.
pub fn selected_specs(opts: &Options) -> Vec<DatasetSpec> {
    match try_selected_specs(opts) {
        Ok(specs) => specs,
        Err(msg) => panic!("{msg}"),
    }
}

/// A loaded dataset with device-resident graph tensors.
pub struct LoadedDataset {
    /// Table 1 spec.
    pub spec: DatasetSpec,
    /// Realized analogue.
    pub dataset: Dataset,
    /// Device graph.
    pub graph: Arc<GraphData>,
}

/// Generates and uploads one dataset.
pub fn load(spec: &DatasetSpec, scale: Scale) -> LoadedDataset {
    let dataset = Dataset::generate(spec, scale);
    let graph = Arc::new(GraphData::new(dataset.coo.clone()));
    LoadedDataset {
        spec: spec.clone(),
        dataset,
        graph,
    }
}

/// Deterministic pseudo-random vertex features (`|V| × f`), matching the
/// GNNBench practice of generated features for unlabeled datasets (§5.3).
pub fn vertex_features(num_vertices: usize, f: usize, seed: u64) -> Vec<f32> {
    let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
    (0..num_vertices * f)
        .map(|_| {
            // xorshift64*
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            let bits = state.wrapping_mul(0x2545_f491_4f6c_dd1d);
            ((bits >> 40) as f32 / (1u64 << 24) as f32) - 0.5
        })
        .collect()
}

/// Deterministic pseudo-random edge values (`|E|`).
pub fn edge_values(nnz: usize, seed: u64) -> Vec<f32> {
    vertex_features(nnz, 1, seed ^ 0xeeee)
}

/// Runs one SDDMM system on a loaded dataset, returning a [`Cell`].
pub fn run_sddmm(
    backend: &Backend,
    kernel: &dyn gnnone_kernels::traits::SddmmKernel,
    ld: &LoadedDataset,
    f: usize,
) -> Cell {
    let n = ld.graph.num_vertices();
    let x = DeviceBuffer::from_slice(&vertex_features(n, f, 11));
    let y = DeviceBuffer::from_slice(&vertex_features(n, f, 13));
    let w = DeviceBuffer::<f32>::zeros(ld.graph.nnz());
    match backend.run_sddmm(kernel, &x, &y, f, &w) {
        Ok(report) => Cell::Ms(report.time_ms),
        Err(e) => Cell::Err(short_error(&e)),
    }
}

/// Runs one SpMM system on a loaded dataset.
pub fn run_spmm(
    backend: &Backend,
    kernel: &dyn gnnone_kernels::traits::SpmmKernel,
    ld: &LoadedDataset,
    f: usize,
) -> Cell {
    let n = ld.graph.num_vertices();
    let x = DeviceBuffer::from_slice(&vertex_features(n, f, 17));
    let w = DeviceBuffer::from_slice(&edge_values(ld.graph.nnz(), 19));
    let y = DeviceBuffer::<f32>::zeros(n * f);
    match backend.run_spmm(kernel, &w, &x, f, &y) {
        Ok(report) => Cell::Ms(report.time_ms),
        Err(e) => Cell::Err(short_error(&e)),
    }
}

/// Runs one SpMV system on a loaded dataset.
pub fn run_spmv(
    backend: &Backend,
    kernel: &dyn gnnone_kernels::traits::SpmvKernel,
    ld: &LoadedDataset,
) -> Cell {
    let n = ld.graph.num_vertices();
    let x = DeviceBuffer::from_slice(&vertex_features(n, 1, 23));
    let w = DeviceBuffer::from_slice(&edge_values(ld.graph.nnz(), 29));
    let y = DeviceBuffer::<f32>::zeros(n);
    match backend.run_spmv(kernel, &w, &x, &y) {
        Ok(report) => Cell::Ms(report.time_ms),
        Err(e) => Cell::Err(short_error(&e)),
    }
}

/// Rejects `--shards` for figures without a sharded execution path.
///
/// Only the kernel-sweep figures (fig3, fig4, fig12) route launches
/// through the [`gnnone_kernels::shard::ShardedExecutor`]; everywhere
/// else the flag would silently change nothing, so it is a structured
/// configuration error instead.
pub fn require_unsharded(opts: &Options, figure: &str) -> Result<(), GnnOneError> {
    if opts.shards.is_some() {
        return Err(GnnOneError::Config {
            detail: format!(
                "{figure} has no sharded execution path; --shards is \
                 supported by fig3, fig4 and fig12 (and `gnnone-prof shard`)"
            ),
        });
    }
    Ok(())
}

/// Builds the shard topology the options ask for: `K` simulated devices
/// on the figure-standard GPU spec for `--backend sim`, or `K` rayon
/// pools splitting `--threads` (default one thread per shard) for
/// `--backend native`.
pub fn shard_topology(opts: &Options, shards: usize) -> Result<ShardTopology, GnnOneError> {
    match opts.backend {
        BackendKind::Sim => Ok(ShardTopology::sim(figure_gpu_spec(), shards)),
        BackendKind::Native => {
            let total = opts.threads.unwrap_or(shards);
            ShardTopology::native(total, shards)
        }
    }
}

/// Builds a supervised sharded executor over one loaded dataset, with the
/// retry policy mirrored from the figure sweep guard defaults so a
/// quarantined shard record reads the same as an unsharded one.
pub fn sharded_executor(
    opts: &Options,
    ld: &LoadedDataset,
    shards: usize,
) -> Result<ShardedExecutor, GnnOneError> {
    let topo = shard_topology(opts, shards)?;
    let mut exec = ShardedExecutor::new(Arc::clone(&ld.graph), shards, topo)?;
    exec.set_policy(RetryPolicy {
        max_attempts: SweepGuard::DEFAULT_MAX_ATTEMPTS,
        ..RetryPolicy::default()
    });
    Ok(exec)
}

/// Runs one registry SDDMM system shard-by-shard (same feature seeds as
/// [`run_sddmm`], so `--shards 1` is byte-identical to the unsharded
/// sweep); failures quarantine with the shard id and retry schedule.
pub fn run_sddmm_sharded(
    guard: &mut SweepGuard,
    exec: &ShardedExecutor,
    name: &str,
    ld: &LoadedDataset,
    f: usize,
) -> Cell {
    let n = ld.graph.num_vertices();
    let x = vertex_features(n, f, 11);
    let y = vertex_features(n, f, 13);
    match exec.run_sddmm(
        &|g| expect_kernel(registry::sddmm_by_name(g, name), name),
        &x,
        &y,
        f,
    ) {
        Ok((_, report)) => Cell::Ms(report.time_ms),
        Err(e) => guard.quarantine_sharded(name, ld.spec.id, e),
    }
}

/// Runs one registry SpMM system shard-by-shard (seeds match
/// [`run_spmm`]).
pub fn run_spmm_sharded(
    guard: &mut SweepGuard,
    exec: &ShardedExecutor,
    name: &str,
    ld: &LoadedDataset,
    f: usize,
) -> Cell {
    let n = ld.graph.num_vertices();
    let x = vertex_features(n, f, 17);
    let w = edge_values(ld.graph.nnz(), 19);
    match exec.run_spmm(
        &|g| expect_kernel(registry::spmm_by_name(g, name), name),
        &w,
        &x,
        f,
    ) {
        Ok((_, report)) => Cell::Ms(report.time_ms),
        Err(e) => guard.quarantine_sharded(name, ld.spec.id, e),
    }
}

/// Runs one registry SpMV system shard-by-shard (seeds match
/// [`run_spmv`]).
pub fn run_spmv_sharded(
    guard: &mut SweepGuard,
    exec: &ShardedExecutor,
    name: &str,
    ld: &LoadedDataset,
) -> Cell {
    let n = ld.graph.num_vertices();
    let x = vertex_features(n, 1, 23);
    let w = edge_values(ld.graph.nnz(), 29);
    match exec.run_spmv(
        &|g| expect_kernel(registry::spmv_by_name(g, name), name),
        &w,
        &x,
    ) {
        Ok((_, report)) => Cell::Ms(report.time_ms),
        Err(e) => guard.quarantine_sharded(name, ld.spec.id, e),
    }
}

fn expect_kernel<T>(found: Option<T>, name: &str) -> T {
    match found {
        Some(k) => k,
        None => panic!("registry has no kernel named {name:?}"),
    }
}

fn short_error(e: &gnnone_sim::engine::LaunchError) -> String {
    use gnnone_sim::engine::LaunchError::*;
    match e {
        Unlaunchable { .. } => "CRASH".to_string(),
        GridTooLarge { .. } => "ERR".to_string(),
        OutOfMemory { .. } => "OOM".to_string(),
        Aborted(_) => "ABORT".to_string(),
    }
}

/// One quarantined sweep cell: the failure survived every bounded retry
/// (or was a panic) and was isolated instead of killing the figure run.
#[derive(Debug)]
pub struct Quarantine {
    /// Kernel (system) name of the failed cell.
    pub kernel: String,
    /// Dataset ID of the failed cell.
    pub dataset: String,
    /// The structured failure (from the final attempt).
    pub error: GnnOneError,
    /// Total attempts made before quarantining (≥ 1); the cell was retried
    /// when this exceeds 1.
    pub attempts: u32,
    /// Backoff waits (milliseconds) applied between attempts, in order —
    /// the deterministic `base << (attempt-1)` schedule as actually run.
    pub backoff_ms: Vec<u64>,
    /// Shard that exhausted its retries, when the failed cell was a
    /// sharded run; `None` for ordinary single-device cells.
    pub shard: Option<u64>,
    /// Note from the CPU-reference fallback, when one was available —
    /// proof the figure's data could still be produced without the kernel.
    pub fallback: Option<String>,
}

impl Quarantine {
    /// Whether the cell was retried before being quarantined.
    pub fn retried(&self) -> bool {
        self.attempts > 1
    }

    /// Serializes for machine consumption (fuzz findings, CI logs).
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("kernel", Json::Str(self.kernel.clone())),
            ("dataset", Json::Str(self.dataset.clone())),
            ("attempts", Json::U64(self.attempts as u64)),
            ("retried", Json::Bool(self.retried())),
            (
                "backoff_ms",
                Json::Arr(self.backoff_ms.iter().map(|&b| Json::U64(b)).collect()),
            ),
            (
                "shard",
                match self.shard {
                    Some(s) => Json::U64(s),
                    None => Json::Null,
                },
            ),
            (
                "fallback",
                match &self.fallback {
                    Some(s) => Json::Str(s.clone()),
                    None => Json::Null,
                },
            ),
            ("error", self.error.to_json()),
        ])
    }
}

impl std::fmt::Display for Quarantine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}{} on {}: [{}] {}{}{}",
            self.kernel,
            match self.shard {
                Some(s) => format!(" [shard {s}]"),
                None => String::new(),
            },
            self.dataset,
            self.error.kind(),
            self.error,
            if self.retried() {
                format!(" (after {} attempts)", self.attempts)
            } else {
                String::new()
            },
            match &self.fallback {
                Some(s) => format!("; fallback: {s}"),
                None => String::new(),
            }
        )
    }
}

/// Collects quarantined cells across a figure sweep so binaries can finish
/// the table, then print (and exit non-zero on) what failed.
#[derive(Debug)]
pub struct SweepGuard {
    quarantined: Vec<Quarantine>,
    max_attempts: u32,
    backoff_base_ms: u64,
}

impl Default for SweepGuard {
    fn default() -> Self {
        Self::new()
    }
}

impl SweepGuard {
    /// Default retry bound: panics/aborts get up to three attempts per
    /// cell before quarantine (one initial run + two retries).
    pub const DEFAULT_MAX_ATTEMPTS: u32 = 3;

    /// Creates a guard with the default policy (three attempts, no
    /// backoff sleep — the simulator has no external contention to wait
    /// out, so the default keeps sweeps fast and fully deterministic).
    pub fn new() -> Self {
        Self::with_policy(Self::DEFAULT_MAX_ATTEMPTS, 0)
    }

    /// Creates a guard with an explicit retry policy: up to
    /// `max_attempts` runs per cell (clamped to ≥ 1) with a deterministic
    /// exponential backoff of `backoff_base_ms << (attempt - 1)`
    /// milliseconds before each retry. The schedule depends only on the
    /// attempt number, so a quarantined record reproduces exactly.
    pub fn with_policy(max_attempts: u32, backoff_base_ms: u64) -> Self {
        Self {
            quarantined: Vec::new(),
            max_attempts: max_attempts.max(1),
            backoff_base_ms,
        }
    }

    /// Runs one cell attempt with panic isolation and bounded retry.
    /// `attempt` returns simulated milliseconds or a [`LaunchError`];
    /// `fallback` (if given) runs only when the cell is quarantined, and
    /// its note is stored alongside the failure.
    ///
    /// Failure routing:
    /// * panic or [`LaunchError::Aborted`] → retry up to the policy's
    ///   attempt bound (deterministic exponential backoff between
    ///   attempts), then quarantine with tag `PANIC` / `ABORT` and the
    ///   attempt count in the [`Quarantine`] record;
    /// * any other [`LaunchError`] → plain `Err` cell exactly as the
    ///   unguarded runners produce (expected, paper-reported failures).
    pub fn guard_cell<A, F>(
        &mut self,
        kernel: &str,
        dataset: &str,
        mut attempt: A,
        fallback: Option<F>,
    ) -> Cell
    where
        A: FnMut() -> Result<f64, LaunchError>,
        F: FnOnce() -> String,
    {
        let mut attempts = 0u32;
        let mut backoffs = Vec::new();
        loop {
            attempts += 1;
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(&mut attempt));
            let (error, tag) = match outcome {
                Ok(Ok(ms)) => return Cell::Ms(ms),
                Ok(Err(LaunchError::Aborted(a))) => (GnnOneError::Abort(a), "ABORT"),
                Ok(Err(e)) => return Cell::Err(short_error(&e)),
                Err(payload) => (
                    GnnOneError::Panic {
                        context: format!("{kernel} on {dataset}"),
                        detail: panic_message(payload),
                    },
                    "PANIC",
                ),
            };
            if attempts < self.max_attempts {
                let backoff_ms = self.backoff_base_ms << (attempts - 1);
                if backoff_ms > 0 {
                    std::thread::sleep(std::time::Duration::from_millis(backoff_ms));
                }
                backoffs.push(backoff_ms);
                continue;
            }
            let fallback = fallback.map(|f| f());
            self.quarantined.push(Quarantine {
                kernel: kernel.to_string(),
                dataset: dataset.to_string(),
                error,
                attempts,
                backoff_ms: backoffs,
                shard: None,
                fallback,
            });
            return Cell::Err(tag.to_string());
        }
    }

    /// Quarantines a failed sharded cell. The [`ShardAbort`] taxonomy
    /// already carries the shard id and supervision attempt count, so the
    /// record is built from the error instead of re-running anything; the
    /// recorded backoff schedule is the guard's own deterministic
    /// `base << (attempt - 1)` ladder for those attempts.
    ///
    /// [`ShardAbort`]: gnnone_sim::error::ShardAbort
    pub fn quarantine_sharded(&mut self, kernel: &str, dataset: &str, error: GnnOneError) -> Cell {
        let (attempts, shard, tag) = match &error {
            GnnOneError::ShardAbort(a) => (a.attempts as u32, Some(a.shard), "ABORT"),
            GnnOneError::Launch(_) => (1, None, "CRASH"),
            _ => (1, None, "ERR"),
        };
        let backoff_ms = (1..attempts)
            .map(|i| self.backoff_base_ms << (i - 1))
            .collect();
        self.quarantined.push(Quarantine {
            kernel: kernel.to_string(),
            dataset: dataset.to_string(),
            error,
            attempts,
            backoff_ms,
            shard,
            fallback: None,
        });
        Cell::Err(tag.to_string())
    }

    /// Cells quarantined so far.
    pub fn quarantined(&self) -> &[Quarantine] {
        &self.quarantined
    }

    /// True when every cell ran clean.
    pub fn is_clean(&self) -> bool {
        self.quarantined.is_empty()
    }

    /// Prints the quarantine summary and converts the guard into the
    /// figure's exit result: `Ok` when every cell ran clean, otherwise the
    /// first quarantined error (the figure still completed — this is the
    /// non-zero exit that makes the degradation visible).
    pub fn finish(mut self) -> Result<(), GnnOneError> {
        if self.report() {
            Err(self.quarantined.remove(0).error)
        } else {
            Ok(())
        }
    }

    /// Prints the quarantine summary to stderr; returns `true` when there
    /// was anything to report (the binary should exit non-zero).
    pub fn report(&self) -> bool {
        if self.quarantined.is_empty() {
            return false;
        }
        eprintln!(
            "quarantined {} cell(s) — figure completed without them:",
            self.quarantined.len()
        );
        for q in &self.quarantined {
            eprintln!("  {q}");
        }
        true
    }
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

fn checksum(values: &[f32]) -> f64 {
    values.iter().map(|&v| v as f64).sum()
}

/// Guarded variant of [`run_sddmm`]: panic/abort isolation with a
/// CPU-reference fallback annotation.
pub fn run_sddmm_guarded(
    backend: &Backend,
    kernel: &dyn gnnone_kernels::traits::SddmmKernel,
    ld: &LoadedDataset,
    f: usize,
    guard: &mut SweepGuard,
) -> Cell {
    let n = ld.graph.num_vertices();
    let xh = vertex_features(n, f, 11);
    let yh = vertex_features(n, f, 13);
    let x = DeviceBuffer::from_slice(&xh);
    let y = DeviceBuffer::from_slice(&yh);
    let w = DeviceBuffer::<f32>::zeros(ld.graph.nnz());
    let coo = &ld.dataset.coo;
    guard.guard_cell(
        kernel.name(),
        ld.spec.id,
        || backend.run_sddmm(kernel, &x, &y, f, &w).map(|r| r.time_ms),
        Some(|| {
            let out = reference::sddmm_coo_par(coo, &xh, &yh, f);
            format!(
                "cpu-reference sddmm produced {} values (checksum {:.6e})",
                out.len(),
                checksum(&out)
            )
        }),
    )
}

/// Guarded variant of [`run_spmm`].
pub fn run_spmm_guarded(
    backend: &Backend,
    kernel: &dyn gnnone_kernels::traits::SpmmKernel,
    ld: &LoadedDataset,
    f: usize,
    guard: &mut SweepGuard,
) -> Cell {
    let n = ld.graph.num_vertices();
    let xh = vertex_features(n, f, 17);
    let wh = edge_values(ld.graph.nnz(), 19);
    let x = DeviceBuffer::from_slice(&xh);
    let w = DeviceBuffer::from_slice(&wh);
    let y = DeviceBuffer::<f32>::zeros(n * f);
    let csr = &ld.dataset.csr;
    guard.guard_cell(
        kernel.name(),
        ld.spec.id,
        || backend.run_spmm(kernel, &w, &x, f, &y).map(|r| r.time_ms),
        Some(|| {
            let out = reference::spmm_csr_par(csr, &wh, &xh, f);
            format!(
                "cpu-reference spmm produced {} values (checksum {:.6e})",
                out.len(),
                checksum(&out)
            )
        }),
    )
}

/// Guarded variant of [`run_spmv`].
pub fn run_spmv_guarded(
    backend: &Backend,
    kernel: &dyn gnnone_kernels::traits::SpmvKernel,
    ld: &LoadedDataset,
    guard: &mut SweepGuard,
) -> Cell {
    let n = ld.graph.num_vertices();
    let xh = vertex_features(n, 1, 23);
    let wh = edge_values(ld.graph.nnz(), 29);
    let x = DeviceBuffer::from_slice(&xh);
    let w = DeviceBuffer::from_slice(&wh);
    let y = DeviceBuffer::<f32>::zeros(n);
    let csr = &ld.dataset.csr;
    guard.guard_cell(
        kernel.name(),
        ld.spec.id,
        || backend.run_spmv(kernel, &w, &x, &y).map(|r| r.time_ms),
        Some(|| {
            let out = reference::spmv_csr(csr, &wh, &xh);
            format!(
                "cpu-reference spmv produced {} values (checksum {:.6e})",
                out.len(),
                checksum(&out)
            )
        }),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figure_gpu_spec;
    use gnnone_kernels::registry;
    use gnnone_sparse::datasets::by_id;

    #[test]
    fn selected_specs_filters() {
        let mut opts = Options::default();
        assert_eq!(selected_specs(&opts).len(), 19);
        opts.datasets = vec!["g0".into(), "G10".into()];
        let sel = selected_specs(&opts);
        assert_eq!(sel.len(), 2);
        assert_eq!(sel[1].id, "G10");
    }

    #[test]
    fn unknown_dataset_id_is_an_error_listing_valid_ids() {
        let opts = Options {
            datasets: vec!["G0".into(), "G99".into()],
            ..Default::default()
        };
        let err = try_selected_specs(&opts).unwrap_err();
        assert!(err.contains("G99"), "{err}");
        assert!(err.contains("G0") && err.contains("G18"), "{err}");
    }

    #[test]
    #[should_panic(expected = "unknown dataset id")]
    fn selected_specs_panics_on_unknown_id() {
        let opts = Options {
            datasets: vec!["notagraph".into()],
            ..Default::default()
        };
        selected_specs(&opts);
    }

    #[test]
    fn features_are_deterministic_and_centered() {
        let a = vertex_features(100, 4, 5);
        let b = vertex_features(100, 4, 5);
        assert_eq!(a, b);
        let mean: f32 = a.iter().sum::<f32>() / a.len() as f32;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!(a.iter().all(|v| v.abs() <= 0.5));
    }

    #[test]
    fn guard_isolates_persistent_panics_with_fallback() {
        let mut guard = SweepGuard::new();
        let cell = guard.guard_cell(
            "K",
            "G0",
            || -> Result<f64, LaunchError> { panic!("boom") },
            Some(|| "cpu ok".to_string()),
        );
        assert_eq!(cell, Cell::Err("PANIC".into()));
        let q = &guard.quarantined()[0];
        assert_eq!(q.attempts, SweepGuard::DEFAULT_MAX_ATTEMPTS);
        assert!(q.retried());
        assert_eq!(q.fallback.as_deref(), Some("cpu ok"));
        assert_eq!(q.error.kind(), "panic");
        assert!(q.to_string().contains("boom"), "{q}");
        assert!(q.to_string().contains("after 3 attempts"), "{q}");
        let j = q.to_json().to_string_compact();
        assert!(j.contains("\"attempts\":3"), "{j}");
        assert!(guard.report());
    }

    #[test]
    fn guard_policy_bounds_attempts() {
        // A cell that always aborts burns exactly `max_attempts` tries.
        use gnnone_sim::{AbortReason, KernelAbort};
        let mut guard = SweepGuard::with_policy(5, 0);
        let mut calls = 0u32;
        let cell = guard.guard_cell(
            "K",
            "G1",
            || {
                calls += 1;
                Err(LaunchError::Aborted(KernelAbort {
                    kernel: "K".into(),
                    warp_id: 0,
                    ops: 100,
                    budget: 10,
                    reason: AbortReason::Watchdog,
                }))
            },
            None::<fn() -> String>,
        );
        assert_eq!(cell, Cell::Err("ABORT".into()));
        assert_eq!(calls, 5);
        assert_eq!(guard.quarantined()[0].attempts, 5);
    }

    #[test]
    fn guard_single_attempt_policy_never_retries() {
        let mut guard = SweepGuard::with_policy(1, 0);
        let cell = guard.guard_cell(
            "K",
            "G0",
            || -> Result<f64, LaunchError> { panic!("boom") },
            None::<fn() -> String>,
        );
        assert_eq!(cell, Cell::Err("PANIC".into()));
        let q = &guard.quarantined()[0];
        assert_eq!(q.attempts, 1);
        assert!(!q.retried());
        assert!(!q.to_string().contains("attempts"), "{q}");
    }

    #[test]
    fn guard_retry_recovers_transient_abort() {
        use gnnone_sim::{AbortReason, KernelAbort};
        let mut guard = SweepGuard::new();
        let mut first = true;
        let cell = guard.guard_cell(
            "K",
            "G1",
            || {
                if first {
                    first = false;
                    Err(LaunchError::Aborted(KernelAbort {
                        kernel: "K".into(),
                        warp_id: 0,
                        ops: 100,
                        budget: 10,
                        reason: AbortReason::Watchdog,
                    }))
                } else {
                    Ok(1.5)
                }
            },
            None::<fn() -> String>,
        );
        assert_eq!(cell, Cell::Ms(1.5));
        assert!(guard.is_clean());
        assert!(!guard.report());
    }

    #[test]
    fn guard_passes_expected_failures_through_unquarantined() {
        let mut guard = SweepGuard::new();
        let cell = guard.guard_cell(
            "K",
            "G2",
            || {
                Err(LaunchError::OutOfMemory {
                    requested: 1 << 40,
                    available: 1 << 30,
                })
            },
            None::<fn() -> String>,
        );
        assert_eq!(cell, Cell::Err("OOM".into()));
        assert!(guard.is_clean());
    }

    #[test]
    fn guarded_runners_match_unguarded_on_healthy_kernels() {
        let spec = by_id("G0").unwrap();
        let ld = load(&spec, Scale::Tiny);
        let backend = Backend::Sim(Gpu::new(figure_gpu_spec()));
        let mut guard = SweepGuard::new();
        for k in registry::spmm_kernels(&ld.graph) {
            let plain = run_spmm(&backend, k.as_ref(), &ld, 8);
            let guarded = run_spmm_guarded(&backend, k.as_ref(), &ld, 8, &mut guard);
            assert_eq!(plain, guarded, "{} diverged under guard", k.name());
        }
        assert!(guard.is_clean());
    }

    #[test]
    fn end_to_end_sweep_cell() {
        let spec = by_id("G0").unwrap();
        let ld = load(&spec, Scale::Tiny);
        for backend in [
            Backend::Sim(Gpu::new(figure_gpu_spec())),
            Backend::Native(NativeEngine::with_threads(2).unwrap()),
        ] {
            for k in registry::sddmm_kernels(&ld.graph) {
                let cell = run_sddmm(&backend, k.as_ref(), &ld, 16);
                assert!(cell.ms().is_some(), "{} failed on tiny G0", k.name());
            }
            for k in registry::spmm_kernels(&ld.graph) {
                let cell = run_spmm(&backend, k.as_ref(), &ld, 16);
                assert!(cell.ms().is_some(), "{} failed on tiny G0", k.name());
            }
            for k in registry::spmv_kernels(&ld.graph) {
                let cell = run_spmv(&backend, k.as_ref(), &ld);
                assert!(cell.ms().is_some(), "{} failed on tiny G0", k.name());
            }
        }
    }

    #[test]
    fn backend_from_options_builds_what_the_flags_ask_for() {
        let sim = backend_from_options(&Options::default()).unwrap();
        assert_eq!(sim.kind(), BackendKind::Sim);
        assert!(sim.as_gpu().is_some());

        let native = backend_from_options(&Options {
            backend: BackendKind::Native,
            threads: Some(3),
            ..Default::default()
        })
        .unwrap();
        assert_eq!(native.kind(), BackendKind::Native);
        assert!(native.as_gpu().is_none());
        match &native {
            Backend::Native(eng) => assert_eq!(eng.threads(), 3),
            Backend::Sim(_) => unreachable!(),
        }
    }

    #[test]
    fn require_sim_backend_rejects_native_only() {
        let sim = Options::default();
        assert!(require_sim_backend(&sim, "table1").is_ok());
        let native = Options {
            backend: BackendKind::Native,
            ..Default::default()
        };
        let err = require_sim_backend(&native, "table1").unwrap_err();
        assert_eq!(err.kind(), "config");
        assert!(err.to_string().contains("table1"), "{err}");
    }
}
