//! The serving load benchmark behind `gnnone-prof serve-bench`.
//!
//! A seeded open-loop generator drives one [`Server`] through four
//! phases on its virtual clock — the canonical overload story a
//! robustness harness must be able to replay on demand:
//!
//! 1. **ramp** — arrivals well inside capacity; baseline latency.
//! 2. **overload** — arrivals far past sustainable QPS; admission
//!    rejections and deadline sheds must be typed, queues must stay
//!    bounded.
//! 3. **chaos** — nominal load with launch faults injected (simulator
//!    fault engines on `sim`, synthetic aborts on `native`): retries,
//!    watchdog trips, breaker trips, degraded answers.
//! 4. **recovery** — chaos off; the breaker must close again and
//!    latency return to baseline.
//!
//! Every phase drains before the next starts, so each request's
//! outcome is attributed to the phase that submitted it and the
//! no-silent-drops ledger (`submitted == resolved`, per phase) is
//! checked locally. The emitted `BENCH_SERVE.json` carries per-phase
//! p50/p99 latency, sustained QPS, and the full outcome/robustness
//! counters; `docs/SERVING.md` documents every field.
//!
//! The generator polls the server once per `TICK_MS` of virtual
//! time, mirroring the threaded worker's tick in `gnnone_serve`'s
//! service layer: arrivals inside one tick land before the batcher
//! can drain, which is exactly how a real burst overflows a bounded
//! admission queue. Polling after every arrival instead would let the
//! virtual server flush each batch the instant it formed — an
//! infinitely fast worker that no open-loop rate could ever overload.

use std::path::Path;

use gnnone_kernels::backend::BackendKind;
use gnnone_serve::server::percentile;
use gnnone_serve::{ModelKind, Outcome, Scale, ServeConfig, Server, ServerStats, Submit};
use gnnone_sim::jsonio::Json;
use gnnone_sim::splitmix64;

/// Options behind the `serve-bench` subcommand.
#[derive(Debug, Clone)]
pub struct ServeBenchOpts {
    /// Table 1 dataset ID.
    pub dataset: String,
    /// Analogue scale.
    pub scale: Scale,
    /// Model family to serve.
    pub model: ModelKind,
    /// Execution backend.
    pub backend: BackendKind,
    /// Master seed (arrivals, chaos, jitter, weights).
    pub seed: u64,
    /// Requests submitted per phase.
    pub requests: u64,
    /// Output path for the JSON report (`None` = stdout only).
    pub out: Option<String>,
}

impl Default for ServeBenchOpts {
    fn default() -> Self {
        Self {
            dataset: "G2".to_string(),
            scale: Scale::Tiny,
            model: ModelKind::Gcn,
            backend: BackendKind::Sim,
            seed: 0xC0FF_EE00,
            requests: 120,
            out: None,
        }
    }
}

/// One phase of the canonical load story.
struct PhaseSpec {
    name: &'static str,
    /// Open-loop arrival rate target.
    qps: f64,
    /// Chaos injection rate while the phase runs.
    chaos_permille: u64,
    /// Per-request relative deadline.
    deadline_ms: u64,
}

/// Virtual-time poll granularity — matches the threaded worker's tick.
const TICK_MS: f64 = 1.0;

const PHASES: [PhaseSpec; 4] = [
    PhaseSpec {
        name: "ramp",
        qps: 150.0,
        chaos_permille: 0,
        deadline_ms: 400,
    },
    PhaseSpec {
        name: "overload",
        qps: 50_000.0,
        chaos_permille: 0,
        deadline_ms: 25,
    },
    // A full storm: every armed attempt fails (warp kill and transient
    // launch abort outright; a stalled warp blows the simulator's own
    // instruction watchdog), so consecutive batch failures — and the
    // breaker trip — are structural, not seed luck.
    PhaseSpec {
        name: "chaos",
        qps: 150.0,
        chaos_permille: 1000,
        deadline_ms: 400,
    },
    PhaseSpec {
        name: "recovery",
        qps: 150.0,
        chaos_permille: 0,
        deadline_ms: 400,
    },
];

/// Per-phase measurement, diffed from the server's monotonic counters.
struct PhaseResult {
    name: &'static str,
    qps_target: f64,
    chaos_permille: u64,
    submitted: u64,
    resolved: u64,
    stats: ServerStats,
    p50_ms: f64,
    p99_ms: f64,
    qps_sustained: f64,
    elapsed_ms: f64,
    breaker_open_seen: bool,
}

fn diff(after: &ServerStats, before: &ServerStats) -> ServerStats {
    ServerStats {
        submitted: after.submitted - before.submitted,
        succeeded: after.succeeded - before.succeeded,
        degraded: after.degraded - before.degraded,
        rejected: after.rejected - before.rejected,
        deadline_exceeded: after.deadline_exceeded - before.deadline_exceeded,
        retries: after.retries - before.retries,
        launches: after.launches - before.launches,
        launch_failures: after.launch_failures - before.launch_failures,
        watchdog_trips: after.watchdog_trips - before.watchdog_trips,
        chaos_injected: after.chaos_injected - before.chaos_injected,
        breaker_trips: after.breaker_trips - before.breaker_trips,
    }
}

fn run_phase(server: &mut Server, spec: &PhaseSpec, requests: u64, seed: u64) -> PhaseResult {
    server.set_chaos_rate(spec.chaos_permille);
    let before = server.stats();
    let start_ms = server.now_ms();
    let n = server.state().num_vertices() as u64;
    let mean_gap_ms = 1000.0 / spec.qps;
    let mut outcomes: Vec<Outcome> = Vec::new();
    let mut breaker_open_seen = false;
    let mut since_poll = 0.0;
    for i in 0..requests {
        let h = splitmix64(seed ^ i.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        // Jittered open-loop arrivals in [0.5, 1.5) × mean gap — the
        // generator never waits for responses (open loop), so overload
        // genuinely overloads.
        let gap = mean_gap_ms * (0.5 + (h >> 32) as f64 / u32::MAX as f64);
        server.advance(gap);
        since_poll += gap;
        match server.submit((h % n) as u32, Some(spec.deadline_ms)) {
            Submit::Queued(_) => {}
            Submit::Rejected(o) => outcomes.push(*o),
        }
        // The worker only gets to drain once per tick; arrivals packed
        // tighter than the tick contend for the bounded queue.
        if since_poll >= TICK_MS {
            since_poll = 0.0;
            outcomes.extend(server.poll());
            breaker_open_seen |= server.health().degraded;
        }
    }
    outcomes.extend(server.drain());
    breaker_open_seen |= server.health().degraded;
    let after = server.stats();
    let elapsed_ms = server.now_ms() - start_ms;
    let stats = diff(&after, &before);
    let mut latencies: Vec<f64> = outcomes
        .iter()
        .filter(|o| o.logits.is_some())
        .map(|o| o.latency_ms)
        .collect();
    latencies.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
    let served = latencies.len() as u64;
    PhaseResult {
        name: spec.name,
        qps_target: spec.qps,
        chaos_permille: spec.chaos_permille,
        submitted: stats.submitted,
        resolved: outcomes.len() as u64,
        p50_ms: percentile(&latencies, 50.0),
        p99_ms: percentile(&latencies, 99.0),
        qps_sustained: if elapsed_ms > 0.0 {
            served as f64 / (elapsed_ms / 1000.0)
        } else {
            0.0
        },
        elapsed_ms,
        stats,
        breaker_open_seen,
    }
}

fn phase_json(p: &PhaseResult) -> Json {
    Json::obj(vec![
        ("name", Json::Str(p.name.to_string())),
        ("qps_target", Json::F64(p.qps_target)),
        ("chaos_permille", Json::U64(p.chaos_permille)),
        ("submitted", Json::U64(p.submitted)),
        ("resolved", Json::U64(p.resolved)),
        ("succeeded", Json::U64(p.stats.succeeded)),
        ("degraded", Json::U64(p.stats.degraded)),
        ("rejected", Json::U64(p.stats.rejected)),
        ("deadline_exceeded", Json::U64(p.stats.deadline_exceeded)),
        ("retries", Json::U64(p.stats.retries)),
        ("launches", Json::U64(p.stats.launches)),
        ("launch_failures", Json::U64(p.stats.launch_failures)),
        ("watchdog_trips", Json::U64(p.stats.watchdog_trips)),
        ("chaos_injected", Json::U64(p.stats.chaos_injected)),
        ("breaker_trips", Json::U64(p.stats.breaker_trips)),
        ("breaker_open_seen", Json::Bool(p.breaker_open_seen)),
        ("p50_ms", Json::F64(p.p50_ms)),
        ("p99_ms", Json::F64(p.p99_ms)),
        ("qps_sustained", Json::F64(p.qps_sustained)),
        ("elapsed_ms", Json::F64(p.elapsed_ms)),
    ])
}

fn scale_str(scale: Scale) -> &'static str {
    match scale {
        Scale::Tiny => "tiny",
        Scale::Small => "small",
        Scale::Medium => "medium",
    }
}

/// Runs the four-phase load story and returns the report JSON.
pub fn run_serve_bench(opts: &ServeBenchOpts) -> Result<Json, String> {
    let config = ServeConfig {
        dataset: opts.dataset.clone(),
        scale: opts.scale,
        model: opts.model,
        backend: opts.backend,
        seed: opts.seed,
        // Sized so one overload tick's arrivals (~50 at 50k QPS) exceed
        // queue + drain capacity: backpressure must actually fire for
        // the report to say anything about how it is typed.
        queue_capacity: 32,
        retry: gnnone_serve::RetryPolicy {
            seed: opts.seed,
            ..ServeConfig::default().retry
        },
        ..ServeConfig::default()
    };
    let mut server = Server::new(config.clone()).map_err(|e| e.to_string())?;
    let mut phases = Vec::new();
    for (idx, spec) in PHASES.iter().enumerate() {
        let phase_seed = opts.seed ^ ((idx as u64 + 1) << 48);
        phases.push(run_phase(&mut server, spec, opts.requests, phase_seed));
    }
    let totals = server.stats();
    let zero_silent_drops = phases.iter().all(|p| p.submitted == p.resolved)
        && totals.submitted
            == totals.succeeded + totals.degraded + totals.rejected + totals.deadline_exceeded;
    let final_health = server.health();
    let report = Json::obj(vec![
        ("schema", Json::Str("gnnone-serve-bench/v1".to_string())),
        ("dataset", Json::Str(opts.dataset.clone())),
        ("scale", Json::Str(scale_str(opts.scale).to_string())),
        ("model", Json::Str(opts.model.as_str().to_string())),
        ("backend", Json::Str(opts.backend.as_str().to_string())),
        ("seed", Json::U64(opts.seed)),
        ("requests_per_phase", Json::U64(opts.requests)),
        (
            "config",
            Json::obj(vec![
                ("queue_capacity", Json::U64(config.queue_capacity as u64)),
                ("batch_max", Json::U64(config.batch_max as u64)),
                ("deadline_margin_ms", Json::U64(config.deadline_margin_ms)),
                ("watchdog_budget_ms", Json::F64(config.watchdog_budget_ms)),
                (
                    "retry_max_attempts",
                    Json::U64(config.retry.max_attempts as u64),
                ),
                (
                    "retry_backoff_base_ms",
                    Json::U64(config.retry.backoff_base_ms),
                ),
                ("retry_jitter_ms", Json::U64(config.retry.jitter_ms)),
                (
                    "breaker_threshold",
                    Json::U64(config.breaker_threshold as u64),
                ),
                ("breaker_cooldown_ms", Json::U64(config.breaker_cooldown_ms)),
                ("centroids", Json::U64(config.centroids as u64)),
            ]),
        ),
        ("phases", Json::Arr(phases.iter().map(phase_json).collect())),
        (
            "totals",
            Json::obj(vec![
                ("submitted", Json::U64(totals.submitted)),
                ("succeeded", Json::U64(totals.succeeded)),
                ("degraded", Json::U64(totals.degraded)),
                ("rejected", Json::U64(totals.rejected)),
                ("deadline_exceeded", Json::U64(totals.deadline_exceeded)),
                ("retries", Json::U64(totals.retries)),
                ("launches", Json::U64(totals.launches)),
                ("launch_failures", Json::U64(totals.launch_failures)),
                ("watchdog_trips", Json::U64(totals.watchdog_trips)),
                ("chaos_injected", Json::U64(totals.chaos_injected)),
                ("breaker_trips", Json::U64(totals.breaker_trips)),
            ]),
        ),
        ("zero_silent_drops", Json::Bool(zero_silent_drops)),
        (
            "breaker",
            Json::obj(vec![
                ("tripped", Json::Bool(totals.breaker_trips > 0)),
                ("recovered", Json::Bool(!final_health.degraded)),
            ]),
        ),
    ]);
    Ok(report)
}

/// Runs the bench and writes/prints the report (the subcommand body).
pub fn serve_bench_to(opts: &ServeBenchOpts) -> Result<(), String> {
    let report = run_serve_bench(opts)?;
    let text = report.to_string_pretty();
    match &opts.out {
        Some(path) => {
            std::fs::write(Path::new(path), format!("{text}\n"))
                .map_err(|e| format!("write {path}: {e}"))?;
            eprintln!("serve-bench report written to {path}");
        }
        None => println!("{text}"),
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_phase_story_holds_its_invariants() {
        let opts = ServeBenchOpts {
            requests: 60,
            ..ServeBenchOpts::default()
        };
        let report = run_serve_bench(&opts).unwrap();
        assert_eq!(
            report.get("zero_silent_drops").and_then(Json::as_bool),
            Some(true),
            "ledger must balance"
        );
        let phases = match report.get("phases") {
            Some(Json::Arr(p)) => p,
            other => panic!("phases must be an array, got {other:?}"),
        };
        assert_eq!(phases.len(), 4);
        let by_name = |name: &str| {
            phases
                .iter()
                .find(|p| p.get("name").and_then(Json::as_str) == Some(name))
                .unwrap_or_else(|| panic!("missing phase {name}"))
        };
        let overload = by_name("overload");
        let typed_refusals = overload.get("rejected").and_then(Json::as_u64).unwrap()
            + overload
                .get("deadline_exceeded")
                .and_then(Json::as_u64)
                .unwrap();
        assert!(
            typed_refusals > 0,
            "overload must surface typed backpressure"
        );
        let chaos = by_name("chaos");
        assert!(chaos.get("chaos_injected").and_then(Json::as_u64).unwrap() > 0);
        assert!(
            chaos.get("breaker_trips").and_then(Json::as_u64).unwrap() > 0,
            "a full chaos storm must trip the breaker"
        );
        assert!(
            chaos.get("degraded").and_then(Json::as_u64).unwrap() > 0,
            "an open breaker serves degraded answers"
        );
        let breaker = report.get("breaker").unwrap();
        assert_eq!(breaker.get("tripped").and_then(Json::as_bool), Some(true));
        assert_eq!(
            breaker.get("recovered").and_then(Json::as_bool),
            Some(true),
            "recovery phase must end healthy"
        );
    }

    #[test]
    fn report_is_seed_deterministic() {
        let opts = ServeBenchOpts {
            requests: 40,
            ..ServeBenchOpts::default()
        };
        let a = run_serve_bench(&opts).unwrap().to_string_compact();
        let b = run_serve_bench(&opts).unwrap().to_string_compact();
        assert_eq!(a, b);
    }
}
