//! Property-based tests of the simulator's core invariants.

use gnnone_sim::coalesce::{coalesce, SECTOR_BYTES};
use gnnone_sim::{
    DeviceBuffer, Gpu, GpuSpec, KernelResources, Occupancy, TimingParams, WarpCtx, WarpKernel,
};
use proptest::prelude::*;

proptest! {
    /// Sector count is bounded by the per-lane sector span and never zero
    /// for a non-empty access; traffic always covers the useful bytes of
    /// distinct addresses.
    #[test]
    fn coalescing_bounds(addrs in prop::collection::vec(0u64..100_000, 1..32), width in 1u64..=16) {
        let access = coalesce(addrs.iter().map(|&a| (a, width)));
        let max_sectors: u64 = addrs.len() as u64 * (width / SECTOR_BYTES + 2);
        prop_assert!(access.sectors as u64 <= max_sectors);
        prop_assert!(access.sectors >= 1);
        prop_assert_eq!(access.useful_bytes, addrs.len() as u64 * width);
        prop_assert!(access.lines <= access.sectors);
        // Traffic covers every distinct byte requested.
        let mut bytes: Vec<u64> = addrs
            .iter()
            .flat_map(|&a| (a..a + width).map(|b| b / SECTOR_BYTES))
            .collect();
        bytes.sort_unstable();
        bytes.dedup();
        prop_assert_eq!(access.sectors as usize, bytes.len());
    }

    /// Occupancy is monotonically non-increasing in every resource axis.
    #[test]
    fn occupancy_monotone(
        threads_pow in 1u32..=5, // 32..=1024 threads
        regs in 8usize..200,
        shared in 0usize..64 * 1024,
    ) {
        let spec = GpuSpec::a100_40gb();
        let threads = 32usize << threads_pow.min(5);
        let base = KernelResources {
            threads_per_cta: threads.min(1024),
            regs_per_thread: regs,
            shared_bytes_per_cta: shared,
        };
        let o0 = Occupancy::compute(&spec, &base);
        let more_regs = Occupancy::compute(&spec, &KernelResources {
            regs_per_thread: regs + 16,
            ..base
        });
        let more_shared = Occupancy::compute(&spec, &KernelResources {
            shared_bytes_per_cta: shared + 8192,
            ..base
        });
        prop_assert!(more_regs.warps_per_sm <= o0.warps_per_sm);
        prop_assert!(more_shared.warps_per_sm <= o0.warps_per_sm);
    }

    /// Batching loads before a drain never loses to draining after every
    /// load — the scoreboard's fundamental ILP property.
    #[test]
    fn batched_loads_never_lose(n_loads in 1usize..16) {
        let buf = DeviceBuffer::<f32>::zeros(32 * 16);
        let timing = TimingParams::default();

        let mut batched = WarpCtx::new(timing, 0);
        for i in 0..n_loads {
            batched.load_f32(&buf, |l| Some((i * 32 + l) % 512));
        }
        batched.barrier();
        let b = batched.finish().solo_cycles;

        let mut serial = WarpCtx::new(timing, 0);
        for i in 0..n_loads {
            serial.load_f32(&buf, |l| Some((i * 32 + l) % 512));
            serial.barrier();
        }
        let s = serial.finish().solo_cycles;
        prop_assert!(b <= s, "batched {b} > serial {s}");
    }

    /// Functional correctness of loads/stores under arbitrary permutations:
    /// a gather followed by a scatter with the same permutation is identity.
    #[test]
    fn gather_scatter_roundtrip(perm in Just(()).prop_perturb(|_, mut rng| {
        let mut p: Vec<usize> = (0..32).collect();
        for i in (1..32usize).rev() {
            let j = (rng.next_u32() as usize) % (i + 1);
            p.swap(i, j);
        }
        p
    })) {
        let src: Vec<f32> = (0..32).map(|i| i as f32 * 1.5).collect();
        let a = DeviceBuffer::from_slice(&src);
        let b = DeviceBuffer::<f32>::zeros(32);
        let mut ctx = WarpCtx::new(TimingParams::default(), 0);
        let vals = ctx.load_f32(&a, |l| Some(perm[l]));
        ctx.use_loads();
        ctx.store_f32(&b, |l| Some((perm[l], vals.get(l))));
        prop_assert_eq!(b.to_vec(), src);
    }
}

/// A kernel whose total work is invariant to CTA shape: the reported DRAM
/// traffic must be identical across launch configurations.
struct Streamer<'a> {
    buf: &'a DeviceBuffer<f32>,
    warps: usize,
    threads_per_cta: usize,
}

impl WarpKernel for Streamer<'_> {
    fn resources(&self) -> KernelResources {
        KernelResources {
            threads_per_cta: self.threads_per_cta,
            regs_per_thread: 32,
            shared_bytes_per_cta: 0,
        }
    }
    fn grid_warps(&self) -> usize {
        self.warps
    }
    fn run_warp(&self, warp_id: usize, ctx: &mut WarpCtx) {
        let n = self.buf.len();
        ctx.load_f32(self.buf, |l| Some((warp_id * 32 + l) % n));
    }
}

proptest! {
    #[test]
    fn traffic_invariant_to_cta_shape(warps in 1usize..64, shape_pow in 1u32..=5) {
        let buf = DeviceBuffer::<f32>::zeros(4096);
        let gpu = Gpu::new(GpuSpec::a100_40gb());
        let r1 = gpu.launch(&Streamer { buf: &buf, warps, threads_per_cta: 32 });
        let r2 = gpu.launch(&Streamer {
            buf: &buf,
            warps,
            threads_per_cta: 32 << shape_pow,
        });
        prop_assert_eq!(r1.stats.read_bytes, r2.stats.read_bytes);
        prop_assert_eq!(r1.stats.loads, r2.stats.loads);
    }
}
