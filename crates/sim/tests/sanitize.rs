//! Seeded-bug tests for the kernel sanitizer: each deliberately broken
//! kernel must produce a structured diagnostic naming the kernel, warp,
//! lane, and failing address / epoch — and a clean kernel must report
//! nothing while producing a timing report identical to an unsanitized run.

use std::sync::Arc;

use gnnone_sim::sanitize::SanitizeConfig;
use gnnone_sim::{
    CheckKind, DeviceBuffer, Gpu, GpuSpec, KernelResources, Sanitizer, WarpCtx, WarpKernel,
};

fn gpu_with_sanitizer(config: SanitizeConfig) -> (Gpu, Arc<Sanitizer>) {
    let gpu = Gpu::new(GpuSpec::tiny());
    let san = gpu.enable_sanitizer(config);
    (gpu, san)
}

fn res_with_shared(shared_bytes_per_cta: usize) -> KernelResources {
    KernelResources {
        threads_per_cta: 32,
        regs_per_thread: 32,
        shared_bytes_per_cta,
    }
}

/// Seeded bug 1: stage-1 stores NZEs to shared memory and stage-2 reads
/// them cross-lane **without** the `__syncwarp` between the stages.
struct MissingBarrier;

impl WarpKernel for MissingBarrier {
    fn resources(&self) -> KernelResources {
        res_with_shared(32 * 4)
    }
    fn grid_warps(&self) -> usize {
        1
    }
    fn run_warp(&self, _warp_id: usize, ctx: &mut WarpCtx) {
        ctx.shared_store(|lane| Some((lane, lane as u32)));
        // BUG: no ctx.barrier() here.
        let _v: gnnone_sim::LaneArr<u32> = ctx.shared_load(|lane| Some(31 - lane));
    }
    fn name(&self) -> &str {
        "missing-barrier"
    }
}

/// Seeded bug 2: a malformed column index walks past the end of the buffer
/// (the OOB edge-index case a corrupted dataset would produce).
struct OobLoad<'a> {
    buf: &'a DeviceBuffer<f32>,
}

impl WarpKernel for OobLoad<'_> {
    fn resources(&self) -> KernelResources {
        res_with_shared(0)
    }
    fn grid_warps(&self) -> usize {
        1
    }
    fn run_warp(&self, _warp_id: usize, ctx: &mut WarpCtx) {
        // Lanes 0..3 are fine (60..63); lane 4 reads element 64 of a
        // 64-element buffer.
        ctx.load_f32(self.buf, |lane| Some(60 + lane));
    }
    fn name(&self) -> &str {
        "oob-load"
    }
}

/// Seeded bug 3: two warps plain-store the same output element — the race
/// an `atomic_add_f32` at a row split would have prevented.
struct RacingStores<'a> {
    out: &'a DeviceBuffer<f32>,
}

impl WarpKernel for RacingStores<'_> {
    fn resources(&self) -> KernelResources {
        res_with_shared(0)
    }
    fn grid_warps(&self) -> usize {
        2
    }
    fn run_warp(&self, warp_id: usize, ctx: &mut WarpCtx) {
        ctx.store_f32(self.out, |lane| (lane == 0).then_some((0, warp_id as f32)));
    }
    fn name(&self) -> &str {
        "racing-stores"
    }
}

/// A clean two-stage kernel: store, barrier, cross-lane read, row-owned
/// output — the shape every shipped GNNOne kernel follows.
struct CleanTwoStage<'a> {
    input: &'a DeviceBuffer<f32>,
    out: &'a DeviceBuffer<f32>,
}

impl WarpKernel for CleanTwoStage<'_> {
    fn resources(&self) -> KernelResources {
        res_with_shared(32 * 4)
    }
    fn grid_warps(&self) -> usize {
        4
    }
    fn run_warp(&self, warp_id: usize, ctx: &mut WarpCtx) {
        let base = warp_id * 32;
        let x = ctx.load_f32(self.input, |lane| Some(base + lane));
        ctx.shared_store(|lane| Some((lane, x.get(lane))));
        ctx.barrier();
        let y: gnnone_sim::LaneArr<f32> = ctx.shared_load(|lane| Some(31 - lane));
        ctx.atomic_add_f32(self.out, |lane| Some((base + lane, y.get(lane))));
        ctx.store_f32(self.out, |lane| (lane == 0).then_some((base, 1.0)));
    }
    fn name(&self) -> &str {
        "clean-two-stage"
    }
}

#[test]
fn missing_barrier_fires_shared_same_epoch() {
    let (gpu, san) = gpu_with_sanitizer(SanitizeConfig::on());
    gpu.launch(&MissingBarrier);
    let audits = san.launches();
    assert_eq!(audits.len(), 1);
    assert_eq!(audits[0].kernel, "missing-barrier");
    let f = audits[0]
        .findings
        .iter()
        .find(|f| f.kind == CheckKind::SharedReadInWriteEpoch)
        .expect("missing barrier must be detected");
    assert_eq!(f.kernel, "missing-barrier");
    assert_eq!(f.warp, 0);
    // Lane 0 reads word 31, which lane 31 wrote in the same epoch 0.
    assert_eq!(f.lane, Some(0));
    assert_eq!(f.other_lane, Some(31));
    assert_eq!(f.index, Some(31));
    assert_eq!(f.epoch, Some(0));
    // 31 - l == l has no integer solution, so every lane reads a word some
    // other lane wrote: 32 findings, all under the cap.
    assert!(audits[0].findings.len() <= SanitizeConfig::on().max_findings_per_launch);
}

#[test]
fn barrier_clears_the_same_epoch_check() {
    struct WithBarrier;
    impl WarpKernel for WithBarrier {
        fn resources(&self) -> KernelResources {
            res_with_shared(32 * 4)
        }
        fn grid_warps(&self) -> usize {
            1
        }
        fn run_warp(&self, _w: usize, ctx: &mut WarpCtx) {
            ctx.shared_store(|lane| Some((lane, lane as u32)));
            ctx.barrier();
            let _v: gnnone_sim::LaneArr<u32> = ctx.shared_load(|lane| Some(31 - lane));
        }
        fn name(&self) -> &str {
            "with-barrier"
        }
    }
    let (gpu, san) = gpu_with_sanitizer(SanitizeConfig::on());
    gpu.launch(&WithBarrier);
    assert!(san.is_clean(), "{:?}", san.launches());
}

#[test]
fn oob_load_names_lane_index_and_address() {
    let (gpu, san) = gpu_with_sanitizer(SanitizeConfig::on());
    let buf = DeviceBuffer::<f32>::zeros(64);
    let base = buf.addr_base();
    gpu.launch(&OobLoad { buf: &buf });
    let audits = san.launches();
    let f = audits[0]
        .findings
        .iter()
        .find(|f| f.kind == CheckKind::GlobalOutOfBounds)
        .expect("OOB load must be detected");
    assert_eq!(f.kernel, "oob-load");
    assert_eq!(f.warp, 0);
    assert_eq!(f.lane, Some(4)); // first lane past the end: 60 + 4 = 64
    assert_eq!(f.index, Some(64));
    assert_eq!(f.addr, Some(base + 64 * 4));
    // Lanes 4..32 all trip the check: 28 findings.
    assert_eq!(
        audits[0]
            .findings
            .iter()
            .filter(|f| f.kind == CheckKind::GlobalOutOfBounds)
            .count(),
        28
    );
}

#[test]
fn oob_access_is_skipped_not_fatal() {
    // Without a sanitizer the same kernel would panic (index out of
    // bounds); with one attached it must complete and report.
    let (gpu, san) = gpu_with_sanitizer(SanitizeConfig::on());
    let buf = DeviceBuffer::<f32>::zeros(64);
    let report = gpu.launch(&OobLoad { buf: &buf });
    assert_eq!(report.name, "oob-load");
    assert!(!san.is_clean());
}

#[test]
fn racing_plain_stores_attribute_both_warps() {
    let (gpu, san) = gpu_with_sanitizer(SanitizeConfig::on());
    let out = DeviceBuffer::<f32>::zeros(8);
    gpu.launch(&RacingStores { out: &out });
    let audits = san.launches();
    let f = audits[0]
        .findings
        .iter()
        .find(|f| f.kind == CheckKind::GlobalRace)
        .expect("cross-warp plain-store race must be detected");
    assert_eq!(f.kernel, "racing-stores");
    assert_eq!(f.warp, 0);
    assert_eq!(f.other_warp, Some(1));
    assert_eq!(f.lane, Some(0));
    assert_eq!(f.other_lane, Some(0));
    assert_eq!(f.index, Some(0));
    assert_eq!(f.addr, Some(out.addr_base()));
}

#[test]
fn allowlist_admits_intentional_last_writer_wins() {
    let (gpu, san) = gpu_with_sanitizer(SanitizeConfig::on());
    let out = DeviceBuffer::<f32>::zeros(8);
    san.allow_last_writer_wins(&out);
    gpu.launch(&RacingStores { out: &out });
    assert!(san.is_clean(), "{:?}", san.launches());
}

#[test]
fn misaligned_float4_is_flagged() {
    struct MisalignedVec4<'a> {
        buf: &'a DeviceBuffer<f32>,
    }
    impl WarpKernel for MisalignedVec4<'_> {
        fn resources(&self) -> KernelResources {
            res_with_shared(0)
        }
        fn grid_warps(&self) -> usize {
            1
        }
        fn run_warp(&self, _w: usize, ctx: &mut WarpCtx) {
            // Base element 1 is not 4-element (16-byte) aligned.
            ctx.load_f32x4(self.buf, |lane| (lane == 0).then_some(1));
        }
        fn name(&self) -> &str {
            "misaligned-vec4"
        }
    }
    let (gpu, san) = gpu_with_sanitizer(SanitizeConfig::on());
    let buf = DeviceBuffer::<f32>::zeros(64);
    gpu.launch(&MisalignedVec4 { buf: &buf });
    let audits = san.launches();
    let f = audits[0]
        .findings
        .iter()
        .find(|f| f.kind == CheckKind::MisalignedAccess)
        .expect("misaligned float4 must be flagged");
    assert_eq!(f.lane, Some(0));
    assert_eq!(f.index, Some(1));
    assert_eq!(f.addr, Some(buf.addr_base() + 4));
}

#[test]
fn float3_alignment_is_unconstrained() {
    // float3 is three scalar words on CUDA — the reason §4.4 uses it for
    // f = 6. Base index 1 must NOT be flagged.
    struct Vec3<'a> {
        buf: &'a DeviceBuffer<f32>,
    }
    impl WarpKernel for Vec3<'_> {
        fn resources(&self) -> KernelResources {
            res_with_shared(0)
        }
        fn grid_warps(&self) -> usize {
            1
        }
        fn run_warp(&self, _w: usize, ctx: &mut WarpCtx) {
            ctx.load_f32xw(3, self.buf, |lane| (lane == 0).then_some(1));
        }
        fn name(&self) -> &str {
            "vec3"
        }
    }
    let (gpu, san) = gpu_with_sanitizer(SanitizeConfig::on());
    let buf = DeviceBuffer::<f32>::zeros(64);
    gpu.launch(&Vec3 { buf: &buf });
    assert!(san.is_clean(), "{:?}", san.launches());
}

#[test]
fn uninitialized_shared_read_is_flagged() {
    struct UninitShared;
    impl WarpKernel for UninitShared {
        fn resources(&self) -> KernelResources {
            res_with_shared(32 * 4)
        }
        fn grid_warps(&self) -> usize {
            1
        }
        fn run_warp(&self, _w: usize, ctx: &mut WarpCtx) {
            // Word 7 was never written by anyone.
            let _v: gnnone_sim::LaneArr<u32> = ctx.shared_load(|lane| (lane == 3).then_some(7));
        }
        fn name(&self) -> &str {
            "uninit-shared"
        }
    }
    let (gpu, san) = gpu_with_sanitizer(SanitizeConfig::on());
    gpu.launch(&UninitShared);
    let audits = san.launches();
    let f = audits[0]
        .findings
        .iter()
        .find(|f| f.kind == CheckKind::SharedUninitialized)
        .expect("uninitialized shared read must be flagged");
    assert_eq!(f.lane, Some(3));
    assert_eq!(f.index, Some(7));
    assert_eq!(f.epoch, Some(0));
}

#[test]
fn shared_oob_is_flagged_against_declared_resources() {
    struct SharedOob;
    impl WarpKernel for SharedOob {
        fn resources(&self) -> KernelResources {
            res_with_shared(16 * 4) // 16 words declared
        }
        fn grid_warps(&self) -> usize {
            1
        }
        fn run_warp(&self, _w: usize, ctx: &mut WarpCtx) {
            // Touches word 20 > declared 16 — the resource-declaration
            // audit: shared_bytes_per_cta does not cover this.
            ctx.shared_store(|lane| (lane == 0).then_some((20, 1.0f32)));
        }
        fn name(&self) -> &str {
            "shared-oob"
        }
    }
    let (gpu, san) = gpu_with_sanitizer(SanitizeConfig::on());
    gpu.launch(&SharedOob);
    let audits = san.launches();
    let f = audits[0]
        .findings
        .iter()
        .find(|f| f.kind == CheckKind::SharedOutOfBounds)
        .expect("undeclared shared word must be flagged");
    assert_eq!(f.lane, Some(0));
    assert_eq!(f.index, Some(20));
}

#[test]
fn barrier_divergence_under_cta_scope() {
    struct Divergent;
    impl WarpKernel for Divergent {
        fn resources(&self) -> KernelResources {
            KernelResources {
                threads_per_cta: 64, // two warps per CTA
                regs_per_thread: 32,
                shared_bytes_per_cta: 0,
            }
        }
        fn grid_warps(&self) -> usize {
            2
        }
        fn run_warp(&self, warp_id: usize, ctx: &mut WarpCtx) {
            if warp_id == 0 {
                ctx.barrier(); // warp 1 never reaches a barrier
            }
        }
        fn name(&self) -> &str {
            "divergent"
        }
    }
    // Warp-scoped sync (the default): legal, no finding.
    let (gpu, san) = gpu_with_sanitizer(SanitizeConfig::on());
    gpu.launch(&Divergent);
    assert!(san.is_clean(), "{:?}", san.launches());

    // CTA-scoped sync: a divergence.
    let cfg = SanitizeConfig {
        cta_scope_sync: true,
        ..SanitizeConfig::on()
    };
    let (gpu, san) = gpu_with_sanitizer(cfg);
    gpu.launch(&Divergent);
    let audits = san.launches();
    let f = audits[0]
        .findings
        .iter()
        .find(|f| f.kind == CheckKind::BarrierDivergence)
        .expect("CTA-scoped barrier divergence must be flagged");
    assert_eq!(f.warp, 1);
    assert_eq!(f.other_warp, Some(0));
    assert_eq!(f.epoch, Some(0)); // warp 1 executed zero barriers
}

#[test]
fn clean_kernel_reports_zero_findings() {
    let (gpu, san) = gpu_with_sanitizer(SanitizeConfig::on());
    let input = DeviceBuffer::<f32>::zeros(4 * 32);
    let out = DeviceBuffer::<f32>::zeros(4 * 32);
    // Each warp owns its output rows, so the trailing plain store only
    // coexists with this warp's own atomic — never a cross-warp conflict.
    gpu.launch(&CleanTwoStage {
        input: &input,
        out: &out,
    });
    assert!(san.is_clean(), "{:?}", san.launches());
    let audits = san.launches();
    assert_eq!(audits[0].warps, 4);
    assert_eq!(audits[0].suppressed, 0);
}

#[test]
fn sanitizer_does_not_perturb_timing() {
    let input = DeviceBuffer::<f32>::zeros(4 * 32);
    let out = DeviceBuffer::<f32>::zeros(4 * 32);
    let kernel = CleanTwoStage {
        input: &input,
        out: &out,
    };
    let plain = Gpu::new(GpuSpec::tiny()).launch(&kernel);
    out.fill_default();
    let (gpu, san) = gpu_with_sanitizer(SanitizeConfig::on());
    let sanitized = gpu.launch(&kernel);
    assert!(san.is_clean());
    assert_eq!(plain, sanitized, "attaching the sanitizer changed timing");
    assert_eq!(
        plain.to_json().to_string_compact(),
        sanitized.to_json().to_string_compact(),
        "serialized reports must be byte-identical"
    );
}

#[test]
fn report_json_carries_structured_findings() {
    let (gpu, san) = gpu_with_sanitizer(SanitizeConfig::on());
    let out = DeviceBuffer::<f32>::zeros(8);
    gpu.launch(&RacingStores { out: &out });
    let j = san.report_json();
    use gnnone_sim::jsonio::Json;
    assert_eq!(j.get("launches").and_then(Json::as_u64), Some(1));
    assert!(j.get("findings").and_then(Json::as_u64).unwrap() >= 1);
    let audits = j.get("audits").and_then(Json::as_arr).unwrap();
    let findings = audits[0].get("findings").and_then(Json::as_arr).unwrap();
    let f = &findings[0];
    assert_eq!(f.get("check").and_then(Json::as_str), Some("global-race"));
    assert_eq!(
        f.get("kernel").and_then(Json::as_str),
        Some("racing-stores")
    );
    assert!(f.get("warp").and_then(Json::as_u64).is_some());
    assert!(f.get("addr").and_then(Json::as_u64).is_some());
    // The whole report is valid JSON through the dependency-free writer.
    let text = j.to_string_pretty();
    gnnone_sim::jsonio::parse(&text).expect("report must parse");
}

#[test]
fn enable_sanitizer_is_set_once_and_shared_by_clones() {
    let gpu = Gpu::new(GpuSpec::tiny());
    let a = gpu.enable_sanitizer(SanitizeConfig::on());
    let b = gpu.enable_sanitizer(SanitizeConfig::on());
    assert!(Arc::ptr_eq(&a, &b));
    assert!(!gpu.attach_sanitizer(Arc::new(Sanitizer::new(SanitizeConfig::on()))));
    let clone = gpu.clone();
    let out = DeviceBuffer::<f32>::zeros(8);
    clone.launch(&RacingStores { out: &out });
    assert!(!a.is_clean(), "clone must record into the shared sanitizer");
}

/// Reads `u32` indices from a buffer; when `trap_on_corrupt` is set it
/// panics the moment a value exceeds the buffer's index range — modelling
/// kernel arithmetic (e.g. `end - start`) blowing up on a corrupted index
/// before any memory access the bounds layer could catch.
struct IndexReader<'a> {
    idx: &'a DeviceBuffer<u32>,
    trap_on_corrupt: bool,
}

impl WarpKernel for IndexReader<'_> {
    fn resources(&self) -> KernelResources {
        res_with_shared(0)
    }
    fn grid_warps(&self) -> usize {
        1
    }
    fn run_warp(&self, _warp_id: usize, ctx: &mut WarpCtx) {
        for base in 0..4 {
            let v = ctx.load_u32(self.idx, |lane| Some((base * 32 + lane) % self.idx.len()));
            if self.trap_on_corrupt {
                for lane in 0..gnnone_sim::WARP_SIZE {
                    assert!(
                        (v.get(lane) as usize) < self.idx.len(),
                        "corrupted index reached kernel arithmetic"
                    );
                }
            }
        }
    }
    fn name(&self) -> &str {
        "index-reader"
    }
}

#[test]
fn chaos_bit_flip_is_reported_as_an_ecc_event() {
    use gnnone_sim::{ChaosConfig, FaultKind};
    let (gpu, san) = gpu_with_sanitizer(SanitizeConfig::on());
    gpu.enable_chaos(ChaosConfig::fault(FaultKind::GlobalBitFlip { flips: 1 }, 3));
    let idx = DeviceBuffer::from_slice(&[1u32; 128]);
    gpu.launch(&IndexReader {
        idx: &idx,
        trap_on_corrupt: false,
    });
    let ecc = san.ecc_events();
    assert_eq!(ecc.len(), 1, "one flip fires exactly once");
    assert_eq!(ecc[0].kind, CheckKind::MemoryEcc);
    assert_eq!(ecc[0].kernel, "index-reader");
    assert!(ecc[0].detail.contains("global index"), "{}", ecc[0].detail);
    assert!(san.finding_count() >= 1);
    assert!(!san.is_clean());
    let j = san.report_json();
    assert!(
        j.to_string_compact().contains("memory-ecc"),
        "report must carry the ECC event"
    );
}

#[test]
fn ecc_event_survives_a_kernel_that_traps_on_the_corrupted_value() {
    use gnnone_sim::{ChaosConfig, FaultKind};
    let (gpu, san) = gpu_with_sanitizer(SanitizeConfig::on());
    gpu.enable_chaos(ChaosConfig::fault(FaultKind::GlobalBitFlip { flips: 1 }, 3));
    let idx = DeviceBuffer::from_slice(&[1u32; 128]);
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        gpu.try_launch(&IndexReader {
            idx: &idx,
            trap_on_corrupt: true,
        })
    }));
    assert!(
        outcome.is_err(),
        "the kernel must trap on the flipped index"
    );
    // The flip was still detected: the ECC event was flushed at corruption
    // time, before the kernel's arithmetic saw the value.
    assert_eq!(san.ecc_events().len(), 1);
    assert!(san.finding_count() >= 1);
}

#[test]
fn ecc_events_are_not_recorded_without_a_fired_flip() {
    let (gpu, san) = gpu_with_sanitizer(SanitizeConfig::on());
    let idx = DeviceBuffer::from_slice(&[1u32; 128]);
    gpu.launch(&IndexReader {
        idx: &idx,
        trap_on_corrupt: true,
    });
    assert!(san.ecc_events().is_empty());
    assert!(san.is_clean());
}
