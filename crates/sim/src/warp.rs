//! Warp-level execution context: functional SIMT operations plus the
//! per-warp scoreboard that models load ILP and memory-barrier drains.
//!
//! ## The scoreboard
//!
//! Global loads are issued into a bounded in-flight queue
//! ([`TimingParams::max_outstanding_loads`]). The warp's clock only advances
//! by the issue cost, so independent loads overlap their DRAM latency —
//! *instruction-level parallelism*. Three things expose latency:
//!
//! 1. the in-flight queue filling up (the warp stalls for the oldest load),
//! 2. a **drain point** — a barrier or a warp-shuffle exchange — which waits
//!    for every outstanding load (the paper's "memory barrier" effect on
//!    data-load performance, §3.2),
//! 3. explicit consumption via [`WarpCtx::use_loads`].
//!
//! This is exactly the mechanism GNNOne's Stage-2 design manipulates: loading
//! four features per thread with one `float4` instruction issues the same
//! bytes with fewer instructions *and* meets fewer shuffle-drain points per
//! feature, so less latency is exposed.
//!
//! ## Shared memory
//!
//! Each warp owns a private slice of its CTA's shared memory (the GNNOne
//! kernels, like the originals, partition the CTA allocation per warp;
//! see Listing 1 of the paper). Accesses are charged a small pipelined cost;
//! bank conflicts are not modelled (none of the reproduced kernels generate
//! systematic conflicts — all use linear layouts).

use std::collections::VecDeque;

use crate::buffer::{DeviceBuffer, Pod32};
use crate::chaos::{ChargeFault, WarpChaos};
use crate::coalesce::{coalesce, Access};
use crate::error::{AbortReason, AbortSignal};
use crate::lanes::{LaneArr, WARP_SIZE};
use crate::sanitize::{GlobalKind, Sanitizer, WarpShadow};
use crate::spec::TimingParams;
use crate::stats::WarpStats;

/// Execution context handed to [`crate::WarpKernel::run_warp`].
///
/// When a [`crate::Sanitizer`] is attached to the launching [`crate::Gpu`],
/// the context carries a per-warp shadow that every memory operation
/// consults before executing. The shadow never reads or writes the clock,
/// the scoreboard, or the statistics, so timing is bit-identical with and
/// without it; an out-of-bounds access is recorded as a finding and skipped
/// instead of panicking the host.
pub struct WarpCtx {
    timing: TimingParams,
    clock: u64,
    outstanding: VecDeque<u64>,
    shared: Vec<u32>,
    shared_limit_words: usize,
    stats: WarpStats,
    san: Option<Box<WarpShadow>>,
    chaos: Option<Box<WarpChaos>>,
    /// ECC sink `(sanitizer, kernel name)` — attached by the engine to the
    /// fault-target warp of a sanitized chaos launch; consulted only when a
    /// bit flip actually fires.
    ecc: Option<(std::sync::Arc<Sanitizer>, String)>,
    warp_id: usize,
    ops: u64,
    budget: u64,
}

impl WarpCtx {
    /// Creates a context with `shared_bytes` of per-warp shared memory.
    /// The watchdog is disabled until [`WarpCtx::set_watchdog`] arms it
    /// (the engine does, per launch), so directly-driven contexts in tests
    /// behave as before.
    pub fn new(timing: TimingParams, shared_bytes: usize) -> Self {
        let shared_limit_words = shared_bytes / 4;
        Self {
            timing,
            clock: 0,
            outstanding: VecDeque::with_capacity(timing.max_outstanding_loads),
            shared: vec![0u32; shared_limit_words],
            shared_limit_words,
            stats: WarpStats::default(),
            san: None,
            chaos: None,
            ecc: None,
            warp_id: 0,
            ops: 0,
            budget: u64::MAX,
        }
    }

    /// Arms the watchdog: the context aborts the launch (via a structured
    /// unwind the engine converts into a
    /// [`crate::engine::LaunchError::Aborted`]) once the warp has issued
    /// more than `budget` warp-wide instructions. Called by the engine with
    /// the budget from the launch's [`crate::LaunchSpec`].
    pub fn set_watchdog(&mut self, warp_id: usize, budget: u64) {
        self.warp_id = warp_id;
        self.budget = budget;
    }

    /// Warp-wide instructions issued so far (the watchdog's counter).
    pub fn ops(&self) -> u64 {
        self.ops
    }

    /// Charges `n` warp-wide instructions against the watchdog budget.
    /// When a chaos fault is attached this is also the control-fault
    /// injection point: a killed warp aborts here, a stalled warp inflates
    /// its counter so the watchdog (when armed) trips on this very charge.
    #[inline]
    fn charge(&mut self, n: u64) {
        if let Some(fault) = self.chaos.as_deref_mut().and_then(WarpChaos::on_charge) {
            match fault {
                ChargeFault::Kill => self.abort(AbortReason::ChaosKill),
                ChargeFault::Stall => self.ops = self.ops.saturating_add(1 << 40),
            }
        }
        self.ops += n;
        if self.ops > self.budget {
            self.abort(AbortReason::Watchdog);
        }
    }

    /// Stops the launch with a structured abort. `resume_unwind` skips the
    /// panic hook, so aborts make no stderr noise; the engine catches the
    /// payload and converts it into a [`crate::KernelAbort`].
    fn abort(&self, reason: AbortReason) -> ! {
        std::panic::resume_unwind(Box::new(AbortSignal {
            warp_id: self.warp_id as u64,
            ops: self.ops,
            budget: self.budget,
            reason,
        }))
    }

    /// Installs the sanitizer's per-warp shadow; called by the engine
    /// before `run_warp`.
    pub(crate) fn attach_shadow(&mut self, shadow: Box<WarpShadow>) {
        self.san = Some(shadow);
    }

    /// Removes and returns the shadow; called by the engine after the warp
    /// function returns.
    pub(crate) fn take_shadow(&mut self) -> Option<Box<WarpShadow>> {
        self.san.take()
    }

    /// Installs a chaos fault hook; the engine attaches one to the single
    /// target warp of a fault-injecting launch.
    pub(crate) fn attach_chaos(&mut self, chaos: Box<WarpChaos>) {
        self.chaos = Some(chaos);
    }

    /// Removes and returns the chaos hook so the engine can record whether
    /// the fault actually fired.
    pub(crate) fn take_chaos(&mut self) -> Option<Box<WarpChaos>> {
        self.chaos.take()
    }

    /// Installs the ECC sink: a firing chaos bit flip is reported straight
    /// to the sanitizer (not through the warp shadow), so the event
    /// survives even if the kernel traps on the corrupted value.
    pub(crate) fn attach_ecc_sink(&mut self, san: std::sync::Arc<Sanitizer>, kernel: &str) {
        self.ecc = Some((san, kernel.to_string()));
    }

    /// Current warp-local clock (cycles since warp start).
    pub fn clock(&self) -> u64 {
        self.clock
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> &WarpStats {
        &self.stats
    }

    /// Drains outstanding loads and finalizes `solo_cycles`; called by the
    /// engine when the warp function returns.
    pub fn finish(&mut self) -> WarpStats {
        self.drain();
        self.stats.solo_cycles = self.clock;
        self.stats
    }

    // ---- scoreboard internals ------------------------------------------

    fn issue_load_access(&mut self, access: Access) {
        self.charge(1);
        self.stats.loads += 1;
        self.stats.read_sectors += access.sectors as u64;
        self.stats.read_useful_bytes += access.useful_bytes;
        self.clock += self.timing.issue_cycles;
        if access.sectors == 0 {
            // All lanes inactive: the instruction still issues, nothing flies.
            return;
        }
        if self.outstanding.len() >= self.timing.max_outstanding_loads {
            let ready = self
                .outstanding
                .pop_front()
                .expect("queue non-empty by check");
            self.stall_until(ready);
        }
        let service = self.timing.dram_latency
            + u64::from(access.sectors.saturating_sub(1)) * self.timing.cycles_per_extra_sector;
        self.outstanding.push_back(self.clock + service);
    }

    fn stall_until(&mut self, ready: u64) {
        if ready > self.clock {
            self.stats.mem_stall_cycles += ready - self.clock;
            self.clock = ready;
        }
    }

    fn drain(&mut self) {
        if let Some(&max_ready) = self.outstanding.iter().max() {
            self.stall_until(max_ready);
        }
        self.outstanding.clear();
    }

    // ---- global memory --------------------------------------------------

    /// Warp-wide scalar load: lane `l` reads `buf[addr(l)]` when
    /// `addr(l) == Some(_)`; inactive lanes receive `T::default()`.
    pub fn load<T: Pod32>(
        &mut self,
        buf: &DeviceBuffer<T>,
        mut addr: impl FnMut(usize) -> Option<usize>,
    ) -> LaneArr<T> {
        let mut out = LaneArr::<T>::default();
        let mut lane_addrs: [Option<u64>; WARP_SIZE] = [None; WARP_SIZE];
        for lane in 0..WARP_SIZE {
            if let Some(idx) = addr(lane) {
                if let Some(sh) = self.san.as_deref_mut() {
                    if !sh.check_global(buf.addr_base(), buf.len(), idx, 1, lane, GlobalKind::Read)
                    {
                        continue;
                    }
                } else {
                    self.check_global_bounds(buf.len(), idx, 1);
                }
                let mut value = buf.read(idx);
                if T::IS_INDEX {
                    if let Some(bits) = self
                        .chaos
                        .as_deref_mut()
                        .and_then(|ch| ch.corrupt_global_u32(value.to_bits32()))
                    {
                        value = T::from_bits32(bits);
                        // ECC analogue: with a sanitizer attached, the flip
                        // is detected at load time, before the corrupted
                        // value can misroute or trap the kernel.
                        if let Some((san, kernel)) = self.ecc.as_ref() {
                            san.record_ecc(
                                kernel,
                                self.warp_id,
                                lane,
                                idx as u64,
                                format!(
                                    "chaos-injected bit flip on a global index \
                                     load at element {idx} (ECC analogue)"
                                ),
                            );
                        }
                    }
                }
                out.set(lane, value);
                lane_addrs[lane] = Some(buf.addr_of(idx));
            }
        }
        let access = coalesce(lane_addrs.iter().filter_map(|a| a.map(|a| (a, 4))));
        self.issue_load_access(access);
        out
    }

    /// Unsanitized bounds check: with no sanitizer shadow to record an
    /// out-of-bounds access as a finding, stop the launch with a structured
    /// abort instead of letting the slice index panic the host.
    #[inline]
    fn check_global_bounds(&self, len: usize, idx: usize, width: usize) {
        if idx + width > len {
            self.abort(AbortReason::GlobalOutOfBounds {
                index: idx as u64,
                len: len as u64,
            });
        }
    }

    /// Warp-wide scalar `f32` load.
    pub fn load_f32(
        &mut self,
        buf: &DeviceBuffer<f32>,
        addr: impl FnMut(usize) -> Option<usize>,
    ) -> LaneArr<f32> {
        self.load(buf, addr)
    }

    /// Warp-wide scalar `u32` load.
    pub fn load_u32(
        &mut self,
        buf: &DeviceBuffer<u32>,
        addr: impl FnMut(usize) -> Option<usize>,
    ) -> LaneArr<u32> {
        self.load(buf, addr)
    }

    /// Vector load (`float4`): lane `l` reads `buf[base(l) .. base(l)+4]`
    /// with **one** memory instruction — the CUDA `float4` mechanism GNNOne
    /// uses in Stage 2 (§4.2.1). `base(l)` must be 4-element aligned for a
    /// fully coalesced access, mirroring the alignment requirement that
    /// forces the `float3` fallback for feature length 6 (§4.4).
    pub fn load_f32x4(
        &mut self,
        buf: &DeviceBuffer<f32>,
        mut base: impl FnMut(usize) -> Option<usize>,
    ) -> [LaneArr<f32>; 4] {
        self.load_f32xn::<4>(buf, &mut base)
    }

    /// Vector load of `N` consecutive floats per lane (one instruction).
    /// `N` must be 1..=4, matching CUDA's `float`, `float2`, `float3`,
    /// `float4` vector types.
    pub fn load_f32xn<const N: usize>(
        &mut self,
        buf: &DeviceBuffer<f32>,
        base: &mut impl FnMut(usize) -> Option<usize>,
    ) -> [LaneArr<f32>; N] {
        const { assert!(N >= 1 && N <= 4, "vector width must be 1..=4") };
        let mut out = [LaneArr::<f32>::default(); N];
        let mut lane_addrs: [Option<u64>; WARP_SIZE] = [None; WARP_SIZE];
        for lane in 0..WARP_SIZE {
            if let Some(idx) = base(lane) {
                if let Some(sh) = self.san.as_deref_mut() {
                    if !sh.check_global(buf.addr_base(), buf.len(), idx, N, lane, GlobalKind::Read)
                    {
                        continue;
                    }
                } else {
                    self.check_global_bounds(buf.len(), idx, N);
                }
                for (k, arr) in out.iter_mut().enumerate() {
                    arr.set(lane, buf.read(idx + k));
                }
                lane_addrs[lane] = Some(buf.addr_of(idx));
            }
        }
        let width = 4 * N as u64;
        let access = coalesce(lane_addrs.iter().filter_map(|a| a.map(|a| (a, width))));
        self.issue_load_access(access);
        out
    }

    /// Vector load with a runtime width (1..=4): the dynamic counterpart of
    /// [`WarpCtx::load_f32xn`]. Unused trailing arrays are zero. Kernels use
    /// this because the vector width is picked per feature length at
    /// runtime (float4 / float3 / float2 / float — §4.4 of the paper).
    pub fn load_f32xw(
        &mut self,
        width: usize,
        buf: &DeviceBuffer<f32>,
        mut base: impl FnMut(usize) -> Option<usize>,
    ) -> [LaneArr<f32>; 4] {
        match width {
            1 => {
                let [a] = self.load_f32xn::<1>(buf, &mut base);
                [
                    a,
                    LaneArr::default(),
                    LaneArr::default(),
                    LaneArr::default(),
                ]
            }
            2 => {
                let [a, b] = self.load_f32xn::<2>(buf, &mut base);
                [a, b, LaneArr::default(), LaneArr::default()]
            }
            3 => {
                let [a, b, c] = self.load_f32xn::<3>(buf, &mut base);
                [a, b, c, LaneArr::default()]
            }
            4 => self.load_f32xn::<4>(buf, &mut base),
            _ => panic!("vector width must be 1..=4, got {width}"),
        }
    }

    /// Warp-wide store: lane `l` writes `value` to `buf[idx]` when
    /// `write(l) == Some((idx, value))`. Stores are fire-and-forget (they do
    /// not join the load scoreboard); their bandwidth is accounted.
    pub fn store<T: Pod32>(
        &mut self,
        buf: &DeviceBuffer<T>,
        mut write: impl FnMut(usize) -> Option<(usize, T)>,
    ) {
        self.charge(1);
        let mut lane_addrs: [Option<u64>; WARP_SIZE] = [None; WARP_SIZE];
        for lane in 0..WARP_SIZE {
            if let Some((idx, value)) = write(lane) {
                if let Some(sh) = self.san.as_deref_mut() {
                    if !sh.check_global(buf.addr_base(), buf.len(), idx, 1, lane, GlobalKind::Write)
                    {
                        continue;
                    }
                } else {
                    self.check_global_bounds(buf.len(), idx, 1);
                }
                buf.write(idx, value);
                lane_addrs[lane] = Some(buf.addr_of(idx));
            }
        }
        let access = coalesce(lane_addrs.iter().filter_map(|a| a.map(|a| (a, 4))));
        self.stats.stores += 1;
        self.stats.write_sectors += access.sectors as u64;
        self.clock +=
            self.timing.issue_cycles + access.sectors as u64 * self.timing.store_sector_cycles;
    }

    /// Warp-wide `f32` store.
    pub fn store_f32(
        &mut self,
        buf: &DeviceBuffer<f32>,
        write: impl FnMut(usize) -> Option<(usize, f32)>,
    ) {
        self.store(buf, write)
    }

    /// Warp-wide `u32` store.
    pub fn store_u32(
        &mut self,
        buf: &DeviceBuffer<u32>,
        write: impl FnMut(usize) -> Option<(usize, u32)>,
    ) {
        self.store(buf, write)
    }

    /// Warp-wide `atomicAdd` on `f32`. Lanes hitting the same address
    /// serialize: the instruction is charged `atomic_cycles ×` the largest
    /// per-address multiplicity. The running reduction of GNNOne SpMM keeps
    /// this multiplicity at 1 except at row splits (§4.3).
    pub fn atomic_add_f32(
        &mut self,
        buf: &DeviceBuffer<f32>,
        mut write: impl FnMut(usize) -> Option<(usize, f32)>,
    ) {
        self.charge(1);
        // A chaos AtomicDrop downgrades this whole warp instruction to plain
        // stores of the addends — the lost-update fault. The shadow sees the
        // ops as plain writes, so the racecheck fires wherever another warp
        // legitimately contributes to the same cell.
        let dropped = self
            .chaos
            .as_deref_mut()
            .is_some_and(WarpChaos::drop_atomic);
        let kind = if dropped {
            GlobalKind::Write
        } else {
            GlobalKind::Atomic
        };
        let mut lane_addrs: [Option<u64>; WARP_SIZE] = [None; WARP_SIZE];
        let mut idxs: Vec<usize> = Vec::with_capacity(WARP_SIZE);
        for lane in 0..WARP_SIZE {
            if let Some((idx, value)) = write(lane) {
                if let Some(sh) = self.san.as_deref_mut() {
                    if !sh.check_global(buf.addr_base(), buf.len(), idx, 1, lane, kind) {
                        continue;
                    }
                } else {
                    self.check_global_bounds(buf.len(), idx, 1);
                }
                if dropped {
                    buf.write(idx, value);
                } else {
                    buf.atomic_add(idx, value);
                }
                lane_addrs[lane] = Some(buf.addr_of(idx));
                idxs.push(idx);
            }
        }
        if idxs.is_empty() {
            self.clock += self.timing.issue_cycles;
            return;
        }
        idxs.sort_unstable();
        let mut max_mult: u64 = 0;
        let mut run = 0u64;
        let mut prev = usize::MAX;
        for idx in idxs {
            if idx == prev {
                run += 1;
            } else {
                run = 1;
                prev = idx;
            }
            max_mult = max_mult.max(run);
        }
        let access = coalesce(lane_addrs.iter().filter_map(|a| a.map(|a| (a, 4))));
        self.stats.atomics += 1;
        self.stats.atomic_conflicts += max_mult - 1;
        self.stats.write_sectors += access.sectors as u64;
        self.clock += self.timing.issue_cycles + self.timing.atomic_cycles * max_mult;
    }

    /// Vectored `atomicAdd`: each active lane atomically adds `width`
    /// consecutive floats starting at its base index. Models a thread
    /// flushing a `float4` accumulator with consecutive per-element atomics
    /// — the L2 combines them into the same sectors, so traffic is counted
    /// once while the issue cost covers all `width` element-atomics.
    pub fn atomic_add_f32_vec(
        &mut self,
        width: usize,
        buf: &DeviceBuffer<f32>,
        mut write: impl FnMut(usize) -> Option<(usize, [f32; 4])>,
    ) -> bool {
        assert!((1..=4).contains(&width));
        self.charge(width as u64);
        // Chaos AtomicDrop: same lost-update downgrade as the scalar path.
        let dropped = self
            .chaos
            .as_deref_mut()
            .is_some_and(WarpChaos::drop_atomic);
        let kind = if dropped {
            GlobalKind::Write
        } else {
            GlobalKind::Atomic
        };
        let mut lane_addrs: [Option<u64>; WARP_SIZE] = [None; WARP_SIZE];
        let mut any = false;
        for lane in 0..WARP_SIZE {
            if let Some((idx, vals)) = write(lane) {
                if let Some(sh) = self.san.as_deref_mut() {
                    if !sh.check_global(buf.addr_base(), buf.len(), idx, width, lane, kind) {
                        continue;
                    }
                } else {
                    self.check_global_bounds(buf.len(), idx, width);
                }
                for (k, &v) in vals.iter().enumerate().take(width) {
                    if dropped {
                        buf.write(idx + k, v);
                    } else {
                        buf.atomic_add(idx + k, v);
                    }
                }
                lane_addrs[lane] = Some(buf.addr_of(idx));
                any = true;
            }
        }
        if !any {
            self.clock += self.timing.issue_cycles;
            return false;
        }
        let w = 4 * width as u64;
        let access = coalesce(lane_addrs.iter().filter_map(|a| a.map(|a| (a, w))));
        self.stats.atomics += width as u64;
        self.stats.write_sectors += access.sectors as u64;
        self.clock += width as u64 * self.timing.issue_cycles + self.timing.atomic_cycles;
        true
    }

    /// Waits for every outstanding load — models consuming loaded registers
    /// without an inter-thread exchange (e.g. before a data-dependent branch).
    pub fn use_loads(&mut self) {
        self.drain();
    }

    // ---- shared memory ----------------------------------------------------

    /// Number of 32-bit words of per-warp shared memory available.
    pub fn shared_words(&self) -> usize {
        self.shared_limit_words
    }

    /// Stores one word per active lane into per-warp shared memory.
    pub fn shared_store<T: Pod32>(&mut self, mut write: impl FnMut(usize) -> Option<(usize, T)>) {
        self.charge(1);
        let limit = self.shared_limit_words;
        for lane in 0..WARP_SIZE {
            if let Some((idx, value)) = write(lane) {
                if let Some(sh) = self.san.as_deref_mut() {
                    if !sh.shared_write(idx, lane, limit) {
                        continue;
                    }
                } else if idx >= limit {
                    self.abort(AbortReason::SharedOutOfBounds {
                        word: idx as u64,
                        limit: limit as u64,
                    });
                }
                self.shared[idx] = value.to_bits32();
            }
        }
        self.stats.shared_accesses += 1;
        self.clock += self.timing.issue_cycles;
    }

    /// Loads one word per active lane from per-warp shared memory.
    /// A barrier must separate the producing stores from these reads, as on
    /// hardware; the simulator checks only cost, not ordering (the functional
    /// result is always the latest store because warps are sequential here).
    pub fn shared_load<T: Pod32>(
        &mut self,
        mut addr: impl FnMut(usize) -> Option<usize>,
    ) -> LaneArr<T> {
        self.charge(1);
        let mut out = LaneArr::<T>::default();
        let limit = self.shared_limit_words;
        for lane in 0..WARP_SIZE {
            if let Some(idx) = addr(lane) {
                if let Some(sh) = self.san.as_deref_mut() {
                    if !sh.shared_read(idx, lane, limit) {
                        continue;
                    }
                } else if idx >= limit {
                    self.abort(AbortReason::SharedOutOfBounds {
                        word: idx as u64,
                        limit: limit as u64,
                    });
                }
                let mut bits = self.shared[idx];
                if T::IS_INDEX {
                    if let Some(corrupted) = self
                        .chaos
                        .as_deref_mut()
                        .and_then(|ch| ch.corrupt_shared_u32(bits))
                    {
                        bits = corrupted;
                        // ECC analogue, as on the global load path: A100
                        // shared memory is SECDED-protected too.
                        if let Some((san, kernel)) = self.ecc.as_ref() {
                            san.record_ecc(
                                kernel,
                                self.warp_id,
                                lane,
                                idx as u64,
                                format!(
                                    "chaos-injected bit flip on a shared index \
                                     load at word {idx} (ECC analogue)"
                                ),
                            );
                        }
                    }
                }
                out.set(lane, T::from_bits32(bits));
            }
        }
        self.stats.shared_accesses += 1;
        self.clock += self.timing.issue_cycles;
        out
    }

    /// Reads a single shared word from the host-side of the simulation
    /// without cost — for assertions in tests.
    pub fn shared_peek<T: Pod32>(&self, idx: usize) -> T {
        T::from_bits32(self.shared[idx])
    }

    // ---- synchronization --------------------------------------------------

    /// Memory barrier (`__syncthreads` / `__syncwarp` with fence semantics):
    /// drains all outstanding loads and charges the barrier cost. This is
    /// the ordering constraint the paper identifies as the hidden enemy of
    /// data-load ILP (§3.2).
    pub fn barrier(&mut self) {
        self.charge(1);
        // Chaos BarrierElide: the sync simply doesn't happen — no drain, no
        // shadow epoch bump, no cost. Subsequent shared reads land in their
        // writers' epoch, which the sanitizer's epoch check must flag.
        if self
            .chaos
            .as_deref_mut()
            .is_some_and(WarpChaos::elide_barrier)
        {
            return;
        }
        self.drain();
        if let Some(sh) = self.san.as_deref_mut() {
            sh.on_barrier();
        }
        self.stats.barriers += 1;
        self.clock += self.timing.barrier_cycles;
    }

    /// One `__shfl_down_sync` exchange round of width `width` (a power of
    /// two ≤ 32). Lane `l` receives the value of lane `l + delta` when both
    /// are in the same `width`-sized segment; otherwise keeps its own value.
    ///
    /// Shuffles synchronize the participating lanes, so the scoreboard
    /// treats each round as a drain point — the mechanism behind "reduction
    /// indirectly impacts data load" (§3.2).
    pub fn shfl_down_f32(
        &mut self,
        vals: &LaneArr<f32>,
        delta: usize,
        width: usize,
    ) -> LaneArr<f32> {
        assert!(width.is_power_of_two() && width <= WARP_SIZE);
        self.charge(1);
        self.drain();
        self.stats.shfl_rounds += 1;
        self.clock += self.timing.shfl_cycles;
        LaneArr::from_fn(|lane| {
            let seg = lane / width * width;
            let src = lane + delta;
            if src < seg + width {
                vals.get(src)
            } else {
                vals.get(lane)
            }
        })
    }

    /// Tree reduction within each `width`-wide segment using
    /// `log2(width)` shuffle rounds; every lane of a segment ends with the
    /// segment sum in its slot (sufficient for lane 0 to store it).
    pub fn shfl_reduce_sum_f32(&mut self, vals: &LaneArr<f32>, width: usize) -> LaneArr<f32> {
        assert!(width.is_power_of_two() && width <= WARP_SIZE);
        let mut acc = *vals;
        let mut delta = width / 2;
        while delta >= 1 {
            let shifted = self.shfl_down_f32(&acc, delta, width);
            acc = acc.zip_with(&shifted, |a, b| a + b);
            delta /= 2;
        }
        acc
    }

    // ---- compute ------------------------------------------------------------

    /// Charges `n` warp-wide FMA-equivalent instructions.
    pub fn compute(&mut self, n: u64) {
        self.charge(n);
        self.stats.compute_instr += n;
        self.clock += n * self.timing.issue_cycles;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> WarpCtx {
        WarpCtx::new(TimingParams::default(), 4096)
    }

    #[test]
    fn loads_overlap_until_queue_full() {
        let t = TimingParams::default();
        let buf = DeviceBuffer::<f32>::zeros(32 * 64);
        let mut c = ctx();
        // Issue max_outstanding loads: clock advances only by issue cost.
        for i in 0..t.max_outstanding_loads {
            c.load_f32(&buf, |lane| Some(i * 32 + lane));
        }
        assert_eq!(c.clock(), t.max_outstanding_loads as u64 * t.issue_cycles);
        // One more load must stall for the first to return.
        c.load_f32(&buf, Some);
        assert!(c.clock() >= t.dram_latency);
        assert!(c.stats().mem_stall_cycles > 0);
    }

    #[test]
    fn barrier_drains_outstanding() {
        let t = TimingParams::default();
        let buf = DeviceBuffer::<f32>::zeros(64);
        let mut c = ctx();
        c.load_f32(&buf, Some);
        c.barrier();
        // Clock passed full latency plus barrier cost.
        assert!(c.clock() >= t.dram_latency + t.barrier_cycles);
        assert_eq!(c.stats().barriers, 1);
    }

    #[test]
    fn more_loads_per_barrier_is_faster_per_load() {
        // The paper's core ILP claim: k loads then one drain beats
        // (load, drain) × k.
        let buf = DeviceBuffer::<f32>::zeros(32 * 16);
        let mut batched = ctx();
        for i in 0..4 {
            batched.load_f32(&buf, |lane| Some(i * 32 + lane));
        }
        batched.barrier();
        let batched_cycles = batched.finish().solo_cycles;

        let mut serial = ctx();
        for i in 0..4 {
            serial.load_f32(&buf, |lane| Some(i * 32 + lane));
            serial.barrier();
        }
        let serial_cycles = serial.finish().solo_cycles;
        assert!(
            serial_cycles > 3 * batched_cycles,
            "serial={serial_cycles} batched={batched_cycles}"
        );
    }

    #[test]
    fn functional_load_reads_values() {
        let buf = DeviceBuffer::from_slice(&(0..64).map(|i| i as f32).collect::<Vec<_>>());
        let mut c = ctx();
        let v = c.load_f32(&buf, |lane| Some(lane * 2));
        assert_eq!(v.get(0), 0.0);
        assert_eq!(v.get(1), 2.0);
        assert_eq!(v.get(31), 62.0);
    }

    #[test]
    fn vector_load_reads_four_consecutive() {
        let buf = DeviceBuffer::from_slice(&(0..256).map(|i| i as f32).collect::<Vec<_>>());
        let mut c = ctx();
        let vecs = c.load_f32x4(&buf, |lane| (lane < 8).then_some(lane * 4));
        assert_eq!(vecs[0].get(1), 4.0);
        assert_eq!(vecs[3].get(1), 7.0);
        assert_eq!(vecs[2].get(7), 30.0);
        // 8 lanes × 16 B consecutive = fully coalesced 4 sectors.
        assert_eq!(c.stats().read_sectors, 4);
        assert_eq!(c.stats().read_useful_bytes, 128);
        assert_eq!(c.stats().loads, 1);
    }

    #[test]
    fn float4_moves_same_bytes_with_fewer_instructions() {
        let buf = DeviceBuffer::<f32>::zeros(1024);
        // Scalar: 4 instructions, 32 lanes each.
        let mut scalar = ctx();
        for k in 0..4 {
            scalar.load_f32(&buf, |lane| Some(lane * 4 + k));
        }
        // Vector: 1 instruction, 32 lanes × 4 floats. (Different layout but
        // same 512 useful bytes.)
        let mut vector = ctx();
        vector.load_f32x4(&buf, |lane| Some(lane * 4));
        assert_eq!(
            scalar.stats().read_useful_bytes,
            vector.stats().read_useful_bytes
        );
        assert_eq!(vector.stats().loads, 1);
        assert_eq!(scalar.stats().loads, 4);
    }

    #[test]
    fn shfl_down_exchanges_within_segment() {
        let mut c = ctx();
        let vals = LaneArr::from_fn(|lane| lane as f32);
        let out = c.shfl_down_f32(&vals, 4, 8);
        assert_eq!(out.get(0), 4.0);
        assert_eq!(out.get(3), 7.0);
        // Lane 4 + 4 = 8 is outside segment [0,8): keeps own value.
        assert_eq!(out.get(4), 4.0);
        assert_eq!(out.get(8), 12.0);
    }

    #[test]
    fn shfl_reduce_sums_each_segment() {
        let mut c = ctx();
        let vals = LaneArr::from_fn(|lane| lane as f32);
        let out = c.shfl_reduce_sum_f32(&vals, 8);
        // Segment 0 holds lanes 0..8: sum = 28.
        assert_eq!(out.get(0), 28.0);
        // Segment 1 holds lanes 8..16: sum = 92.
        assert_eq!(out.get(8), 92.0);
        assert_eq!(c.stats().shfl_rounds, 3);
    }

    #[test]
    fn shfl_reduce_full_warp_is_five_rounds() {
        let mut c = ctx();
        let vals = LaneArr::from_fn(|_| 1.0);
        let out = c.shfl_reduce_sum_f32(&vals, 32);
        assert_eq!(out.get(0), 32.0);
        assert_eq!(c.stats().shfl_rounds, 5);
    }

    #[test]
    fn shared_store_load_roundtrip() {
        let mut c = ctx();
        c.shared_store(|lane| Some((lane, lane as u32 * 3)));
        c.barrier();
        let v: LaneArr<u32> = c.shared_load(|lane| Some(31 - lane));
        assert_eq!(v.get(0), 93);
        assert_eq!(v.get(31), 0);
        assert_eq!(c.stats().shared_accesses, 2);
    }

    #[test]
    fn shared_overflow_aborts_with_structure() {
        // 16 bytes = 4 words; lanes 4.. overflow. The unsanitized path
        // unwinds with an AbortSignal (not a plain panic) so the engine can
        // report a typed KernelAbort.
        let payload = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut c = WarpCtx::new(TimingParams::default(), 16);
            c.shared_store(|lane| Some((lane, 0u32)));
        }))
        .unwrap_err();
        let sig = payload.downcast::<AbortSignal>().expect("structured abort");
        assert!(matches!(
            sig.reason,
            AbortReason::SharedOutOfBounds { word: 4, limit: 4 }
        ));
    }

    #[test]
    fn watchdog_charges_and_aborts_at_budget() {
        let mut c = ctx();
        c.set_watchdog(7, 4);
        c.compute(3);
        assert_eq!(c.ops(), 3);
        let payload = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            c.compute(2); // 5 > 4: trips
        }))
        .unwrap_err();
        let sig = payload.downcast::<AbortSignal>().expect("structured abort");
        assert_eq!(sig.warp_id, 7);
        assert_eq!(sig.budget, 4);
        assert!(matches!(sig.reason, AbortReason::Watchdog));
    }

    #[test]
    fn unsanitized_global_oob_aborts_with_structure() {
        let buf = DeviceBuffer::<f32>::zeros(8);
        let payload = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut c = ctx();
            c.load_f32(&buf, |lane| Some(lane * 100));
        }))
        .unwrap_err();
        let sig = payload.downcast::<AbortSignal>().expect("structured abort");
        assert!(matches!(
            sig.reason,
            AbortReason::GlobalOutOfBounds { index: 100, len: 8 }
        ));
    }

    #[test]
    fn atomic_add_conflict_serializes() {
        let t = TimingParams::default();
        let buf = DeviceBuffer::<f32>::zeros(4);
        // All 32 lanes hit index 0: multiplicity 32.
        let mut conflicted = ctx();
        conflicted.atomic_add_f32(&buf, |_| Some((0, 1.0)));
        assert_eq!(buf.read(0), 32.0);
        assert_eq!(conflicted.stats().atomic_conflicts, 31);

        let buf2 = DeviceBuffer::<f32>::zeros(32);
        let mut clean = ctx();
        clean.atomic_add_f32(&buf2, |lane| Some((lane, 1.0)));
        assert_eq!(clean.stats().atomic_conflicts, 0);
        assert!(
            conflicted.clock() > clean.clock() + 20 * t.atomic_cycles,
            "conflicted={} clean={}",
            conflicted.clock(),
            clean.clock()
        );
    }

    #[test]
    fn store_writes_and_counts_sectors() {
        let buf = DeviceBuffer::<f32>::zeros(32);
        let mut c = ctx();
        c.store_f32(&buf, |lane| Some((lane, lane as f32)));
        assert_eq!(buf.read(5), 5.0);
        assert_eq!(c.stats().write_sectors, 4);
    }

    #[test]
    fn finish_sets_solo_cycles() {
        let buf = DeviceBuffer::<f32>::zeros(32);
        let mut c = ctx();
        c.load_f32(&buf, Some);
        let stats = c.finish();
        assert!(stats.solo_cycles >= TimingParams::default().dram_latency);
    }

    #[test]
    fn inactive_lane_load_is_free_of_traffic() {
        let buf = DeviceBuffer::<f32>::zeros(32);
        let mut c = ctx();
        let v = c.load_f32(&buf, |_| None);
        assert_eq!(v.get(0), 0.0);
        assert_eq!(c.stats().read_sectors, 0);
        assert_eq!(c.stats().loads, 1); // the instruction still issued
    }
}

#[cfg(test)]
mod vec_atomic_tests {
    use super::*;

    fn ctx() -> WarpCtx {
        WarpCtx::new(TimingParams::default(), 0)
    }

    #[test]
    fn vectored_atomic_adds_consecutive_elements() {
        let buf = DeviceBuffer::<f32>::zeros(32 * 4);
        let mut c = ctx();
        c.atomic_add_f32_vec(4, &buf, |l| Some((l * 4, [1.0, 2.0, 3.0, 4.0])));
        let v = buf.to_vec();
        assert_eq!(&v[0..4], &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(&v[124..128], &[1.0, 2.0, 3.0, 4.0]);
        // One vectored atomic = `width` element-atomics counted.
        assert_eq!(c.stats().atomics, 4);
    }

    #[test]
    fn vectored_atomic_traffic_is_combined() {
        // 8 lanes × 16 B consecutive = 128 B = 4 sectors, counted once —
        // vs 4 separate strided atomics which would count 16.
        let buf = DeviceBuffer::<f32>::zeros(256);
        let mut c = ctx();
        c.atomic_add_f32_vec(4, &buf, |l| (l < 8).then(|| (l * 4, [1.0; 4])));
        assert_eq!(c.stats().write_sectors, 4);
    }

    #[test]
    fn vectored_atomic_partial_width() {
        let buf = DeviceBuffer::<f32>::zeros(64);
        let mut c = ctx();
        c.atomic_add_f32_vec(2, &buf, |l| {
            (l == 0).then_some((10, [5.0, 7.0, 99.0, 99.0]))
        });
        assert_eq!(buf.read(10), 5.0);
        assert_eq!(buf.read(11), 7.0);
        assert_eq!(buf.read(12), 0.0); // width 2: trailing lanes ignored
    }

    #[test]
    fn vectored_atomic_all_inactive_is_cheap() {
        let buf = DeviceBuffer::<f32>::zeros(4);
        let mut c = ctx();
        let wrote = c.atomic_add_f32_vec(4, &buf, |_| None);
        assert!(!wrote);
        assert_eq!(c.stats().atomics, 0);
    }

    #[test]
    fn dynamic_width_load_matches_const_width() {
        let buf = DeviceBuffer::from_slice(&(0..128).map(|i| i as f32).collect::<Vec<_>>());
        let mut a = ctx();
        let va = a.load_f32xw(3, &buf, |l| (l < 4).then(|| l * 3));
        let mut b = ctx();
        let vb = b.load_f32xn::<3>(&buf, &mut |l| (l < 4).then(|| l * 3));
        for k in 0..3 {
            for l in 0..4 {
                assert_eq!(va[k].get(l), vb[k].get(l));
            }
        }
        // Width-4 slot of the dynamic variant is zeroed.
        assert_eq!(va[3].get(0), 0.0);
        assert_eq!(a.stats().read_sectors, b.stats().read_sectors);
    }

    #[test]
    #[should_panic(expected = "vector width must be 1..=4")]
    fn dynamic_width_rejects_out_of_range() {
        let buf = DeviceBuffer::<f32>::zeros(4);
        ctx().load_f32xw(5, &buf, |_| None);
    }
}
