//! Structured execution tracing with Chrome-trace export.
//!
//! A [`TraceSession`] records what the simulated device did — kernel
//! launches, CTA placements on SMs, optionally per-warp execution spans —
//! on a single monotonically advancing device timeline. The recorded
//! events export in Chrome trace-event format, loadable in
//! `chrome://tracing` or [Perfetto](https://ui.perfetto.dev): the kernel
//! track (tid 0) shows every launch and host-charged dense op back to
//! back, and one track per SM shows how CTAs were placed by the greedy
//! scheduler.
//!
//! Tracing is strictly opt-in and zero-cost when off: an unattached
//! [`crate::Gpu`] pays one relaxed atomic load per launch, and a session
//! whose config is [`TraceConfig::off`] returns before taking any lock.
//!
//! ## Timeline semantics
//!
//! The simulator executes kernels functionally, not cycle by cycle, so the
//! trace is a *reconstruction*: spans are placed using the same quantities
//! the time model computed. Kernel spans have exactly the reported kernel
//! duration. CTA spans preserve launch order, relative cost, and SM
//! assignment; each SM's CTA sequence is scaled to fit inside the kernel's
//! busy window (CTA solo-cycle sums exceed wall time because resident
//! warps interleave), so spans on one SM are monotone and non-overlapping
//! by construction. Warp spans subdivide their CTA span proportionally to
//! per-warp solo cycles.

use std::sync::Mutex;

use crate::engine::KernelReport;
use crate::jsonio::Json;

/// What a [`TraceSession`] records.
///
/// # Examples
///
/// ```
/// use gnnone_sim::{DeviceBuffer, Gpu, GpuSpec, TraceConfig};
/// use gnnone_sim::{KernelResources, WarpCtx, WarpKernel};
///
/// struct Touch<'a>(&'a DeviceBuffer<f32>);
/// impl WarpKernel for Touch<'_> {
///     fn resources(&self) -> KernelResources {
///         KernelResources { threads_per_cta: 32, regs_per_thread: 16, shared_bytes_per_cta: 0 }
///     }
///     fn grid_warps(&self) -> usize { 4 }
///     fn run_warp(&self, _w: usize, ctx: &mut WarpCtx) {
///         ctx.load_f32(self.0, |lane| Some(lane));
///     }
/// }
///
/// let gpu = Gpu::new(GpuSpec::tiny());
/// let session = gpu.enable_trace(TraceConfig::on());
/// let buf = DeviceBuffer::zeros(64);
/// gpu.launch(&Touch(&buf));
/// let trace = session.to_chrome_trace();
/// let events = trace.get("traceEvents").unwrap().as_arr().unwrap();
/// // Metadata + one kernel span + CTA placement spans.
/// assert!(events.len() > 2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceConfig {
    /// Master switch; `false` makes every record call a no-op.
    pub enabled: bool,
    /// Record one span per CTA on its SM's track.
    pub cta_spans: bool,
    /// Subdivide each recorded CTA span into per-warp spans with a
    /// stall/issue breakdown. Implies collecting per-warp timings during
    /// execution, which costs memory proportional to the grid.
    pub warp_spans: bool,
    /// At most this many CTA spans per launch (`0` = unlimited). Keeps
    /// traces of million-CTA sweeps loadable.
    pub max_ctas_per_launch: usize,
}

impl TraceConfig {
    /// Tracing disabled; every record call is a no-op.
    pub fn off() -> Self {
        TraceConfig {
            enabled: false,
            cta_spans: false,
            warp_spans: false,
            max_ctas_per_launch: 0,
        }
    }

    /// Kernel spans plus CTA placement spans, capped at 4096 CTAs per
    /// launch — the right default for figure binaries.
    pub fn on() -> Self {
        TraceConfig {
            enabled: true,
            cta_spans: true,
            warp_spans: false,
            max_ctas_per_launch: 4096,
        }
    }

    /// Everything, uncapped: kernel, CTA, and per-warp spans. Traces get
    /// large; intended for single-kernel investigations.
    pub fn full() -> Self {
        TraceConfig {
            enabled: true,
            cta_spans: true,
            warp_spans: true,
            max_ctas_per_launch: 0,
        }
    }
}

/// One recorded span on the device timeline.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Span label (kernel name, `cta N`, `warp N.W`, dense-op name).
    pub name: String,
    /// Chrome-trace category: `"kernel"`, `"cta"`, `"warp"`, `"host"`, or
    /// `"marker"` (zero-duration annotations such as epoch boundaries).
    pub cat: &'static str,
    /// Track id: 0 is the kernel/host track, SM `i` is track `i + 1`.
    pub tid: u32,
    /// Start, in microseconds of simulated device time.
    pub ts_us: f64,
    /// Duration in microseconds.
    pub dur_us: f64,
    /// Span arguments shown in the trace viewer's detail pane.
    pub args: Vec<(String, Json)>,
}

/// Per-CTA placement computed by the SM scheduler, in solo-cycle space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CtaPlacement {
    /// SM the CTA ran on.
    pub sm: usize,
    /// The SM's accumulated load when this CTA started (its start offset
    /// within the kernel, before latency-hiding rescaling).
    pub start_cycles: u64,
    /// The CTA's solo cycles (its extent before rescaling).
    pub dur_cycles: u64,
}

/// Per-warp execution detail collected when
/// [`TraceConfig::warp_spans`] is set.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WarpSpan {
    /// Cycles the warp would take running alone.
    pub solo_cycles: u64,
    /// Portion of `solo_cycles` stalled on memory.
    pub mem_stall_cycles: u64,
}

#[derive(Debug, Default)]
struct TraceInner {
    /// Device-timeline position in cycles; each recorded kernel or host
    /// span advances it.
    cursor_cycles: u64,
    events: Vec<TraceEvent>,
    /// Highest SM track id used, for thread-name metadata.
    max_sm: Option<usize>,
}

/// An active trace recording; shared via `Arc` between the [`crate::Gpu`]
/// and whoever exports the result.
#[derive(Debug)]
pub struct TraceSession {
    config: TraceConfig,
    device: String,
    clock_ghz: f64,
    inner: Mutex<TraceInner>,
}

impl TraceSession {
    /// Creates a session for a device with the given clock (used to
    /// convert cycles to trace microseconds).
    pub fn new(config: TraceConfig, device: &str, clock_ghz: f64) -> Self {
        TraceSession {
            config,
            device: device.to_string(),
            clock_ghz: if clock_ghz > 0.0 { clock_ghz } else { 1.0 },
            inner: Mutex::new(TraceInner::default()),
        }
    }

    /// The session's configuration.
    pub fn config(&self) -> TraceConfig {
        self.config
    }

    /// True when the session records anything at all.
    pub fn is_enabled(&self) -> bool {
        self.config.enabled
    }

    fn us(&self, cycles: u64) -> f64 {
        cycles as f64 / (self.clock_ghz * 1e3)
    }

    fn us_f(&self, cycles: f64) -> f64 {
        cycles / (self.clock_ghz * 1e3)
    }

    /// Records one kernel launch: a span on the kernel track, optionally
    /// CTA placement spans on SM tracks and per-warp subdivisions.
    ///
    /// `busy_cycles` is the kernel time minus fixed launch overhead (the
    /// window CTA spans are scaled into); `warp_spans` is indexed like
    /// `placements` and may be empty when warp detail was not collected.
    pub fn record_launch(
        &self,
        report: &KernelReport,
        busy_cycles: u64,
        placements: &[CtaPlacement],
        warp_spans: &[Vec<WarpSpan>],
    ) {
        if !self.config.enabled {
            return;
        }
        let mut inner = self.inner.lock().expect("trace lock");
        let t0 = inner.cursor_cycles;
        inner.events.push(TraceEvent {
            name: report.name.clone(),
            cat: "kernel",
            tid: 0,
            ts_us: self.us(t0),
            dur_us: self.us(report.cycles),
            args: kernel_args(report),
        });

        if self.config.cta_spans && !placements.is_empty() {
            let cap = match self.config.max_ctas_per_launch {
                0 => placements.len(),
                cap => cap.min(placements.len()),
            };
            // Each SM's CTA sequence is scaled independently into the busy
            // window: relative CTA cost and ordering survive, and spans
            // stay monotone and non-overlapping per SM.
            let num_sms = placements.iter().map(|p| p.sm + 1).max().unwrap_or(0);
            let mut sm_total = vec![0u64; num_sms];
            for p in placements {
                sm_total[p.sm] = sm_total[p.sm].max(p.start_cycles + p.dur_cycles);
            }
            let overhead = report.cycles.saturating_sub(busy_cycles);
            let base = t0 + overhead;
            inner.max_sm = inner.max_sm.max(Some(num_sms.saturating_sub(1)));
            for (cta, p) in placements.iter().take(cap).enumerate() {
                let scale = if sm_total[p.sm] > busy_cycles && sm_total[p.sm] > 0 {
                    busy_cycles as f64 / sm_total[p.sm] as f64
                } else {
                    1.0
                };
                let ts = self.us(base) + self.us_f(p.start_cycles as f64 * scale);
                let dur = self.us_f(p.dur_cycles as f64 * scale);
                inner.events.push(TraceEvent {
                    name: format!("cta {cta}"),
                    cat: "cta",
                    tid: (p.sm + 1) as u32,
                    ts_us: ts,
                    dur_us: dur,
                    args: vec![
                        ("solo_cycles".to_string(), Json::U64(p.dur_cycles)),
                        ("sm".to_string(), Json::U64(p.sm as u64)),
                    ],
                });
                if self.config.warp_spans {
                    if let Some(warps) = warp_spans.get(cta) {
                        let total: u64 = warps.iter().map(|w| w.solo_cycles).sum();
                        if total > 0 {
                            let mut prefix = 0u64;
                            for (w, ws) in warps.iter().enumerate() {
                                let w_ts = ts + dur * (prefix as f64 / total as f64);
                                let w_dur = dur * (ws.solo_cycles as f64 / total as f64);
                                prefix += ws.solo_cycles;
                                inner.events.push(TraceEvent {
                                    name: format!("warp {cta}.{w}"),
                                    cat: "warp",
                                    tid: (p.sm + 1) as u32,
                                    ts_us: w_ts,
                                    dur_us: w_dur,
                                    args: vec![
                                        ("solo_cycles".to_string(), Json::U64(ws.solo_cycles)),
                                        (
                                            "mem_stall_cycles".to_string(),
                                            Json::U64(ws.mem_stall_cycles),
                                        ),
                                        (
                                            "issue_cycles".to_string(),
                                            Json::U64(ws.solo_cycles - ws.mem_stall_cycles),
                                        ),
                                    ],
                                });
                            }
                        }
                    }
                }
            }
        }
        inner.cursor_cycles = t0 + report.cycles;
    }

    /// Records a host-charged span (dense ops, optimizer steps, epoch
    /// markers) on the kernel track and advances the timeline by `cycles`.
    pub fn record_host_span(&self, name: &str, cycles: u64, args: Vec<(String, Json)>) {
        if !self.config.enabled {
            return;
        }
        let mut inner = self.inner.lock().expect("trace lock");
        let t0 = inner.cursor_cycles;
        inner.events.push(TraceEvent {
            name: name.to_string(),
            cat: "host",
            tid: 0,
            ts_us: self.us(t0),
            dur_us: self.us(cycles),
            args,
        });
        inner.cursor_cycles = t0 + cycles;
    }

    /// Records an instantaneous marker (zero-duration span) on the kernel
    /// track, e.g. an epoch boundary. Does not advance the timeline.
    pub fn record_marker(&self, name: &str) {
        if !self.config.enabled {
            return;
        }
        let mut inner = self.inner.lock().expect("trace lock");
        let t0 = inner.cursor_cycles;
        inner.events.push(TraceEvent {
            name: name.to_string(),
            cat: "marker",
            tid: 0,
            ts_us: self.us(t0),
            dur_us: 0.0,
            args: Vec::new(),
        });
    }

    /// Number of events recorded so far.
    pub fn event_count(&self) -> usize {
        self.inner.lock().expect("trace lock").events.len()
    }

    /// Current device-timeline position in cycles.
    pub fn cursor_cycles(&self) -> u64 {
        self.inner.lock().expect("trace lock").cursor_cycles
    }

    /// A copy of the recorded events, in recording order.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.inner.lock().expect("trace lock").events.clone()
    }

    /// Renders the session as a Chrome trace-event document
    /// (`{"traceEvents": [...]}`), loadable in `chrome://tracing` and
    /// Perfetto.
    pub fn to_chrome_trace(&self) -> Json {
        let inner = self.inner.lock().expect("trace lock");
        let mut events = Vec::with_capacity(inner.events.len() + 8);
        events.push(metadata_event(
            "process_name",
            0,
            &format!("GNNOne simulator · {}", self.device),
        ));
        events.push(thread_name_event(0, "kernels + host ops"));
        if let Some(max_sm) = inner.max_sm {
            for sm in 0..=max_sm {
                events.push(thread_name_event((sm + 1) as u32, &format!("SM {sm}")));
            }
        }
        for e in &inner.events {
            events.push(Json::obj(vec![
                ("name", Json::Str(e.name.clone())),
                ("cat", Json::Str(e.cat.to_string())),
                ("ph", Json::Str("X".to_string())),
                ("pid", Json::U64(0)),
                ("tid", Json::U64(e.tid as u64)),
                ("ts", Json::F64(e.ts_us)),
                ("dur", Json::F64(e.dur_us)),
                ("args", Json::Obj(e.args.clone())),
            ]));
        }
        Json::obj(vec![
            ("traceEvents", Json::Arr(events)),
            ("displayTimeUnit", Json::Str("ms".to_string())),
            (
                "otherData",
                Json::obj(vec![
                    ("device", Json::Str(self.device.clone())),
                    ("clock_ghz", Json::F64(self.clock_ghz)),
                ]),
            ),
        ])
    }

    /// Writes the Chrome trace to `path` (compact JSON, parent directories
    /// created).
    pub fn write_chrome_trace(&self, path: &str) -> std::io::Result<()> {
        let p = std::path::Path::new(path);
        if let Some(dir) = p.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        let mut text = self.to_chrome_trace().to_string_compact();
        text.push('\n');
        std::fs::write(p, text)
    }
}

fn kernel_args(report: &KernelReport) -> Vec<(String, Json)> {
    let s = &report.stats;
    vec![
        ("cycles".to_string(), Json::U64(report.cycles)),
        ("ctas".to_string(), Json::U64(report.ctas)),
        ("warps".to_string(), Json::U64(s.warps)),
        (
            "warps_per_sm".to_string(),
            Json::U64(report.warps_per_sm as u64),
        ),
        ("occupancy".to_string(), Json::F64(report.occupancy)),
        (
            "bound".to_string(),
            Json::Str(format!("{:?}", report.bound)),
        ),
        ("read_bytes".to_string(), Json::U64(s.read_bytes)),
        (
            "read_useful_bytes".to_string(),
            Json::U64(s.read_useful_bytes),
        ),
        ("write_bytes".to_string(), Json::U64(s.write_bytes)),
        (
            "coalescing_efficiency".to_string(),
            Json::F64(s.coalescing_efficiency()),
        ),
        (
            "mem_stall_fraction".to_string(),
            Json::F64(s.mem_stall_fraction()),
        ),
        ("atomics".to_string(), Json::U64(s.atomics)),
        (
            "atomic_conflicts".to_string(),
            Json::U64(s.atomic_conflicts),
        ),
        ("barriers".to_string(), Json::U64(s.barriers)),
        ("shfl_rounds".to_string(), Json::U64(s.shfl_rounds)),
    ]
}

fn metadata_event(name: &str, pid: u32, value: &str) -> Json {
    Json::obj(vec![
        ("name", Json::Str(name.to_string())),
        ("ph", Json::Str("M".to_string())),
        ("pid", Json::U64(pid as u64)),
        (
            "args",
            Json::obj(vec![("name", Json::Str(value.to_string()))]),
        ),
    ])
}

fn thread_name_event(tid: u32, value: &str) -> Json {
    Json::obj(vec![
        ("name", Json::Str("thread_name".to_string())),
        ("ph", Json::Str("M".to_string())),
        ("pid", Json::U64(0)),
        ("tid", Json::U64(tid as u64)),
        (
            "args",
            Json::obj(vec![("name", Json::Str(value.to_string()))]),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use super::*;
    use crate::buffer::DeviceBuffer;
    use crate::engine::Gpu;
    use crate::kernel::{KernelResources, WarpKernel};
    use crate::spec::GpuSpec;
    use crate::warp::WarpCtx;

    /// A deterministic kernel with skewed per-warp work (mixed coalesced
    /// and strided loads) so CTA placements are non-trivial.
    struct Skewed<'a> {
        buf: &'a DeviceBuffer<f32>,
        warps: usize,
    }

    impl WarpKernel for Skewed<'_> {
        fn resources(&self) -> KernelResources {
            KernelResources {
                threads_per_cta: 64,
                regs_per_thread: 32,
                shared_bytes_per_cta: 0,
            }
        }
        fn grid_warps(&self) -> usize {
            self.warps
        }
        fn run_warp(&self, warp_id: usize, ctx: &mut WarpCtx) {
            let n = self.buf.len();
            let iters = 1 + warp_id % 5;
            for i in 0..iters {
                let stride = 1 + (warp_id + i) % 3;
                ctx.load_f32(self.buf, |lane| Some((warp_id + lane * stride + i) % n));
                if i % 2 == 1 {
                    ctx.barrier();
                }
            }
        }
        fn name(&self) -> &str {
            "skewed"
        }
    }

    fn run_traced(config: TraceConfig) -> (Arc<TraceSession>, crate::engine::KernelReport) {
        let gpu = Gpu::new(GpuSpec::tiny());
        let session = gpu.enable_trace(config);
        let buf = DeviceBuffer::<f32>::zeros(4096);
        let report = gpu.launch(&Skewed {
            buf: &buf,
            warps: 64,
        });
        (session, report)
    }

    #[test]
    fn off_records_nothing_and_changes_no_output() {
        let buf = DeviceBuffer::<f32>::zeros(4096);
        let plain = Gpu::new(GpuSpec::tiny()).launch(&Skewed {
            buf: &buf,
            warps: 64,
        });
        let gpu = Gpu::new(GpuSpec::tiny());
        let session = gpu.enable_trace(TraceConfig::off());
        let traced = gpu.launch(&Skewed {
            buf: &buf,
            warps: 64,
        });
        assert_eq!(session.event_count(), 0);
        assert_eq!(session.cursor_cycles(), 0);
        assert_eq!(plain.cycles, traced.cycles);
        assert_eq!(plain.stats, traced.stats);
        assert_eq!(plain.bound, traced.bound);
    }

    #[test]
    fn kernel_and_cta_spans_recorded() {
        let (session, report) = run_traced(TraceConfig::on());
        let events = session.events();
        let kernels: Vec<_> = events.iter().filter(|e| e.cat == "kernel").collect();
        assert_eq!(kernels.len(), 1);
        assert_eq!(kernels[0].name, "skewed");
        assert!(kernels[0].dur_us > 0.0);
        let ctas = events.iter().filter(|e| e.cat == "cta").count();
        assert_eq!(ctas as u64, report.ctas);
        assert_eq!(session.cursor_cycles(), report.cycles);
    }

    #[test]
    fn cta_spans_monotone_and_non_overlapping_per_sm() {
        let (session, report) = run_traced(TraceConfig::full());
        let events = session.events();
        let kernel = events.iter().find(|e| e.cat == "kernel").unwrap();
        let mut per_sm: std::collections::BTreeMap<u32, Vec<&TraceEvent>> = Default::default();
        for e in events.iter().filter(|e| e.cat == "cta") {
            per_sm.entry(e.tid).or_default().push(e);
        }
        assert!(!per_sm.is_empty());
        for (_, spans) in per_sm {
            for pair in spans.windows(2) {
                let end = pair[0].ts_us + pair[0].dur_us;
                assert!(
                    end <= pair[1].ts_us + 1e-9,
                    "overlap: [{}, {}] then [{}, {}]",
                    pair[0].ts_us,
                    end,
                    pair[1].ts_us,
                    pair[1].ts_us + pair[1].dur_us,
                );
            }
            // Every span stays inside the kernel window.
            for e in &spans {
                assert!(e.ts_us + 1e-9 >= kernel.ts_us);
                assert!(e.ts_us + e.dur_us <= kernel.ts_us + kernel.dur_us + 1e-9);
            }
        }
        // Warp spans subdivide their CTA spans.
        let warps = events.iter().filter(|e| e.cat == "warp").count();
        assert!(warps as u64 >= report.ctas);
    }

    #[test]
    fn chrome_trace_is_well_formed_json() {
        let (session, _) = run_traced(TraceConfig::on());
        session.record_host_span(
            "dense: matmul",
            1000,
            vec![("flops".to_string(), Json::U64(123))],
        );
        session.record_marker("epoch 0");
        let text = session.to_chrome_trace().to_string_compact();
        let parsed = crate::jsonio::parse(&text).expect("chrome trace must parse");
        let events = parsed.get("traceEvents").unwrap().as_arr().unwrap();
        // Every event has the required chrome-trace fields.
        for e in events {
            assert!(e.get("ph").is_some());
            assert!(e.get("pid").is_some());
            let ph = e.get("ph").unwrap().as_str().unwrap();
            if ph == "X" {
                assert!(e.get("ts").is_some() && e.get("dur").is_some());
                assert!(e.get("name").is_some() && e.get("cat").is_some());
            }
        }
        assert!(events
            .iter()
            .any(|e| { e.get("name").and_then(Json::as_str) == Some("thread_name") }));
        assert!(events
            .iter()
            .any(|e| { e.get("cat").and_then(Json::as_str) == Some("host") }));
    }

    #[test]
    fn traces_are_byte_identical_across_runs() {
        let (a, _) = run_traced(TraceConfig::full());
        let (b, _) = run_traced(TraceConfig::full());
        assert_eq!(
            a.to_chrome_trace().to_string_compact(),
            b.to_chrome_trace().to_string_compact()
        );
    }

    #[test]
    fn cta_cap_is_respected() {
        let config = TraceConfig {
            enabled: true,
            cta_spans: true,
            warp_spans: false,
            max_ctas_per_launch: 3,
        };
        let (session, report) = run_traced(config);
        assert!(report.ctas > 3);
        let ctas = session.events().iter().filter(|e| e.cat == "cta").count();
        assert_eq!(ctas, 3);
    }

    #[test]
    fn timeline_accumulates_across_launches() {
        let gpu = Gpu::new(GpuSpec::tiny());
        let session = gpu.enable_trace(TraceConfig::on());
        let buf = DeviceBuffer::<f32>::zeros(4096);
        let r1 = gpu.launch(&Skewed {
            buf: &buf,
            warps: 8,
        });
        let r2 = gpu.launch(&Skewed {
            buf: &buf,
            warps: 16,
        });
        assert_eq!(session.cursor_cycles(), r1.cycles + r2.cycles);
        let events = session.events();
        let kernels: Vec<_> = events.iter().filter(|e| e.cat == "kernel").collect();
        assert_eq!(kernels.len(), 2);
        assert!(kernels[1].ts_us >= kernels[0].ts_us + kernels[0].dur_us - 1e-9);
    }

    #[test]
    fn attach_is_set_once_and_shared_by_clones() {
        let gpu = Gpu::new(GpuSpec::tiny());
        let first = gpu.enable_trace(TraceConfig::on());
        let second = gpu.enable_trace(TraceConfig::off());
        assert!(Arc::ptr_eq(&first, &second));
        assert!(!gpu.attach_trace(Arc::new(TraceSession::new(TraceConfig::on(), "other", 1.0))));
        let clone = gpu.clone();
        let buf = DeviceBuffer::<f32>::zeros(4096);
        clone.launch(&Skewed {
            buf: &buf,
            warps: 8,
        });
        assert!(first.event_count() > 0, "clone records into shared session");
    }
}
