//! Per-lane value containers for warp-wide (SIMT) operations.

/// Number of threads (lanes) in a warp, matching CUDA.
pub const WARP_SIZE: usize = 32;

/// A warp-wide register: one value per lane.
///
/// Lanes that were inactive for the producing instruction hold the type's
/// default value; consumers that respect their own active masks never observe
/// them. `LaneArr` is `Copy`-cheap (128 bytes for `f32`) and allocation-free,
/// which matters because kernels create them in the innermost loops of the
/// functional simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LaneArr<T>(pub [T; WARP_SIZE]);

impl<T: Copy + Default> Default for LaneArr<T> {
    fn default() -> Self {
        Self([T::default(); WARP_SIZE])
    }
}

impl<T: Copy + Default> LaneArr<T> {
    /// Builds a lane array by evaluating `f` for every lane.
    pub fn from_fn(f: impl FnMut(usize) -> T) -> Self {
        Self(std::array::from_fn(f))
    }

    /// Value held by `lane`.
    #[inline]
    pub fn get(&self, lane: usize) -> T {
        self.0[lane]
    }

    /// Overwrites the value held by `lane`.
    #[inline]
    pub fn set(&mut self, lane: usize, value: T) {
        self.0[lane] = value;
    }

    /// Applies `f` lane-wise, producing a new lane array.
    pub fn map<U: Copy + Default>(&self, mut f: impl FnMut(T) -> U) -> LaneArr<U> {
        LaneArr(std::array::from_fn(|lane| f(self.0[lane])))
    }

    /// Combines two lane arrays lane-wise.
    pub fn zip_with<U: Copy + Default, V: Copy + Default>(
        &self,
        other: &LaneArr<U>,
        mut f: impl FnMut(T, U) -> V,
    ) -> LaneArr<V> {
        LaneArr(std::array::from_fn(|lane| f(self.0[lane], other.0[lane])))
    }

    /// Iterator over `(lane, value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (usize, T)> + '_ {
        self.0.iter().copied().enumerate()
    }
}

impl LaneArr<f32> {
    /// Lane-wise sum across the warp — a *host-side* helper for tests and
    /// assertions. Kernels must use `WarpCtx::shfl_down` rounds instead so
    /// the communication is costed.
    pub fn host_sum(&self) -> f32 {
        self.0.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_fn_and_get() {
        let a = LaneArr::from_fn(|lane| lane as f32);
        assert_eq!(a.get(0), 0.0);
        assert_eq!(a.get(31), 31.0);
    }

    #[test]
    fn map_and_zip() {
        let a = LaneArr::from_fn(|lane| lane as f32);
        let b = a.map(|x| x * 2.0);
        assert_eq!(b.get(5), 10.0);
        let c = a.zip_with(&b, |x, y| x + y);
        assert_eq!(c.get(5), 15.0);
    }

    #[test]
    fn host_sum_matches_formula() {
        let a = LaneArr::from_fn(|lane| lane as f32);
        assert_eq!(a.host_sum(), (31 * 32 / 2) as f32);
    }

    #[test]
    fn default_is_zeroed() {
        let a: LaneArr<u32> = LaneArr::default();
        assert!(a.iter().all(|(_, v)| v == 0));
    }
}
