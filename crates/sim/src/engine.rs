//! The launch engine: executes a [`WarpKernel`] functionally, schedules its
//! CTAs across SMs, and converts per-warp scoreboard times into a kernel
//! time under the latency-hiding model.
//!
//! ## SM time model
//!
//! After all warps have executed (in parallel on the host via rayon — warps
//! are independent), CTAs are assigned to SMs greedily in launch order, each
//! to the currently least-loaded SM, approximating the hardware's dynamic
//! CTA scheduler. Each SM's busy time is the maximum of four lower bounds:
//!
//! * **latency-bound**: Σ warp solo cycles ÷ resident warps — with `W`
//!   resident warps the SM interleaves their stalls; low occupancy
//!   (register/shared pressure) shrinks `W` and exposes latency, the
//!   mechanism behind Yang et al.'s slowdown (§3.2 of the paper);
//! * **issue-bound**: Σ non-stall cycles ÷ warp schedulers;
//! * **bandwidth-bound**: DRAM traffic ÷ per-SM bandwidth share — rewards
//!   coalescing and data reuse directly;
//! * **straggler-bound**: the longest single warp, which no concurrency can
//!   compress — this is what workload imbalance in vertex-parallel kernels
//!   looks like on power-law graphs.
//!
//! Kernel time = max over SMs + a fixed launch overhead.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use crate::chaos::{permutation, ChaosConfig, ChaosEngine};
use crate::error::{AbortSignal, KernelAbort};
use crate::jsonio::Json;
use crate::kernel::{KernelResources, WarpKernel};
use crate::metrics::MetricsRegistry;
use crate::occupancy::{Limiter, Occupancy};
use crate::sanitize::{SanitizeConfig, Sanitizer, WarpShadow};
use crate::spec::GpuSpec;
use crate::stats::KernelStats;
use crate::trace::{CtaPlacement, TraceConfig, TraceSession, WarpSpan};
use crate::warp::WarpCtx;

/// Why a launch failed. Mirrors the real-world failures the paper reports
/// (Sputnik exceeding CUDA's grid limit on |V| > ~2M, §5.1).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum LaunchError {
    /// A single CTA exceeds SM resources.
    Unlaunchable {
        /// Human-readable diagnosis.
        reason: String,
    },
    /// The grid requests more CTAs than the device supports.
    GridTooLarge {
        /// CTAs requested.
        requested: u64,
        /// Device maximum.
        max: u64,
    },
    /// Device memory exhausted (used by the memory model in `gnnone-gnn`).
    OutOfMemory {
        /// Bytes requested.
        requested: u64,
        /// Bytes available.
        available: u64,
    },
    /// The kernel was stopped while running: the watchdog tripped or an
    /// unsanitized buffer access went out of bounds. See [`KernelAbort`].
    Aborted(KernelAbort),
}

impl std::fmt::Display for LaunchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LaunchError::Unlaunchable { reason } => write!(f, "kernel unlaunchable: {reason}"),
            LaunchError::GridTooLarge { requested, max } => {
                write!(f, "grid too large: {requested} CTAs > device max {max}")
            }
            LaunchError::OutOfMemory {
                requested,
                available,
            } => write!(f, "out of memory: need {requested} B, have {available} B"),
            LaunchError::Aborted(a) => write!(f, "{a}"),
        }
    }
}

impl std::error::Error for LaunchError {}

/// Per-launch execution policy: watchdog arming and instruction budget.
///
/// The watchdog bounds each warp's warp-wide instruction count. When no
/// explicit budget is given, one is derived from the launch's geometry: a
/// grid's total legitimate work scales with its warp count (every shipped
/// kernel's fair per-warp share is bounded by a constant), and workload
/// skew can route all of that work through a single warp (a mega-row on a
/// row-per-warp kernel), so each warp is granted the *whole grid's*
/// allowance — `grid_warps ×` [`LaunchSpec::OPS_PER_GRID_WARP`] — clamped
/// to [`LaunchSpec::MIN_DERIVED_OPS`]..=[`LaunchSpec::MAX_DERIVED_OPS`].
/// A kernel that exceeds the budget is not hung forever: the launch
/// returns [`LaunchError::Aborted`] with a structured [`KernelAbort`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LaunchSpec {
    /// Arms the watchdog (default `true`).
    pub watchdog: bool,
    /// Explicit per-warp instruction budget; `None` derives one from the
    /// grid geometry.
    pub ops_per_warp: Option<u64>,
}

impl Default for LaunchSpec {
    fn default() -> Self {
        Self {
            watchdog: true,
            ops_per_warp: None,
        }
    }
}

impl LaunchSpec {
    /// Floor of the derived per-warp budget (small grids still get room
    /// for skewed work).
    pub const MIN_DERIVED_OPS: u64 = 1 << 22;
    /// Ceiling of the derived per-warp budget.
    pub const MAX_DERIVED_OPS: u64 = 1 << 28;
    /// Per-grid-warp allowance feeding the derived budget.
    pub const OPS_PER_GRID_WARP: u64 = 1 << 16;

    /// A spec with an explicit per-warp budget.
    pub fn with_budget(ops_per_warp: u64) -> Self {
        Self {
            watchdog: true,
            ops_per_warp: Some(ops_per_warp),
        }
    }

    /// A spec with the watchdog disarmed.
    pub fn no_watchdog() -> Self {
        Self {
            watchdog: false,
            ops_per_warp: None,
        }
    }

    /// The per-warp budget in force for a grid of `grid_warps` warps
    /// (`u64::MAX` when the watchdog is disarmed).
    pub fn budget(&self, grid_warps: usize) -> u64 {
        if !self.watchdog {
            return u64::MAX;
        }
        self.ops_per_warp.unwrap_or_else(|| {
            (grid_warps as u64)
                .saturating_mul(Self::OPS_PER_GRID_WARP)
                .clamp(Self::MIN_DERIVED_OPS, Self::MAX_DERIVED_OPS)
        })
    }
}

/// Which lower bound dominated the critical SM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Bound {
    /// Exposed memory latency (occupancy-limited).
    Latency,
    /// Instruction issue throughput.
    Issue,
    /// DRAM bandwidth.
    Bandwidth,
    /// A single long-running warp (workload imbalance).
    Straggler,
}

impl Bound {
    /// Stable lowercase name used in JSON reports.
    pub fn as_str(self) -> &'static str {
        match self {
            Bound::Latency => "latency",
            Bound::Issue => "issue",
            Bound::Bandwidth => "bandwidth",
            Bound::Straggler => "straggler",
        }
    }
}

/// Result of a simulated kernel launch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelReport {
    /// Kernel name.
    pub name: String,
    /// Total kernel time in cycles (including launch overhead).
    pub cycles: u64,
    /// Kernel time in milliseconds at the spec's clock.
    pub time_ms: f64,
    /// Number of CTAs launched.
    pub ctas: u64,
    /// Resident warps per SM achieved.
    pub warps_per_sm: usize,
    /// Fractional occupancy.
    pub occupancy: f64,
    /// The dominating bound on the critical SM.
    pub bound: Bound,
    /// Aggregated execution statistics.
    pub stats: KernelStats,
}

impl KernelReport {
    /// Estimated fraction of kernel time attributable to data load
    /// (memory stalls + bandwidth share of issue) — the paper's Fig. 11
    /// breakdown is derived from this plus a load-only kernel variant.
    pub fn load_time_fraction(&self) -> f64 {
        self.stats.mem_stall_fraction()
    }

    /// Serializes through the dependency-free [`crate::jsonio`] path (the
    /// serde derive remains for callers that have `serde_json`).
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("name", Json::Str(self.name.clone())),
            ("cycles", Json::U64(self.cycles)),
            ("time_ms", Json::F64(self.time_ms)),
            ("ctas", Json::U64(self.ctas)),
            ("warps_per_sm", Json::U64(self.warps_per_sm as u64)),
            ("occupancy", Json::F64(self.occupancy)),
            ("bound", Json::Str(self.bound.as_str().into())),
            ("stats", self.stats.to_json()),
        ])
    }
}

/// Per-CTA cost summary used for SM scheduling.
#[derive(Debug, Clone, Copy, Default)]
struct CtaCost {
    solo_cycles: u64,
    work_cycles: u64,
    traffic_bytes: u64,
    max_warp_cycles: u64,
}

/// Per-SM accumulated load.
#[derive(Debug, Clone, Copy, Default)]
struct SmLoad {
    solo_cycles: u64,
    work_cycles: u64,
    traffic_bytes: u64,
    max_warp_cycles: u64,
}

/// The simulated GPU: owns a spec, launches kernels.
///
/// Observability attaches per-GPU: [`Gpu::enable_trace`] /
/// [`Gpu::enable_metrics`] install a [`TraceSession`] /
/// [`MetricsRegistry`] that every subsequent launch records into. Both
/// slots are set-once (`&self`, no locking on the launch path) and shared
/// by clones, so code holding an `Rc<Gpu>` or a clone observes the same
/// session. An unattached GPU pays one atomic load per launch.
#[derive(Debug, Clone)]
pub struct Gpu {
    spec: GpuSpec,
    trace: OnceLock<Arc<TraceSession>>,
    metrics: OnceLock<Arc<MetricsRegistry>>,
    sanitize: OnceLock<Arc<Sanitizer>>,
    chaos: OnceLock<Arc<ChaosEngine>>,
    /// Watermark of warp-wide instructions charged by any single warp of
    /// the most recent launch — the dynamic ground truth the static
    /// verifier's symbolic ops bounds are differentially tested against.
    /// Shared by clones (an `Arc`, like the attachments) and overwritten
    /// at the start of every launch; never serialized into reports.
    max_warp_ops: Arc<AtomicU64>,
}

impl Gpu {
    /// Creates a GPU from a hardware spec.
    pub fn new(spec: GpuSpec) -> Self {
        Self {
            spec,
            trace: OnceLock::new(),
            metrics: OnceLock::new(),
            sanitize: OnceLock::new(),
            chaos: OnceLock::new(),
            max_warp_ops: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Warp-wide instruction watermark of the most recent launch on this
    /// GPU (or any clone): the maximum watchdog counter any warp reached.
    /// Zero before the first launch.
    pub fn last_max_warp_ops(&self) -> u64 {
        self.max_warp_ops.load(Ordering::Relaxed)
    }

    /// The hardware spec.
    pub fn spec(&self) -> &GpuSpec {
        &self.spec
    }

    /// Installs a fresh [`TraceSession`] with `config` and returns it.
    /// If a session is already attached, that one is returned instead
    /// (the slot is set-once).
    pub fn enable_trace(&self, config: TraceConfig) -> Arc<TraceSession> {
        self.trace
            .get_or_init(|| {
                Arc::new(TraceSession::new(
                    config,
                    &self.spec.name,
                    self.spec.clock_ghz,
                ))
            })
            .clone()
    }

    /// Attaches an existing session (e.g. one shared with another GPU so
    /// both record onto one timeline). Returns `false` if a session was
    /// already attached (the existing one stays).
    pub fn attach_trace(&self, session: Arc<TraceSession>) -> bool {
        self.trace.set(session).is_ok()
    }

    /// The attached trace session, if any.
    pub fn trace(&self) -> Option<&Arc<TraceSession>> {
        self.trace.get()
    }

    /// Installs a fresh [`MetricsRegistry`] and returns it; returns the
    /// existing one if already attached.
    pub fn enable_metrics(&self) -> Arc<MetricsRegistry> {
        self.metrics
            .get_or_init(|| {
                let registry = MetricsRegistry::new();
                registry.set_device(&self.spec.name, self.spec.clock_ghz);
                Arc::new(registry)
            })
            .clone()
    }

    /// Attaches an existing registry. Returns `false` if one was already
    /// attached (the existing one stays).
    pub fn attach_metrics(&self, registry: Arc<MetricsRegistry>) -> bool {
        registry.set_device(&self.spec.name, self.spec.clock_ghz);
        self.metrics.set(registry).is_ok()
    }

    /// The attached metrics registry, if any.
    pub fn metrics(&self) -> Option<&Arc<MetricsRegistry>> {
        self.metrics.get()
    }

    /// Installs a fresh [`Sanitizer`] with `config` and returns it; returns
    /// the existing one if already attached (the slot is set-once). Every
    /// subsequent launch on this GPU is audited. The shadow checks never
    /// touch the timing model, so reports from clean kernels are identical
    /// with and without a sanitizer attached.
    pub fn enable_sanitizer(&self, config: SanitizeConfig) -> Arc<Sanitizer> {
        self.sanitize
            .get_or_init(|| Arc::new(Sanitizer::new(config)))
            .clone()
    }

    /// Attaches an existing sanitizer (e.g. one shared across several GPUs
    /// so all launches accumulate into one report). Returns `false` if one
    /// was already attached (the existing one stays).
    pub fn attach_sanitizer(&self, sanitizer: Arc<Sanitizer>) -> bool {
        self.sanitize.set(sanitizer).is_ok()
    }

    /// The attached sanitizer, if any.
    pub fn sanitizer(&self) -> Option<&Arc<Sanitizer>> {
        self.sanitize.get()
    }

    /// Installs a fresh [`ChaosEngine`] with `config` and returns it;
    /// returns the existing one if already attached (the slot is set-once,
    /// like the other attachments). Every subsequent launch on this GPU is
    /// subject to the configured fault and/or schedule permutation. With no
    /// engine attached a launch pays a single atomic load.
    pub fn enable_chaos(&self, config: ChaosConfig) -> Arc<ChaosEngine> {
        self.chaos
            .get_or_init(|| Arc::new(ChaosEngine::new(config)))
            .clone()
    }

    /// Attaches an existing chaos engine. Returns `false` if one was
    /// already attached (the existing one stays).
    pub fn attach_chaos(&self, engine: Arc<ChaosEngine>) -> bool {
        self.chaos.set(engine).is_ok()
    }

    /// The attached chaos engine, if any.
    pub fn chaos(&self) -> Option<&Arc<ChaosEngine>> {
        self.chaos.get()
    }

    /// Launches `kernel`, panicking on configuration errors. Use
    /// [`Gpu::try_launch`] when failure is an expected outcome (baseline
    /// pathologies).
    pub fn launch(&self, kernel: &dyn WarpKernel) -> KernelReport {
        self.try_launch(kernel).expect("kernel launch failed")
    }

    /// Launches `kernel`, returning configuration failures as errors.
    /// Runs under the default [`LaunchSpec`] (watchdog armed with a
    /// geometry-derived budget).
    pub fn try_launch(&self, kernel: &dyn WarpKernel) -> Result<KernelReport, LaunchError> {
        self.try_launch_with(kernel, &LaunchSpec::default())
    }

    /// Launches `kernel` under an explicit [`LaunchSpec`]. Preflight
    /// failures (resources, grid, memory) and mid-run aborts (watchdog,
    /// unsanitized out-of-bounds) both come back as [`LaunchError`]s;
    /// panics that are not structured aborts propagate unchanged.
    pub fn try_launch_with(
        &self,
        kernel: &dyn WarpKernel,
        launch: &LaunchSpec,
    ) -> Result<KernelReport, LaunchError> {
        let res = kernel.resources();
        self.validate(&res)?;
        let occ = Occupancy::compute(&self.spec, &res);
        if occ.limiter == Limiter::Unlaunchable {
            return Err(LaunchError::Unlaunchable {
                reason: format!(
                    "CTA of {} threads / {} regs / {} shared bytes exceeds one SM",
                    res.threads_per_cta, res.regs_per_thread, res.shared_bytes_per_cta
                ),
            });
        }
        let grid_warps = kernel.grid_warps();
        let warps_per_cta = res.warps_per_cta().max(1);
        let num_ctas = grid_warps.div_ceil(warps_per_cta).max(1);
        if num_ctas as u64 > self.spec.max_grid_ctas {
            return Err(LaunchError::GridTooLarge {
                requested: num_ctas as u64,
                max: self.spec.max_grid_ctas,
            });
        }

        // Chaos gate — one atomic load when absent, like trace/sanitize.
        let chaos = self.chaos.get();
        if let Some(ch) = chaos {
            // Transient launch failure: the launch is declined at preflight
            // (after validation, so retrying is the correct response) while
            // the engine still has an armed failure.
            if ch.take_transient_failure() {
                return Err(LaunchError::Unlaunchable {
                    reason: "transient launch failure (chaos-injected)".to_string(),
                });
            }
        }
        let fault_target = chaos.and_then(|ch| ch.fault_target(grid_warps));

        let timing = self.spec.timing;
        let shared_per_warp = res.shared_bytes_per_warp();

        // Tracing gates, resolved once per launch. When no session is
        // attached this is a single atomic load and all flags are false.
        let trace = self.trace.get().filter(|t| t.is_enabled());
        let want_ctas = trace.is_some_and(|t| t.config().cta_spans);
        let want_warps = trace.is_some_and(|t| t.config().warp_spans);
        // Sanitizer gate — same pattern, one atomic load when absent.
        let san = self.sanitize.get();
        let budget = launch.budget(grid_warps);
        // Reset the per-launch ops watermark; warps race to raise it below.
        self.max_warp_ops.store(0, Ordering::Relaxed);
        let max_warp_ops = &self.max_warp_ops;

        // One warp's execution, shared by the parallel path and the
        // schedule-chaos path so both produce identical per-warp results.
        // Only the single fault-target warp gets a chaos hook attached;
        // every other warp runs exactly as with no chaos engine.
        let exec_warp = |warp_id: usize| -> (crate::stats::WarpStats, Option<WarpShadow>) {
            let mut ctx = WarpCtx::new(timing, shared_per_warp);
            ctx.set_watchdog(warp_id, budget);
            if let Some(s) = san {
                ctx.attach_shadow(Box::new(WarpShadow::new(
                    warp_id,
                    s.config(),
                    shared_per_warp / 4,
                )));
            }
            if fault_target == Some(warp_id) {
                let ch = chaos.expect("fault target implies chaos engine");
                ctx.attach_chaos(Box::new(ch.warp_fault()));
                // ECC analogue: a bit flip that fires under an attached
                // sanitizer is reported straight to it at corruption time
                // (not via the shadow), so the finding survives a kernel
                // that traps on the corrupted value.
                if let Some(s) = san {
                    ctx.attach_ecc_sink(Arc::clone(s), kernel.name());
                }
            }
            kernel.run_warp(warp_id, &mut ctx);
            max_warp_ops.fetch_max(ctx.ops(), Ordering::Relaxed);
            let ws = ctx.finish();
            if let Some(hook) = ctx.take_chaos() {
                if hook.fired() {
                    chaos.expect("hook implies chaos engine").note_injection();
                }
            }
            (ws, ctx.take_shadow().map(|sh| *sh))
        };

        // Folds one CTA's per-warp results — given in *canonical* warp
        // order — into the cost/trace/stats/shadow summary. Shared by both
        // execution paths so their outputs are bit-identical.
        let assemble_cta = |results: Vec<(crate::stats::WarpStats, Option<WarpShadow>)>| {
            let mut cost = CtaCost::default();
            let mut stats = KernelStats::default();
            let mut warps = Vec::new();
            let mut shadows = Vec::new();
            for (ws, shadow) in results {
                if let Some(sh) = shadow {
                    shadows.push(sh);
                }
                cost.solo_cycles += ws.solo_cycles;
                cost.work_cycles += ws.solo_cycles - ws.mem_stall_cycles;
                cost.traffic_bytes +=
                    (ws.read_sectors + ws.write_sectors) * crate::coalesce::SECTOR_BYTES;
                cost.max_warp_cycles = cost.max_warp_cycles.max(ws.solo_cycles);
                if want_warps {
                    warps.push(WarpSpan {
                        solo_cycles: ws.solo_cycles,
                        mem_stall_cycles: ws.mem_stall_cycles,
                    });
                }
                stats.absorb_warp(&ws);
            }
            (cost, warps, stats, shadows)
        };
        let cta_warp_ids = |cta: usize| {
            (0..warps_per_cta)
                .map(move |w| cta * warps_per_cta + w)
                .filter(move |&id| id < grid_warps)
        };

        // Execute every CTA. Normally warps within a CTA run back to back
        // and CTAs in parallel on the host (they are independent); the
        // fold/reduce combines in encounter order (rayon's indexed-reduce
        // guarantee), so CTA cost order — and therefore any trace built
        // from it, and the warp order of sanitizer shadows — is
        // deterministic. Under schedule chaos the same warps execute
        // sequentially in a seeded permutation of CTA order (and of warp
        // order within each CTA) — modelling an adversarial CTA→SM
        // placement and warp interleave — and the results are restored to
        // canonical order before aggregation, so a deterministic kernel
        // must produce bit-identical output and reports across seeds.
        //
        // The whole execution runs inside `catch_unwind`: a warp that trips
        // the watchdog or an unsanitized bounds check unwinds with an
        // [`AbortSignal`] (rayon propagates worker panics to the caller),
        // which is converted into `LaunchError::Aborted` below. Any other
        // panic payload resumes unchanged.
        let schedule_seed = chaos.and_then(|ch| ch.schedule_seed());
        let run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            if let Some(seed) = schedule_seed {
                let mut per_cta: Vec<Option<_>> = (0..num_ctas).map(|_| None).collect();
                for &cta in &permutation(num_ctas, seed) {
                    let ids: Vec<usize> = cta_warp_ids(cta).collect();
                    let mut results: Vec<Option<_>> = (0..ids.len()).map(|_| None).collect();
                    for &w in &permutation(ids.len(), seed ^ crate::chaos::mix(cta as u64)) {
                        results[w] = Some(exec_warp(ids[w]));
                    }
                    per_cta[cta] = Some(assemble_cta(
                        results
                            .into_iter()
                            .map(|r| r.expect("all warps ran"))
                            .collect(),
                    ));
                }
                let mut costs = Vec::with_capacity(num_ctas);
                let mut details = Vec::new();
                let mut stats = KernelStats::default();
                let mut shadows = Vec::new();
                for out in per_cta {
                    let (cost, warps, cta_stats, cta_shs) = out.expect("all CTAs ran");
                    costs.push(cost);
                    if want_warps {
                        details.push(warps);
                    }
                    stats.merge(&cta_stats);
                    shadows.extend(cta_shs);
                }
                (costs, details, stats, shadows)
            } else {
                (0..num_ctas)
                    .into_par_iter()
                    .map(|cta| assemble_cta(cta_warp_ids(cta).map(exec_warp).collect()))
                    .fold(
                        || {
                            (
                                Vec::<CtaCost>::new(),
                                Vec::<Vec<WarpSpan>>::new(),
                                KernelStats::default(),
                                Vec::<WarpShadow>::new(),
                            )
                        },
                        |(mut costs, mut details, mut acc, mut shs),
                         (cost, warps, stats, cta_shs)| {
                            costs.push(cost);
                            if want_warps {
                                details.push(warps);
                            }
                            acc.merge(&stats);
                            shs.extend(cta_shs);
                            (costs, details, acc, shs)
                        },
                    )
                    .reduce(
                        || (Vec::new(), Vec::new(), KernelStats::default(), Vec::new()),
                        |(mut a, mut da, mut sa, mut sha), (b, db, sb, shb)| {
                            a.extend(b);
                            da.extend(db);
                            sa.merge(&sb);
                            sha.extend(shb);
                            (a, da, sa, sha)
                        },
                    )
            }
        }));
        let (costs, warp_details, stats, shadows) = match run {
            Ok(executed) => executed,
            Err(payload) => match payload.downcast::<AbortSignal>() {
                Ok(sig) => {
                    return Err(LaunchError::Aborted(KernelAbort {
                        kernel: kernel.name().to_string(),
                        warp_id: sig.warp_id,
                        ops: sig.ops,
                        budget: sig.budget,
                        reason: sig.reason,
                    }))
                }
                Err(other) => std::panic::resume_unwind(other),
            },
        };

        if let Some(s) = san {
            s.audit_launch(kernel.name(), warps_per_cta, shadows);
        }

        let (cycles, bound, placements) = self.schedule(&costs, &occ, want_ctas);
        let report = KernelReport {
            name: kernel.name().to_string(),
            cycles,
            time_ms: self.spec.cycles_to_ms(cycles),
            ctas: num_ctas as u64,
            warps_per_sm: occ.warps_per_sm,
            occupancy: occ.fraction(&self.spec),
            bound,
            stats,
        };
        if let Some(session) = trace {
            let busy = cycles.saturating_sub(self.spec.timing.kernel_launch_overhead_cycles);
            session.record_launch(&report, busy, &placements, &warp_details);
        }
        if let Some(registry) = self.metrics.get() {
            registry.record(&report);
        }
        Ok(report)
    }

    fn validate(&self, res: &KernelResources) -> Result<(), LaunchError> {
        res.validate()
            .map_err(|reason| LaunchError::Unlaunchable { reason })
    }

    /// Greedy dynamic CTA scheduling + per-SM time model. When
    /// `want_placements` is set, also returns each CTA's (SM, start, dur)
    /// in solo-cycle space for the trace recorder — the heap's popped load
    /// *is* the CTA's start offset on that SM.
    fn schedule(
        &self,
        costs: &[CtaCost],
        occ: &Occupancy,
        want_placements: bool,
    ) -> (u64, Bound, Vec<CtaPlacement>) {
        let num_sms = self.spec.num_sms;
        let mut sms = vec![SmLoad::default(); num_sms];
        let mut placements = Vec::with_capacity(if want_placements { costs.len() } else { 0 });
        // Assign each CTA (in launch order) to the least-loaded SM, like the
        // hardware's dynamic work distributor.
        let mut heap: std::collections::BinaryHeap<std::cmp::Reverse<(u64, usize)>> =
            (0..num_sms).map(|i| std::cmp::Reverse((0u64, i))).collect();
        for cost in costs {
            let std::cmp::Reverse((load, sm)) = heap.pop().expect("heap has num_sms entries");
            if want_placements {
                placements.push(CtaPlacement {
                    sm,
                    start_cycles: load,
                    dur_cycles: cost.solo_cycles,
                });
            }
            let s = &mut sms[sm];
            s.solo_cycles += cost.solo_cycles;
            s.work_cycles += cost.work_cycles;
            s.traffic_bytes += cost.traffic_bytes;
            s.max_warp_cycles = s.max_warp_cycles.max(cost.max_warp_cycles);
            heap.push(std::cmp::Reverse((load + cost.solo_cycles, sm)));
        }

        // Effective latency-hiding concurrency: capped by the MSHR budget
        // and *proportional* to occupancy, so register/shared-memory
        // pressure (Yang et al.'s collapse, §3.2) still shrinks it even
        // when resident warps exceed the cap.
        let max_warps = (self.spec.max_threads_per_sm / 32).max(1) as f64;
        let occ_fraction = occ.warps_per_sm as f64 / max_warps;
        let cap = self.spec.timing.latency_hiding_warps.max(1) as f64;
        let warps = ((cap * occ_fraction).ceil() as u64).clamp(1, occ.warps_per_sm.max(1) as u64);
        let issue_width = self.spec.timing.issue_width_per_sm.max(1);
        let bpc = self.spec.bytes_per_cycle_per_sm();
        // An SM may burst past its fair DRAM share through the L2 when
        // other SMs are idle; DRAM stays a global limit (checked below).
        let bpc_burst = bpc * self.spec.timing.sm_bandwidth_burst.max(1.0);

        let mut worst = 0u64;
        let mut bound = Bound::Issue;
        let mut total_traffic = 0u64;
        for s in &sms {
            total_traffic += s.traffic_bytes;
            let latency = s.solo_cycles / warps;
            let issue = s.work_cycles / issue_width;
            let bandwidth = (s.traffic_bytes as f64 / bpc_burst) as u64;
            let straggler = s.max_warp_cycles;
            // Latency stalls and DRAM service overlap imperfectly: the
            // unhidden fraction of the smaller term extends the larger.
            let overlap = self.spec.timing.latency_bw_overlap.clamp(0.0, 1.0);
            let unhidden = ((1.0 - overlap) * latency.min(bandwidth) as f64) as u64;
            let dominant = latency.max(issue).max(bandwidth).max(straggler);
            let t = dominant + unhidden;
            if t > worst {
                worst = t;
                bound = if dominant == straggler && straggler > latency {
                    Bound::Straggler
                } else if dominant == latency {
                    Bound::Latency
                } else if dominant == bandwidth {
                    Bound::Bandwidth
                } else {
                    Bound::Issue
                };
            }
        }
        // Global DRAM bound across all SMs.
        let global_bw = (total_traffic as f64 / (bpc * num_sms as f64)) as u64;
        if global_bw > worst {
            worst = global_bw;
            bound = Bound::Bandwidth;
        }
        (
            worst + self.spec.timing.kernel_launch_overhead_cycles,
            bound,
            placements,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::DeviceBuffer;
    use crate::kernel::KernelResources;

    /// Streams `loads_per_warp` coalesced loads per warp; configurable
    /// resources to probe occupancy effects.
    struct Stream<'a> {
        buf: &'a DeviceBuffer<f32>,
        warps: usize,
        loads_per_warp: usize,
        regs: usize,
        drain_every: Option<usize>,
    }

    impl WarpKernel for Stream<'_> {
        fn resources(&self) -> KernelResources {
            KernelResources {
                threads_per_cta: 256,
                regs_per_thread: self.regs,
                shared_bytes_per_cta: 0,
            }
        }
        fn grid_warps(&self) -> usize {
            self.warps
        }
        fn run_warp(&self, warp_id: usize, ctx: &mut WarpCtx) {
            let n = self.buf.len();
            for i in 0..self.loads_per_warp {
                let base = (warp_id * self.loads_per_warp + i) * 32;
                ctx.load_f32(self.buf, |lane| Some((base + lane) % n));
                if let Some(k) = self.drain_every {
                    if (i + 1) % k == 0 {
                        ctx.barrier();
                    }
                }
            }
        }
        fn name(&self) -> &str {
            "stream"
        }
    }

    fn gpu() -> Gpu {
        Gpu::new(GpuSpec::a100_40gb())
    }

    #[test]
    fn launch_produces_time_and_stats() {
        let buf = DeviceBuffer::<f32>::zeros(1 << 16);
        let k = Stream {
            buf: &buf,
            warps: 1024,
            loads_per_warp: 16,
            regs: 32,
            drain_every: None,
        };
        let r = gpu().launch(&k);
        assert_eq!(r.stats.loads, 1024 * 16);
        assert!(r.cycles > 0);
        assert!(r.time_ms > 0.0);
        assert_eq!(r.name, "stream");
    }

    #[test]
    fn low_occupancy_is_slower() {
        let buf = DeviceBuffer::<f32>::zeros(1 << 16);
        let fast = Stream {
            buf: &buf,
            warps: 4096,
            loads_per_warp: 16,
            regs: 32,
            drain_every: Some(1),
        };
        let slow = Stream {
            buf: &buf,
            warps: 4096,
            loads_per_warp: 16,
            regs: 255,
            drain_every: Some(1),
        };
        let g = gpu();
        let rf = g.launch(&fast);
        let rs = g.launch(&slow);
        assert!(
            rs.cycles > rf.cycles,
            "low-occupancy {} !> full-occupancy {}",
            rs.cycles,
            rf.cycles
        );
        assert!(rs.occupancy < rf.occupancy);
    }

    #[test]
    fn frequent_drains_are_slower() {
        let buf = DeviceBuffer::<f32>::zeros(1 << 16);
        let g = gpu();
        // Register-limited so latency is the binding constraint.
        let batched = g.launch(&Stream {
            buf: &buf,
            warps: 2048,
            loads_per_warp: 32,
            regs: 128,
            drain_every: Some(8),
        });
        let serial = g.launch(&Stream {
            buf: &buf,
            warps: 2048,
            loads_per_warp: 32,
            regs: 128,
            drain_every: Some(1),
        });
        assert!(
            serial.cycles > batched.cycles,
            "serial {} !> batched {}",
            serial.cycles,
            batched.cycles
        );
    }

    #[test]
    fn grid_limit_is_enforced() {
        let mut spec = GpuSpec::a100_40gb();
        spec.max_grid_ctas = 10;
        let buf = DeviceBuffer::<f32>::zeros(1024);
        let k = Stream {
            buf: &buf,
            warps: 8 * 11, // 11 CTAs of 8 warps
            loads_per_warp: 1,
            regs: 32,
            drain_every: None,
        };
        let err = Gpu::new(spec).try_launch(&k).unwrap_err();
        assert!(matches!(err, LaunchError::GridTooLarge { .. }));
    }

    #[test]
    fn invalid_cta_shape_rejected() {
        struct Bad;
        impl WarpKernel for Bad {
            fn resources(&self) -> KernelResources {
                KernelResources {
                    threads_per_cta: 33,
                    regs_per_thread: 32,
                    shared_bytes_per_cta: 0,
                }
            }
            fn grid_warps(&self) -> usize {
                1
            }
            fn run_warp(&self, _: usize, _: &mut WarpCtx) {}
        }
        let err = gpu().try_launch(&Bad).unwrap_err();
        assert!(matches!(err, LaunchError::Unlaunchable { .. }));
    }

    #[test]
    fn straggler_bound_detected_for_imbalanced_work() {
        // One warp does 512 dependent loads, the rest do 1: the straggler
        // dominates even with full occupancy.
        struct Imbalanced<'a> {
            buf: &'a DeviceBuffer<f32>,
        }
        impl WarpKernel for Imbalanced<'_> {
            fn resources(&self) -> KernelResources {
                KernelResources {
                    threads_per_cta: 32,
                    regs_per_thread: 32,
                    shared_bytes_per_cta: 0,
                }
            }
            fn grid_warps(&self) -> usize {
                256
            }
            fn run_warp(&self, warp_id: usize, ctx: &mut WarpCtx) {
                let iters = if warp_id == 0 { 512 } else { 1 };
                for i in 0..iters {
                    ctx.load_f32(self.buf, |lane| Some((i * 32 + lane) % self.buf.len()));
                    ctx.barrier(); // dependent chain
                }
            }
        }
        let buf = DeviceBuffer::<f32>::zeros(1 << 14);
        let r = gpu().launch(&Imbalanced { buf: &buf });
        assert_eq!(r.bound, Bound::Straggler);
        assert!(r.stats.max_warp_cycles > r.stats.total_solo_cycles / 256 * 10);
    }

    #[test]
    fn launch_overhead_floor() {
        struct Nop;
        impl WarpKernel for Nop {
            fn resources(&self) -> KernelResources {
                KernelResources {
                    threads_per_cta: 32,
                    regs_per_thread: 16,
                    shared_bytes_per_cta: 0,
                }
            }
            fn grid_warps(&self) -> usize {
                1
            }
            fn run_warp(&self, _: usize, _: &mut WarpCtx) {}
        }
        let r = gpu().launch(&Nop);
        assert!(r.cycles >= GpuSpec::a100_40gb().timing.kernel_launch_overhead_cycles);
    }

    /// Deliberately non-terminating kernel: run_warp loops forever. Only
    /// the watchdog gets a launch of this to return.
    struct Runaway;
    impl WarpKernel for Runaway {
        fn resources(&self) -> KernelResources {
            KernelResources {
                threads_per_cta: 32,
                regs_per_thread: 16,
                shared_bytes_per_cta: 0,
            }
        }
        fn grid_warps(&self) -> usize {
            2
        }
        fn run_warp(&self, _: usize, ctx: &mut WarpCtx) {
            loop {
                ctx.compute(1);
            }
        }
        fn name(&self) -> &str {
            "runaway"
        }
    }

    #[test]
    fn watchdog_aborts_non_terminating_kernel() {
        let err = gpu()
            .try_launch_with(&Runaway, &LaunchSpec::with_budget(10_000))
            .unwrap_err();
        match err {
            LaunchError::Aborted(a) => {
                assert_eq!(a.kernel, "runaway");
                assert_eq!(a.budget, 10_000);
                assert!(a.ops > 10_000);
                assert_eq!(a.reason, crate::error::AbortReason::Watchdog);
            }
            other => panic!("expected Aborted, got {other:?}"),
        }
    }

    #[test]
    fn derived_budget_scales_with_grid_and_clamps() {
        let spec = LaunchSpec::default();
        assert_eq!(spec.budget(1), LaunchSpec::MIN_DERIVED_OPS);
        assert_eq!(
            spec.budget(1 << 10),
            (1 << 10) * LaunchSpec::OPS_PER_GRID_WARP
        );
        assert_eq!(spec.budget(usize::MAX), LaunchSpec::MAX_DERIVED_OPS);
        assert_eq!(LaunchSpec::no_watchdog().budget(1), u64::MAX);
        assert_eq!(LaunchSpec::with_budget(42).budget(1 << 20), 42);
    }

    #[test]
    fn unsanitized_oob_launch_aborts_structured() {
        struct Oob<'a> {
            buf: &'a DeviceBuffer<f32>,
        }
        impl WarpKernel for Oob<'_> {
            fn resources(&self) -> KernelResources {
                KernelResources {
                    threads_per_cta: 32,
                    regs_per_thread: 16,
                    shared_bytes_per_cta: 0,
                }
            }
            fn grid_warps(&self) -> usize {
                1
            }
            fn run_warp(&self, _: usize, ctx: &mut WarpCtx) {
                ctx.load_f32(self.buf, |lane| Some(self.buf.len() + lane));
            }
            fn name(&self) -> &str {
                "oob"
            }
        }
        let buf = DeviceBuffer::<f32>::zeros(64);
        let g = gpu();
        let err = g.try_launch(&Oob { buf: &buf }).unwrap_err();
        assert!(matches!(
            err,
            LaunchError::Aborted(KernelAbort {
                reason: crate::error::AbortReason::GlobalOutOfBounds { .. },
                ..
            })
        ));
        // With a sanitizer attached the same kernel completes: the access
        // is recorded as a finding and skipped instead of aborting.
        let g2 = gpu();
        let san = g2.enable_sanitizer(crate::SanitizeConfig::on());
        assert!(g2.try_launch(&Oob { buf: &buf }).is_ok());
        assert!(san.finding_count() > 0);
    }

    #[test]
    fn watchdog_default_budget_leaves_real_kernels_alone() {
        // The derived budget must sit far above any legitimate launch in
        // the workspace; a plain streaming kernel doesn't come close.
        let buf = DeviceBuffer::<f32>::zeros(1 << 12);
        let k = Stream {
            buf: &buf,
            warps: 64,
            loads_per_warp: 64,
            regs: 32,
            drain_every: None,
        };
        assert!(gpu().try_launch(&k).is_ok());
    }

    #[test]
    fn report_serializes() {
        let buf = DeviceBuffer::<f32>::zeros(1024);
        let r = gpu().launch(&Stream {
            buf: &buf,
            warps: 8,
            loads_per_warp: 2,
            regs: 32,
            drain_every: None,
        });
        let json = r.to_json().to_string_compact();
        assert!(json.contains("\"stream\""));
        // The document parses back and preserves the key fields.
        let parsed = crate::jsonio::parse(&json).unwrap();
        assert_eq!(
            parsed.get("name").and_then(crate::jsonio::Json::as_str),
            Some("stream")
        );
        assert_eq!(
            parsed.get("cycles").and_then(crate::jsonio::Json::as_u64),
            Some(r.cycles)
        );
        assert_eq!(
            parsed.get("bound").and_then(crate::jsonio::Json::as_str),
            Some(r.bound.as_str())
        );
        assert_eq!(
            parsed
                .get("stats")
                .and_then(|s| s.get("loads"))
                .and_then(crate::jsonio::Json::as_u64),
            Some(r.stats.loads)
        );
    }
}
