//! Multi-device topology: K simulated [`Gpu`]s joined by a modeled
//! interconnect.
//!
//! The paper's Table 1 graphs top out at 1.9 B edges — far beyond one
//! simulated device — so scaled-out runs split the graph into row-aligned
//! shards and place each shard on its own device. Halo exchange (remote
//! vertex features a shard reads but does not own) then travels the
//! interconnect, and the topology charges it with a simple
//! latency-plus-bandwidth cost model, mirroring how [`crate::spec::GpuSpec`]
//! models a single device. Every transfer is recorded so sharded reports
//! can account for communication separately from compute.
//!
//! The topology is deliberately passive: it owns the devices and prices the
//! wires. Shard scheduling, retry, and fault supervision live above it in
//! `gnnone_kernels::shard`.

use std::sync::Mutex;

use crate::engine::Gpu;
use crate::jsonio::Json;
use crate::spec::GpuSpec;

/// Cost model for one inter-device link, in the style of NVLink-class
/// point-to-point interconnects: a fixed per-message latency plus a
/// bandwidth term. A transfer of `b` bytes costs
/// `latency_us / 1000 + b / (bandwidth_gbs * 1e6)` milliseconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InterconnectSpec {
    /// Link bandwidth in gigabytes per second.
    pub link_bandwidth_gbs: f64,
    /// Per-message latency in microseconds.
    pub link_latency_us: f64,
}

impl InterconnectSpec {
    /// An NVLink-3-class link: 100 GB/s per direction, 2 µs latency.
    pub fn nvlink3() -> Self {
        Self {
            link_bandwidth_gbs: 100.0,
            link_latency_us: 2.0,
        }
    }

    /// Modeled time in milliseconds to move `bytes` across one link.
    pub fn transfer_ms(&self, bytes: u64) -> f64 {
        self.link_latency_us * 1e-3 + bytes as f64 / (self.link_bandwidth_gbs * 1e6)
    }

    /// Serializes through the dependency-free [`crate::jsonio`] path.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("link_bandwidth_gbs", Json::F64(self.link_bandwidth_gbs)),
            ("link_latency_us", Json::F64(self.link_latency_us)),
        ])
    }
}

impl Default for InterconnectSpec {
    fn default() -> Self {
        Self::nvlink3()
    }
}

/// One recorded interconnect transfer (a halo-exchange message).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransferRecord {
    /// Source device index.
    pub src: usize,
    /// Destination device index.
    pub dst: usize,
    /// Payload size in bytes.
    pub bytes: u64,
    /// Modeled wire time in milliseconds.
    pub ms: f64,
}

/// K identical simulated devices plus the interconnect joining them.
///
/// Devices are constructed fresh from one [`GpuSpec`], so per-device
/// timing is deterministic and identical across the topology. Transfers
/// are logged behind a mutex so a future concurrent scheduler can share
/// the topology across shard workers.
#[derive(Debug)]
pub struct MultiGpu {
    devices: Vec<Gpu>,
    interconnect: InterconnectSpec,
    transfers: Mutex<Vec<TransferRecord>>,
}

impl MultiGpu {
    /// Builds `devices` identical simulated GPUs from `spec` with the
    /// default interconnect. Panics if `devices` is zero.
    pub fn new(spec: GpuSpec, devices: usize) -> Self {
        Self::with_interconnect(spec, devices, InterconnectSpec::default())
    }

    /// Builds the topology with an explicit interconnect model.
    pub fn with_interconnect(spec: GpuSpec, devices: usize, ic: InterconnectSpec) -> Self {
        assert!(devices > 0, "a topology needs at least one device");
        Self {
            devices: (0..devices).map(|_| Gpu::new(spec.clone())).collect(),
            interconnect: ic,
            transfers: Mutex::new(Vec::new()),
        }
    }

    /// Number of devices in the topology.
    pub fn num_devices(&self) -> usize {
        self.devices.len()
    }

    /// The device at `index` (panics when out of range).
    pub fn device(&self, index: usize) -> &Gpu {
        &self.devices[index]
    }

    /// The interconnect cost model.
    pub fn interconnect(&self) -> &InterconnectSpec {
        &self.interconnect
    }

    /// Moves `bytes` from device `src` to device `dst`, records the
    /// transfer, and returns its modeled wire time in milliseconds.
    /// Device-local moves (`src == dst`) are free and unrecorded — halo
    /// data a shard already owns never touches the wire.
    pub fn transfer(&self, src: usize, dst: usize, bytes: u64) -> f64 {
        assert!(src < self.devices.len() && dst < self.devices.len());
        if src == dst {
            return 0.0;
        }
        let ms = self.interconnect.transfer_ms(bytes);
        self.transfers
            .lock()
            .expect("transfer log poisoned")
            .push(TransferRecord {
                src,
                dst,
                bytes,
                ms,
            });
        ms
    }

    /// Snapshot of every recorded transfer, in issue order.
    pub fn transfer_log(&self) -> Vec<TransferRecord> {
        self.transfers
            .lock()
            .expect("transfer log poisoned")
            .clone()
    }

    /// Total modeled interconnect time across all recorded transfers.
    pub fn total_transfer_ms(&self) -> f64 {
        self.transfer_log().iter().map(|t| t.ms).sum()
    }

    /// Total bytes moved across all recorded transfers.
    pub fn total_transfer_bytes(&self) -> u64 {
        self.transfer_log().iter().map(|t| t.bytes).sum()
    }

    /// Clears the transfer log (between independent sharded runs).
    pub fn reset_transfers(&self) {
        self.transfers
            .lock()
            .expect("transfer log poisoned")
            .clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_cost_is_latency_plus_bandwidth() {
        let ic = InterconnectSpec {
            link_bandwidth_gbs: 100.0,
            link_latency_us: 2.0,
        };
        // 1 MB at 100 GB/s = 0.01 ms, plus 0.002 ms latency.
        let ms = ic.transfer_ms(1_000_000);
        assert!((ms - 0.012).abs() < 1e-12, "{ms}");
    }

    #[test]
    fn topology_records_remote_transfers_only() {
        let topo = MultiGpu::new(GpuSpec::tiny(), 4);
        assert_eq!(topo.num_devices(), 4);
        assert_eq!(topo.transfer(0, 0, 1 << 20), 0.0);
        let ms = topo.transfer(1, 2, 1_000_000);
        assert!(ms > 0.0);
        let log = topo.transfer_log();
        assert_eq!(log.len(), 1);
        assert_eq!((log[0].src, log[0].dst, log[0].bytes), (1, 2, 1_000_000));
        assert_eq!(topo.total_transfer_bytes(), 1_000_000);
        assert!((topo.total_transfer_ms() - ms).abs() < 1e-12);
        topo.reset_transfers();
        assert!(topo.transfer_log().is_empty());
    }

    #[test]
    fn devices_share_one_spec() {
        let topo = MultiGpu::new(GpuSpec::tiny(), 2);
        assert_eq!(topo.device(0).spec(), topo.device(1).spec());
        let j = topo.interconnect().to_json().to_string_compact();
        assert!(j.contains("link_bandwidth_gbs"), "{j}");
    }
}
