//! Cross-launch metrics: per-kernel rollups of [`KernelStats`] with the
//! derived quantities the paper's figures are built from.
//!
//! A [`MetricsRegistry`] attaches to a [`crate::Gpu`] (see
//! [`crate::Gpu::enable_metrics`]) and accumulates every launch into one
//! [`KernelMetrics`] entry per kernel name. A [`MetricsSnapshot`] is the
//! serializable export — written by figure binaries via `--metrics <path>`
//! and read back by `gnnone-prof` for summaries and A-vs-B diffs.
//!
//! Snapshots serialize two ways: through serde (the types derive
//! `Serialize`/`Deserialize` like the rest of the workspace) and through
//! the dependency-free [`crate::jsonio`] writer/parser, which is what the
//! `--metrics` flag and `gnnone-prof` use.

use std::collections::BTreeMap;
use std::sync::Mutex;

use serde::{Deserialize, Serialize};

use crate::engine::{Bound, KernelReport};
use crate::jsonio::{self, Json};
use crate::stats::KernelStats;

/// All launches of one kernel name, rolled up.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelMetrics {
    /// Kernel name (the [`crate::WarpKernel::name`] of the launches).
    pub name: String,
    /// Number of launches recorded.
    pub launches: u64,
    /// Total kernel cycles across launches (incl. launch overhead).
    pub cycles: u64,
    /// Total kernel time in milliseconds.
    pub time_ms: f64,
    /// Total CTAs launched.
    pub ctas: u64,
    /// Counters summed across launches ([`KernelStats::merge`] semantics:
    /// `max_warp_cycles` is the max over launches).
    pub stats: KernelStats,
    /// Launches whose critical SM was latency-bound.
    pub bound_latency: u64,
    /// Launches whose critical SM was issue-bound.
    pub bound_issue: u64,
    /// Launches whose critical SM was bandwidth-bound.
    pub bound_bandwidth: u64,
    /// Launches whose critical SM was straggler-bound.
    pub bound_straggler: u64,
    /// Sum of per-launch fractional occupancy (divide by `launches`).
    pub occupancy_sum: f64,
    /// Smallest per-launch occupancy seen.
    pub min_occupancy: f64,
    /// Largest per-launch occupancy seen.
    pub max_occupancy: f64,
}

impl KernelMetrics {
    fn new(name: &str) -> Self {
        KernelMetrics {
            name: name.to_string(),
            launches: 0,
            cycles: 0,
            time_ms: 0.0,
            ctas: 0,
            stats: KernelStats::default(),
            bound_latency: 0,
            bound_issue: 0,
            bound_bandwidth: 0,
            bound_straggler: 0,
            occupancy_sum: 0.0,
            min_occupancy: f64::INFINITY,
            max_occupancy: 0.0,
        }
    }

    /// Folds one launch report into the rollup.
    pub fn record(&mut self, report: &KernelReport) {
        self.launches += 1;
        self.cycles += report.cycles;
        self.time_ms += report.time_ms;
        self.ctas += report.ctas;
        self.stats.merge(&report.stats);
        match report.bound {
            Bound::Latency => self.bound_latency += 1,
            Bound::Issue => self.bound_issue += 1,
            Bound::Bandwidth => self.bound_bandwidth += 1,
            Bound::Straggler => self.bound_straggler += 1,
        }
        self.occupancy_sum += report.occupancy;
        self.min_occupancy = self.min_occupancy.min(report.occupancy);
        self.max_occupancy = self.max_occupancy.max(report.occupancy);
    }

    /// Merges another rollup of the same kernel (used when combining
    /// registries; associative like [`KernelStats::merge`]).
    pub fn merge(&mut self, other: &KernelMetrics) {
        self.launches += other.launches;
        self.cycles += other.cycles;
        self.time_ms += other.time_ms;
        self.ctas += other.ctas;
        self.stats.merge(&other.stats);
        self.bound_latency += other.bound_latency;
        self.bound_issue += other.bound_issue;
        self.bound_bandwidth += other.bound_bandwidth;
        self.bound_straggler += other.bound_straggler;
        self.occupancy_sum += other.occupancy_sum;
        self.min_occupancy = self.min_occupancy.min(other.min_occupancy);
        self.max_occupancy = self.max_occupancy.max(other.max_occupancy);
    }

    /// Achieved DRAM bandwidth in GB/s: total traffic over total kernel
    /// time. Compare against the spec's `dram_bandwidth_gbs` to see how
    /// close the kernel runs to the roofline.
    pub fn achieved_bandwidth_gbs(&self) -> f64 {
        if self.time_ms <= 0.0 {
            return 0.0;
        }
        (self.stats.read_bytes + self.stats.write_bytes) as f64 / 1e9 / (self.time_ms / 1e3)
    }

    /// Sector efficiency: useful bytes over transferred bytes on the read
    /// path (1.0 = perfectly coalesced). Same as
    /// [`KernelStats::coalescing_efficiency`].
    pub fn sector_efficiency(&self) -> f64 {
        self.stats.coalescing_efficiency()
    }

    /// Fraction of warp time stalled on memory.
    pub fn stall_fraction(&self) -> f64 {
        self.stats.mem_stall_fraction()
    }

    /// Extra serialization steps per atomic instruction (0 = conflict-free).
    pub fn atomic_conflict_rate(&self) -> f64 {
        if self.stats.atomics == 0 {
            0.0
        } else {
            self.stats.atomic_conflicts as f64 / self.stats.atomics as f64
        }
    }

    /// Mean fractional occupancy across launches.
    pub fn avg_occupancy(&self) -> f64 {
        if self.launches == 0 {
            0.0
        } else {
            self.occupancy_sum / self.launches as f64
        }
    }

    /// Serializes to a [`Json`] object (raw fields plus a `derived` block
    /// for human readers; parsing uses only the raw fields).
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("name", Json::Str(self.name.clone())),
            ("launches", Json::U64(self.launches)),
            ("cycles", Json::U64(self.cycles)),
            ("time_ms", Json::F64(self.time_ms)),
            ("ctas", Json::U64(self.ctas)),
            ("stats", stats_to_json(&self.stats)),
            ("bound_latency", Json::U64(self.bound_latency)),
            ("bound_issue", Json::U64(self.bound_issue)),
            ("bound_bandwidth", Json::U64(self.bound_bandwidth)),
            ("bound_straggler", Json::U64(self.bound_straggler)),
            ("occupancy_sum", Json::F64(self.occupancy_sum)),
            (
                "min_occupancy",
                Json::F64(if self.min_occupancy.is_finite() {
                    self.min_occupancy
                } else {
                    0.0
                }),
            ),
            ("max_occupancy", Json::F64(self.max_occupancy)),
            (
                "derived",
                Json::obj(vec![
                    (
                        "achieved_bandwidth_gbs",
                        Json::F64(self.achieved_bandwidth_gbs()),
                    ),
                    ("sector_efficiency", Json::F64(self.sector_efficiency())),
                    ("stall_fraction", Json::F64(self.stall_fraction())),
                    (
                        "atomic_conflict_rate",
                        Json::F64(self.atomic_conflict_rate()),
                    ),
                    ("avg_occupancy", Json::F64(self.avg_occupancy())),
                ]),
            ),
        ])
    }

    /// Parses a value produced by [`KernelMetrics::to_json`].
    pub fn from_json(v: &Json) -> Result<KernelMetrics, String> {
        let name = v
            .get("name")
            .and_then(Json::as_str)
            .ok_or("kernel entry missing 'name'")?;
        let u = |k: &str| v.get(k).and_then(Json::as_u64).unwrap_or(0);
        let f = |k: &str| v.get(k).and_then(Json::as_f64).unwrap_or(0.0);
        Ok(KernelMetrics {
            name: name.to_string(),
            launches: u("launches"),
            cycles: u("cycles"),
            time_ms: f("time_ms"),
            ctas: u("ctas"),
            stats: v.get("stats").map(stats_from_json).unwrap_or_default(),
            bound_latency: u("bound_latency"),
            bound_issue: u("bound_issue"),
            bound_bandwidth: u("bound_bandwidth"),
            bound_straggler: u("bound_straggler"),
            occupancy_sum: f("occupancy_sum"),
            min_occupancy: f("min_occupancy"),
            max_occupancy: f("max_occupancy"),
        })
    }
}

fn stats_to_json(s: &KernelStats) -> Json {
    Json::obj(vec![
        ("warps", Json::U64(s.warps)),
        ("loads", Json::U64(s.loads)),
        ("read_bytes", Json::U64(s.read_bytes)),
        ("read_useful_bytes", Json::U64(s.read_useful_bytes)),
        ("write_bytes", Json::U64(s.write_bytes)),
        ("shared_accesses", Json::U64(s.shared_accesses)),
        ("barriers", Json::U64(s.barriers)),
        ("shfl_rounds", Json::U64(s.shfl_rounds)),
        ("atomics", Json::U64(s.atomics)),
        ("atomic_conflicts", Json::U64(s.atomic_conflicts)),
        ("compute_instr", Json::U64(s.compute_instr)),
        ("total_solo_cycles", Json::U64(s.total_solo_cycles)),
        ("max_warp_cycles", Json::U64(s.max_warp_cycles)),
        (
            "total_mem_stall_cycles",
            Json::U64(s.total_mem_stall_cycles),
        ),
    ])
}

fn stats_from_json(v: &Json) -> KernelStats {
    let u = |k: &str| v.get(k).and_then(Json::as_u64).unwrap_or(0);
    KernelStats {
        warps: u("warps"),
        loads: u("loads"),
        read_bytes: u("read_bytes"),
        read_useful_bytes: u("read_useful_bytes"),
        write_bytes: u("write_bytes"),
        shared_accesses: u("shared_accesses"),
        barriers: u("barriers"),
        shfl_rounds: u("shfl_rounds"),
        atomics: u("atomics"),
        atomic_conflicts: u("atomic_conflicts"),
        compute_instr: u("compute_instr"),
        total_solo_cycles: u("total_solo_cycles"),
        max_warp_cycles: u("max_warp_cycles"),
        total_mem_stall_cycles: u("total_mem_stall_cycles"),
    }
}

/// A serializable point-in-time view of a [`MetricsRegistry`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Device name the metrics were collected on (spec name).
    pub device: String,
    /// Device clock in GHz, for cycle↔time conversions downstream.
    pub clock_ghz: f64,
    /// Per-kernel rollups, sorted by kernel name.
    pub kernels: Vec<KernelMetrics>,
}

impl MetricsSnapshot {
    /// Serializes via [`crate::jsonio`].
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("device", Json::Str(self.device.clone())),
            ("clock_ghz", Json::F64(self.clock_ghz)),
            (
                "kernels",
                Json::Arr(self.kernels.iter().map(KernelMetrics::to_json).collect()),
            ),
        ])
    }

    /// Parses a document produced by [`MetricsSnapshot::to_json`].
    pub fn from_json_str(text: &str) -> Result<MetricsSnapshot, String> {
        let v = jsonio::parse(text).map_err(|e| e.to_string())?;
        let kernels = v
            .get("kernels")
            .and_then(Json::as_arr)
            .ok_or("metrics snapshot missing 'kernels' array")?
            .iter()
            .map(KernelMetrics::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(MetricsSnapshot {
            device: v
                .get("device")
                .and_then(Json::as_str)
                .unwrap_or("unknown")
                .to_string(),
            clock_ghz: v.get("clock_ghz").and_then(Json::as_f64).unwrap_or(1.0),
            kernels,
        })
    }

    /// Looks up a kernel rollup by name.
    pub fn kernel(&self, name: &str) -> Option<&KernelMetrics> {
        self.kernels.iter().find(|k| k.name == name)
    }

    /// Writes the snapshot as pretty JSON to `path` (parent directories
    /// created).
    pub fn write(&self, path: &str) -> std::io::Result<()> {
        let p = std::path::Path::new(path);
        if let Some(dir) = p.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        std::fs::write(p, self.to_json().to_string_pretty())
    }
}

/// Thread-safe accumulator of per-kernel metrics across launches.
///
/// # Examples
///
/// ```
/// use gnnone_sim::{DeviceBuffer, Gpu, GpuSpec};
/// use gnnone_sim::{KernelResources, WarpCtx, WarpKernel};
///
/// struct Touch<'a>(&'a DeviceBuffer<f32>);
/// impl WarpKernel for Touch<'_> {
///     fn resources(&self) -> KernelResources {
///         KernelResources { threads_per_cta: 32, regs_per_thread: 16, shared_bytes_per_cta: 0 }
///     }
///     fn grid_warps(&self) -> usize { 2 }
///     fn run_warp(&self, _w: usize, ctx: &mut WarpCtx) {
///         ctx.load_f32(self.0, |lane| Some(lane));
///     }
///     fn name(&self) -> &str { "touch" }
/// }
///
/// let gpu = Gpu::new(GpuSpec::tiny());
/// let registry = gpu.enable_metrics();
/// let buf = DeviceBuffer::zeros(64);
/// gpu.launch(&Touch(&buf));
/// gpu.launch(&Touch(&buf));
/// let snap = registry.snapshot();
/// assert_eq!(snap.kernel("touch").unwrap().launches, 2);
/// ```
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    device: Mutex<Option<(String, f64)>>,
    kernels: Mutex<BTreeMap<String, KernelMetrics>>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records the device identity (first caller wins; a registry shared
    /// between two same-spec GPUs keeps the first attachment's identity).
    pub fn set_device(&self, name: &str, clock_ghz: f64) {
        let mut device = self.device.lock().expect("metrics lock");
        if device.is_none() {
            *device = Some((name.to_string(), clock_ghz));
        }
    }

    /// Folds one launch report into the per-kernel rollup.
    pub fn record(&self, report: &KernelReport) {
        let mut kernels = self.kernels.lock().expect("metrics lock");
        kernels
            .entry(report.name.clone())
            .or_insert_with(|| KernelMetrics::new(&report.name))
            .record(report);
    }

    /// Number of distinct kernel names recorded.
    pub fn kernel_count(&self) -> usize {
        self.kernels.lock().expect("metrics lock").len()
    }

    /// A serializable snapshot (kernels sorted by name).
    pub fn snapshot(&self) -> MetricsSnapshot {
        let device = self.device.lock().expect("metrics lock");
        let (device, clock_ghz) = device
            .clone()
            .unwrap_or_else(|| ("unknown".to_string(), 1.0));
        let kernels = self.kernels.lock().expect("metrics lock");
        MetricsSnapshot {
            device,
            clock_ghz,
            kernels: kernels.values().cloned().collect(),
        }
    }

    /// Drops all recorded kernels (device identity is kept).
    pub fn clear(&self) {
        self.kernels.lock().expect("metrics lock").clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::DeviceBuffer;
    use crate::engine::Gpu;
    use crate::kernel::{KernelResources, WarpKernel};
    use crate::spec::GpuSpec;
    use crate::warp::WarpCtx;

    struct Touch<'a> {
        buf: &'a DeviceBuffer<f32>,
        warps: usize,
        name: &'static str,
    }

    impl WarpKernel for Touch<'_> {
        fn resources(&self) -> KernelResources {
            KernelResources {
                threads_per_cta: 32,
                regs_per_thread: 16,
                shared_bytes_per_cta: 0,
            }
        }
        fn grid_warps(&self) -> usize {
            self.warps
        }
        fn run_warp(&self, warp_id: usize, ctx: &mut WarpCtx) {
            let n = self.buf.len();
            ctx.load_f32(self.buf, |lane| Some((warp_id * 7 + lane * 2) % n));
        }
        fn name(&self) -> &str {
            self.name
        }
    }

    fn sample_report(k: u64) -> KernelReport {
        let mut stats = KernelStats::default();
        stats.absorb_warp(&crate::WarpStats {
            loads: k,
            read_sectors: 4 * k,
            read_useful_bytes: 100 * k,
            atomics: k,
            atomic_conflicts: k / 2,
            solo_cycles: 1000 * k,
            mem_stall_cycles: 400 * k,
            ..Default::default()
        });
        KernelReport {
            name: "sample".to_string(),
            cycles: 10_000 * k,
            // Dyadic step so sums are exact and merge order cannot perturb
            // the float fields this test compares with `==`.
            time_ms: 0.25 * k as f64,
            ctas: k,
            warps_per_sm: 8,
            occupancy: 0.25 * (1 + k % 3) as f64,
            bound: match k % 3 {
                0 => Bound::Latency,
                1 => Bound::Bandwidth,
                _ => Bound::Straggler,
            },
            stats,
        }
    }

    #[test]
    fn registry_rolls_up_by_kernel_name() {
        let gpu = Gpu::new(GpuSpec::tiny());
        let registry = gpu.enable_metrics();
        let buf = DeviceBuffer::<f32>::zeros(1024);
        gpu.launch(&Touch {
            buf: &buf,
            warps: 8,
            name: "alpha",
        });
        gpu.launch(&Touch {
            buf: &buf,
            warps: 8,
            name: "alpha",
        });
        gpu.launch(&Touch {
            buf: &buf,
            warps: 4,
            name: "beta",
        });
        assert_eq!(registry.kernel_count(), 2);
        let snap = registry.snapshot();
        // Sorted by name for deterministic output.
        assert_eq!(snap.kernels[0].name, "alpha");
        assert_eq!(snap.kernels[1].name, "beta");
        assert_eq!(snap.kernels[0].launches, 2);
        assert_eq!(snap.kernel("beta").unwrap().launches, 1);
        assert_eq!(snap.kernels[0].stats.warps, 16);
        registry.clear();
        assert_eq!(registry.kernel_count(), 0);
    }

    #[test]
    fn record_tracks_bounds_and_occupancy_extrema() {
        let mut m = KernelMetrics::new("sample");
        for k in 1..=6 {
            m.record(&sample_report(k));
        }
        assert_eq!(m.launches, 6);
        assert_eq!(m.bound_latency, 2);
        assert_eq!(m.bound_bandwidth, 2);
        assert_eq!(m.bound_straggler, 2);
        assert_eq!(m.bound_issue, 0);
        assert!((m.min_occupancy - 0.25).abs() < 1e-12);
        assert!((m.max_occupancy - 0.75).abs() < 1e-12);
        assert!((m.avg_occupancy() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn derived_metrics_match_formulas() {
        let mut m = KernelMetrics::new("sample");
        m.record(&sample_report(4));
        let bytes = (m.stats.read_bytes + m.stats.write_bytes) as f64;
        assert!((m.achieved_bandwidth_gbs() - bytes / 1e9 / (m.time_ms / 1e3)).abs() < 1e-9);
        assert!((m.sector_efficiency() - 400.0 / (16.0 * 32.0)).abs() < 1e-12);
        assert!((m.stall_fraction() - 0.4).abs() < 1e-12);
        assert!((m.atomic_conflict_rate() - 0.5).abs() < 1e-12);
        let empty = KernelMetrics::new("empty");
        assert_eq!(empty.achieved_bandwidth_gbs(), 0.0);
        assert_eq!(empty.atomic_conflict_rate(), 0.0);
        assert_eq!(empty.avg_occupancy(), 0.0);
    }

    #[test]
    fn merge_is_associative() {
        let mk = |ks: &[u64]| {
            let mut m = KernelMetrics::new("sample");
            for &k in ks {
                m.record(&sample_report(k));
            }
            m
        };
        let (a, b, c) = (mk(&[1, 2]), mk(&[3]), mk(&[4, 5]));
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        assert_eq!(left, right);
        // Merging partials equals recording everything into one rollup.
        assert_eq!(left, mk(&[1, 2, 3, 4, 5]));
    }

    #[test]
    fn snapshot_json_round_trips() {
        let gpu = Gpu::new(GpuSpec::tiny());
        let registry = gpu.enable_metrics();
        let buf = DeviceBuffer::<f32>::zeros(1024);
        gpu.launch(&Touch {
            buf: &buf,
            warps: 8,
            name: "alpha",
        });
        gpu.launch(&Touch {
            buf: &buf,
            warps: 4,
            name: "beta",
        });
        let snap = registry.snapshot();
        let text = snap.to_json().to_string_pretty();
        let back = MetricsSnapshot::from_json_str(&text).expect("snapshot parses back");
        assert_eq!(snap, back);
        // A rollup that never launched keeps min_occupancy readable.
        let empty = MetricsSnapshot {
            device: "dev".to_string(),
            clock_ghz: 1.0,
            kernels: vec![KernelMetrics::new("idle")],
        };
        let back = MetricsSnapshot::from_json_str(&empty.to_json().to_string_compact()).unwrap();
        assert_eq!(back.kernels[0].launches, 0);
    }

    #[test]
    fn from_json_rejects_malformed_input() {
        assert!(MetricsSnapshot::from_json_str("not json").is_err());
        assert!(MetricsSnapshot::from_json_str("{}").is_err());
        assert!(MetricsSnapshot::from_json_str(r#"{"device":"d","clock_ghz":1.0}"#).is_err());
    }

    #[test]
    fn metrics_registry_is_shared_by_clones() {
        let gpu = Gpu::new(GpuSpec::tiny());
        let registry = gpu.enable_metrics();
        let clone = gpu.clone();
        let buf = DeviceBuffer::<f32>::zeros(1024);
        clone.launch(&Touch {
            buf: &buf,
            warps: 8,
            name: "alpha",
        });
        assert_eq!(registry.kernel_count(), 1);
    }
}
