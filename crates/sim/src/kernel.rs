//! The kernel abstraction: what user code implements to run on the simulator.

use crate::warp::WarpCtx;

/// Static resource declaration of a kernel — the analogue of what `nvcc`
/// reports per kernel (threads per CTA from the launch configuration,
/// registers per thread from compilation, shared memory from the
/// `__shared__` declarations). These three numbers determine occupancy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KernelResources {
    /// Threads per CTA (multiple of 32, ≤ 1024).
    pub threads_per_cta: usize,
    /// 32-bit registers per thread.
    pub regs_per_thread: usize,
    /// Shared memory bytes per CTA.
    pub shared_bytes_per_cta: usize,
}

impl KernelResources {
    /// Checks the declaration invariants that the doc comments promise:
    /// `threads_per_cta` a positive multiple of 32 and at most 1024 (the
    /// CUDA CTA limit). The engine calls this on every launch and turns a
    /// violation into [`crate::engine::LaunchError::Unlaunchable`] — a
    /// non-multiple-of-32 CTA would otherwise silently skew the occupancy
    /// model (fractional warps are rounded away).
    pub fn validate(&self) -> Result<(), String> {
        if self.threads_per_cta == 0
            || !self.threads_per_cta.is_multiple_of(32)
            || self.threads_per_cta > 1024
        {
            return Err(format!(
                "threads_per_cta must be a positive multiple of 32 ≤ 1024, got {}",
                self.threads_per_cta
            ));
        }
        if self.regs_per_thread == 0 {
            return Err("regs_per_thread must be positive (every kernel uses registers)".into());
        }
        Ok(())
    }

    /// Warps per CTA.
    pub fn warps_per_cta(&self) -> usize {
        self.threads_per_cta / 32
    }

    /// Per-warp share of the CTA's shared memory.
    pub fn shared_bytes_per_warp(&self) -> usize {
        self.shared_bytes_per_cta / self.warps_per_cta().max(1)
    }
}

/// A GPU kernel expressed at warp granularity.
///
/// The engine executes `run_warp` once for every warp in the grid; warps are
/// independent (the reproduced kernels all synchronize at warp scope, and
/// CTA-wide shared memory is partitioned per warp as in the paper's
/// Listing 1), so the host may run them in any order and in parallel.
pub trait WarpKernel: Sync {
    /// Resource usage determining occupancy.
    fn resources(&self) -> KernelResources;

    /// Total number of warps in the grid.
    fn grid_warps(&self) -> usize;

    /// Executes one warp, both functionally and for timing.
    fn run_warp(&self, warp_id: usize, ctx: &mut WarpCtx);

    /// Short name for reports.
    fn name(&self) -> &str {
        "kernel"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn warps_per_cta() {
        let r = KernelResources {
            threads_per_cta: 256,
            regs_per_thread: 32,
            shared_bytes_per_cta: 8192,
        };
        assert_eq!(r.warps_per_cta(), 8);
        assert_eq!(r.shared_bytes_per_warp(), 1024);
    }

    #[test]
    fn validate_accepts_documented_shapes() {
        for threads in [32, 64, 256, 1024] {
            let r = KernelResources {
                threads_per_cta: threads,
                regs_per_thread: 32,
                shared_bytes_per_cta: 0,
            };
            assert!(r.validate().is_ok(), "{threads} threads rejected");
        }
    }

    #[test]
    fn validate_rejects_contract_violations() {
        let base = KernelResources {
            threads_per_cta: 256,
            regs_per_thread: 32,
            shared_bytes_per_cta: 0,
        };
        for threads in [0, 33, 31, 1056] {
            let r = KernelResources {
                threads_per_cta: threads,
                ..base
            };
            let err = r.validate().unwrap_err();
            assert!(err.contains("threads_per_cta"), "{err}");
            assert!(err.contains(&threads.to_string()), "{err}");
        }
        let r = KernelResources {
            regs_per_thread: 0,
            ..base
        };
        assert!(r.validate().unwrap_err().contains("regs_per_thread"));
    }

    #[test]
    fn shared_per_warp_handles_zero_warps() {
        let r = KernelResources {
            threads_per_cta: 0,
            regs_per_thread: 32,
            shared_bytes_per_cta: 1024,
        };
        assert_eq!(r.shared_bytes_per_warp(), 1024);
    }
}
