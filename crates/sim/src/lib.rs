//! # gnnone-sim — a SIMT GPU execution-model simulator
//!
//! This crate is the hardware substrate for the GNNOne reproduction. The
//! paper's optimizations (two-stage data load, symbiotic thread scheduling,
//! `float4` vector loads, shared-memory NZE caching) all act on properties of
//! the GPU *execution model* rather than on any particular silicon:
//!
//! * **memory coalescing** — the 32 lanes of a warp issue one memory
//!   instruction; the addresses are grouped into 32-byte sectors and 128-byte
//!   transactions ([`coalesce`]);
//! * **memory barriers limit load ILP** — loads issued between two
//!   synchronization points overlap; a barrier (shared-memory fence or
//!   warp-shuffle exchange) drains the load pipeline ([`warp`]);
//! * **register pressure and shared-memory usage limit occupancy** — fewer
//!   resident warps per SM means less latency hiding ([`occupancy`]);
//! * **atomics serialize on intra-warp address conflicts**.
//!
//! Kernels implement [`WarpKernel`] and execute *functionally*: every load
//! and store moves real `f32`/`u32` values through [`DeviceBuffer`]s, so the
//! same code path that is timed also produces numerically correct results
//! (which the GNN training stack consumes). Alongside the functional
//! execution, each warp accrues a cycle count through a small scoreboard
//! model, and [`Gpu::launch`] aggregates warps into CTAs, CTAs onto SMs, and
//! reports kernel time under an A100-like parameterization
//! ([`GpuSpec::a100_40gb`]).
//!
//! The model is deliberately *not* cycle-accurate; it is designed so that the
//! relative effects the paper measures (who wins, by roughly what factor,
//! where the crossovers fall) are reproduced. See `DESIGN.md` at the
//! workspace root for the fidelity contract.
//!
//! ## Quick example
//!
//! ```
//! use gnnone_sim::{DeviceBuffer, Gpu, GpuSpec, KernelResources, WarpCtx, WarpKernel};
//!
//! /// Doubles every element of a buffer.
//! struct Double<'a> {
//!     input: &'a DeviceBuffer<f32>,
//!     output: &'a DeviceBuffer<f32>,
//! }
//!
//! impl WarpKernel for Double<'_> {
//!     fn resources(&self) -> KernelResources {
//!         KernelResources { threads_per_cta: 128, regs_per_thread: 16, shared_bytes_per_cta: 0 }
//!     }
//!     fn grid_warps(&self) -> usize {
//!         self.input.len().div_ceil(32)
//!     }
//!     fn run_warp(&self, warp_id: usize, ctx: &mut WarpCtx) {
//!         let base = warp_id * 32;
//!         let n = self.input.len();
//!         let x = ctx.load_f32(self.input, |lane| {
//!             let i = base + lane;
//!             (i < n).then_some(i)
//!         });
//!         ctx.compute(1);
//!         ctx.store_f32(self.output, |lane| {
//!             let i = base + lane;
//!             (i < n).then_some((i, 2.0 * x.get(lane)))
//!         });
//!     }
//! }
//!
//! let gpu = Gpu::new(GpuSpec::a100_40gb());
//! let input = DeviceBuffer::from_slice(&[1.0, 2.0, 3.0]);
//! let output = DeviceBuffer::zeros(3);
//! let report = gpu.launch(&Double { input: &input, output: &output });
//! assert_eq!(output.to_vec(), vec![2.0, 4.0, 6.0]);
//! assert!(report.cycles > 0);
//! ```

//! ## Observability
//!
//! Launches can be recorded without touching kernel code: attach a
//! [`trace::TraceSession`] (Chrome-trace timeline of kernel launches, CTA
//! placements, and optional warp spans) and/or a
//! [`metrics::MetricsRegistry`] (per-kernel counter rollups with derived
//! metrics) to a [`Gpu`] via [`Gpu::enable_trace`] /
//! [`Gpu::enable_metrics`]. Both are zero-cost when not attached. See
//! `docs/PROFILING.md` at the workspace root for every counter's
//! definition and its Nsight Compute analogue.
//!
//! ## Sanitizer
//!
//! The same attachment pattern carries the correctness oracle: a
//! [`sanitize::Sanitizer`] installed via [`Gpu::enable_sanitizer`] shadows
//! every global and shared access of every launch, checking for cross-warp
//! races, reads of shared words not separated from their writes by a
//! barrier, uninitialized shared reads, out-of-bounds indices, and
//! misaligned vector accesses — the simulator's `compute-sanitizer`
//! analogue. The shadow never touches the timing model; reports are
//! identical with and without it. See `docs/SANITIZER.md`.
//!
//! ## Chaos
//!
//! The fourth attachment is the adversary that proves the other layers
//! work: a [`chaos::ChaosEngine`] installed via [`Gpu::enable_chaos`]
//! injects one seeded fault per launch (memory bit flips, dropped atomics,
//! elided barriers, killed/stalled warps, transient launch failures) and/or
//! executes the launch under a seeded permutation of CTA and warp order —
//! making the engine's determinism contract testable. Everything is
//! reproducible from the seed alone, and zero-cost when detached. See
//! `docs/ROBUSTNESS.md`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]
#![allow(clippy::needless_range_loop)] // SIMT lane loops index parallel per-lane arrays

pub mod buffer;
pub mod chaos;
pub mod coalesce;
pub mod engine;
pub mod error;
pub mod jsonio;
pub mod kernel;
pub mod lanes;
pub mod metrics;
pub mod occupancy;
pub mod sanitize;
pub mod spec;
pub mod stats;
pub mod topology;
pub mod trace;
pub mod warp;

pub use buffer::{DeviceBuffer, Pod32};
pub use chaos::{splitmix64, ChaosConfig, ChaosEngine, FaultKind, ShardFaultKind, Verdict};
pub use engine::{Gpu, KernelReport, LaunchSpec};
pub use error::{AbortReason, GnnOneError, KernelAbort, ShardAbort, ValidationError};
pub use kernel::{KernelResources, WarpKernel};
pub use lanes::{LaneArr, WARP_SIZE};
pub use metrics::{KernelMetrics, MetricsRegistry, MetricsSnapshot};
pub use occupancy::Occupancy;
pub use sanitize::{CheckKind, Finding, LaunchAudit, SanitizeConfig, Sanitizer};
pub use spec::{GpuSpec, TimingParams};
pub use stats::{KernelStats, WarpStats};
pub use topology::{InterconnectSpec, MultiGpu, TransferRecord};
pub use trace::{TraceConfig, TraceEvent, TraceSession};
pub use warp::WarpCtx;
