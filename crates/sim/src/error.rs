//! Workspace-wide error taxonomy: every data-path failure in the GNNOne
//! reproduction is expressed as a [`GnnOneError`].
//!
//! The paper's claim rests on one engine serving every kernel and every
//! graph shape, so the system needs a *unified failure model* to match its
//! unified execution model: a malformed CSR, a NaN feature, a runaway
//! kernel, and an unlaunchable CTA shape all surface as typed, serializable
//! findings instead of panics. The taxonomy lives in `gnnone-sim` (the
//! dependency root of the workspace) so every crate above it — `sparse`,
//! `kernels`, `bench`, `gnn` — can return it without new dependencies, and
//! serializes through [`crate::jsonio`] so findings survive offline
//! environments that stub out `serde_json`.
//!
//! Taxonomy:
//!
//! * [`GnnOneError::Validation`] — a structural invariant of an input graph
//!   or feature matrix is broken ([`ValidationError`] pinpoints the
//!   structure, field, and offending index).
//! * [`GnnOneError::Io`] / [`GnnOneError::Parse`] — loading external data
//!   failed, with the path / line context attached.
//! * [`GnnOneError::Launch`] — the simulator declined a launch
//!   ([`crate::engine::LaunchError`]: resources, grid, memory).
//! * [`GnnOneError::Abort`] — the watchdog or a buffer-bounds check stopped
//!   a running kernel ([`KernelAbort`]).
//! * [`GnnOneError::Panic`] — a panic caught at an isolation boundary
//!   (`bench::runner`'s per-cell `catch_unwind`), preserved as context.
//! * [`GnnOneError::Config`] — a request the system cannot satisfy (unknown
//!   dataset id, bad CLI value).

use serde::{Deserialize, Serialize};

use crate::engine::LaunchError;
use crate::jsonio::Json;

/// A broken structural invariant in an input (graph topology or features).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ValidationError {
    /// Which structure failed: `"Coo"`, `"Csr"`, `"CsrRows"`, `"EdgeList"`,
    /// `"features"`, ...
    pub structure: String,
    /// Which field broke the invariant: `"offsets"`, `"cols"`, `"rows"`,
    /// `"values"`, ...
    pub field: String,
    /// Offending element index within the field, when one exists.
    pub index: Option<u64>,
    /// Human-readable statement of the violated invariant.
    pub detail: String,
}

impl ValidationError {
    /// Convenience constructor.
    pub fn new(
        structure: &str,
        field: &str,
        index: Option<u64>,
        detail: impl Into<String>,
    ) -> Self {
        Self {
            structure: structure.to_string(),
            field: field.to_string(),
            index,
            detail: detail.into(),
        }
    }

    /// Serializes through the dependency-free [`crate::jsonio`] path.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("structure", Json::Str(self.structure.clone())),
            ("field", Json::Str(self.field.clone())),
            (
                "index",
                match self.index {
                    Some(i) => Json::U64(i),
                    None => Json::Null,
                },
            ),
            ("detail", Json::Str(self.detail.clone())),
        ])
    }

    /// Reads back a value written by [`ValidationError::to_json`].
    pub fn from_json(v: &Json) -> Option<Self> {
        Some(Self {
            structure: v.get("structure")?.as_str()?.to_string(),
            field: v.get("field")?.as_str()?.to_string(),
            index: v.get("index").and_then(Json::as_u64),
            detail: v.get("detail")?.as_str()?.to_string(),
        })
    }
}

impl std::fmt::Display for ValidationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid {}: field `{}`", self.structure, self.field)?;
        if let Some(i) = self.index {
            write!(f, "[{i}]")?;
        }
        write!(f, ": {}", self.detail)
    }
}

impl std::error::Error for ValidationError {}

/// Why a running kernel was stopped mid-launch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AbortReason {
    /// The warp exceeded its instruction budget (runaway / non-terminating
    /// kernel).
    Watchdog,
    /// A global-memory access fell outside its [`crate::DeviceBuffer`]
    /// while no sanitizer was attached to record it as a finding.
    GlobalOutOfBounds {
        /// Element index requested.
        index: u64,
        /// Buffer length in elements.
        len: u64,
    },
    /// A shared-memory access fell outside the warp's slice while no
    /// sanitizer was attached.
    SharedOutOfBounds {
        /// Word index requested.
        word: u64,
        /// Per-warp shared-memory limit in words.
        limit: u64,
    },
    /// A chaos-injected fatal warp trap ([`crate::chaos::FaultKind::WarpKill`]):
    /// the attached chaos engine killed the warp mid-flight to prove the
    /// abort path stays structured under hardware-style failures.
    ChaosKill,
}

impl AbortReason {
    /// Stable lowercase slug used in JSON findings.
    pub fn as_str(&self) -> &'static str {
        match self {
            AbortReason::Watchdog => "watchdog",
            AbortReason::GlobalOutOfBounds { .. } => "global-oob",
            AbortReason::SharedOutOfBounds { .. } => "shared-oob",
            AbortReason::ChaosKill => "chaos-kill",
        }
    }
}

impl std::fmt::Display for AbortReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AbortReason::Watchdog => write!(f, "instruction budget exceeded"),
            AbortReason::GlobalOutOfBounds { index, len } => {
                write!(f, "global access at element {index} >= buffer length {len}")
            }
            AbortReason::SharedOutOfBounds { word, limit } => {
                write!(f, "shared access at word {word} >= warp limit {limit}")
            }
            AbortReason::ChaosKill => write!(f, "chaos-injected fatal warp trap"),
        }
    }
}

/// A structured finding produced when the engine stops a running kernel:
/// the watchdog tripped, or an unsanitized buffer access went out of
/// bounds. Carried inside [`crate::engine::LaunchError::Aborted`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct KernelAbort {
    /// Kernel name ([`crate::WarpKernel::name`]).
    pub kernel: String,
    /// The warp whose abort the engine observed first.
    pub warp_id: u64,
    /// Warp-wide instructions the warp had executed when stopped.
    pub ops: u64,
    /// The instruction budget in force (from [`crate::LaunchSpec`]).
    pub budget: u64,
    /// What tripped.
    pub reason: AbortReason,
}

impl KernelAbort {
    /// Serializes through the dependency-free [`crate::jsonio`] path.
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("kernel", Json::Str(self.kernel.clone())),
            ("warp_id", Json::U64(self.warp_id)),
            ("ops", Json::U64(self.ops)),
            ("budget", Json::U64(self.budget)),
            ("reason", Json::Str(self.reason.as_str().into())),
        ];
        match self.reason {
            AbortReason::Watchdog | AbortReason::ChaosKill => {}
            AbortReason::GlobalOutOfBounds { index, len } => {
                fields.push(("index", Json::U64(index)));
                fields.push(("len", Json::U64(len)));
            }
            AbortReason::SharedOutOfBounds { word, limit } => {
                fields.push(("word", Json::U64(word)));
                fields.push(("limit", Json::U64(limit)));
            }
        }
        Json::obj(fields)
    }

    /// Reads back a value written by [`KernelAbort::to_json`].
    pub fn from_json(v: &Json) -> Option<Self> {
        let reason = match v.get("reason")?.as_str()? {
            "watchdog" => AbortReason::Watchdog,
            "chaos-kill" => AbortReason::ChaosKill,
            "global-oob" => AbortReason::GlobalOutOfBounds {
                index: v.get("index")?.as_u64()?,
                len: v.get("len")?.as_u64()?,
            },
            "shared-oob" => AbortReason::SharedOutOfBounds {
                word: v.get("word")?.as_u64()?,
                limit: v.get("limit")?.as_u64()?,
            },
            _ => return None,
        };
        Some(Self {
            kernel: v.get("kernel")?.as_str()?.to_string(),
            warp_id: v.get("warp_id")?.as_u64()?,
            ops: v.get("ops")?.as_u64()?,
            budget: v.get("budget")?.as_u64()?,
            reason,
        })
    }
}

impl std::fmt::Display for KernelAbort {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "kernel `{}` aborted in warp {}: {} (after {} ops, budget {})",
            self.kernel, self.warp_id, self.reason, self.ops, self.budget
        )
    }
}

impl std::error::Error for KernelAbort {}

/// A structured finding produced when a sharded execution gives up on one
/// shard: the supervision loop detected a fault (kill, stall, dropped halo,
/// transient launch failure), exhausted its bounded retry budget, and
/// declined the partial result instead of zero-filling it. Carried inside
/// [`GnnOneError::ShardAbort`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardAbort {
    /// Kernel name the sharded executor was running.
    pub kernel: String,
    /// The shard whose supervision loop exhausted its retries.
    pub shard: u64,
    /// Total shard count K of the partition.
    pub shards: u64,
    /// Supervision attempts spent on the failed shard (including the first).
    pub attempts: u64,
    /// Shards already completed and checkpointed when the executor gave up.
    pub completed: u64,
    /// Slug of the injected shard fault when one was armed
    /// (`"shard-kill"`, `"shard-stall"`, `"halo-drop"`,
    /// `"transient-shard-launch"`), `None` for organic failures.
    pub fault: Option<String>,
    /// Human-readable description of the last per-attempt failure.
    pub detail: String,
}

impl ShardAbort {
    /// Serializes through the dependency-free [`crate::jsonio`] path.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("kernel", Json::Str(self.kernel.clone())),
            ("shard", Json::U64(self.shard)),
            ("shards", Json::U64(self.shards)),
            ("attempts", Json::U64(self.attempts)),
            ("completed", Json::U64(self.completed)),
            (
                "fault",
                match &self.fault {
                    Some(s) => Json::Str(s.clone()),
                    None => Json::Null,
                },
            ),
            ("detail", Json::Str(self.detail.clone())),
        ])
    }

    /// Reads back a value written by [`ShardAbort::to_json`].
    pub fn from_json(v: &Json) -> Option<Self> {
        Some(Self {
            kernel: v.get("kernel")?.as_str()?.to_string(),
            shard: v.get("shard")?.as_u64()?,
            shards: v.get("shards")?.as_u64()?,
            attempts: v.get("attempts")?.as_u64()?,
            completed: v.get("completed")?.as_u64()?,
            fault: v.get("fault").and_then(Json::as_str).map(str::to_string),
            detail: v.get("detail")?.as_str()?.to_string(),
        })
    }
}

impl std::fmt::Display for ShardAbort {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "sharded kernel `{}` gave up on shard {}/{} after {} attempts \
             ({} shards checkpointed): {}",
            self.kernel, self.shard, self.shards, self.attempts, self.completed, self.detail
        )?;
        if let Some(fault) = &self.fault {
            write!(f, " [injected fault: {fault}]")?;
        }
        Ok(())
    }
}

impl std::error::Error for ShardAbort {}

/// The unwind payload the warp context throws when it must stop a kernel;
/// [`crate::Gpu::try_launch`] catches it and converts it into a
/// [`KernelAbort`]. Delivered via `std::panic::resume_unwind`, which skips
/// the panic hook — aborts make no stderr noise on their way out.
#[derive(Debug, Clone, Copy)]
pub struct AbortSignal {
    /// Warp that aborted.
    pub warp_id: u64,
    /// Warp-wide instructions executed so far.
    pub ops: u64,
    /// Instruction budget in force.
    pub budget: u64,
    /// What tripped.
    pub reason: AbortReason,
}

/// The workspace-wide error type: every data-path failure in the
/// reproduction, from load to launch, as one serializable taxonomy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum GnnOneError {
    /// An input graph or feature matrix broke a structural invariant.
    Validation(ValidationError),
    /// A filesystem operation failed.
    Io {
        /// File involved.
        path: String,
        /// Underlying error text.
        detail: String,
    },
    /// External data failed to parse.
    Parse {
        /// What was being parsed (file path or format name).
        source: String,
        /// 1-based line number; 0 when no line applies.
        line: u64,
        /// What was wrong.
        detail: String,
    },
    /// The simulator declined the launch at preflight.
    Launch(LaunchError),
    /// The watchdog or a bounds check stopped a running kernel.
    Abort(KernelAbort),
    /// A sharded execution exhausted its per-shard retry budget and
    /// declined the partial result (typed degraded-mode verdict).
    ShardAbort(ShardAbort),
    /// A panic caught at an isolation boundary, preserved as context.
    Panic {
        /// Which isolated unit panicked (e.g. `"spmm/GnnOne/G3"`).
        context: String,
        /// The panic message, when it carried one.
        detail: String,
    },
    /// A request the system cannot satisfy (unknown dataset, bad option).
    Config {
        /// What was wrong.
        detail: String,
    },
    /// A serving request declined at admission: the bounded queue was
    /// full, so the request was rejected with explicit backpressure
    /// instead of buffered without bound (typed overload, never a silent
    /// drop).
    Rejected {
        /// Queue depth observed at the admission decision.
        queue_depth: u64,
        /// Client retry hint in milliseconds (when the queue is expected
        /// to have drained one batch).
        retry_after_ms: u64,
    },
    /// A serving request shed before launch because its deadline could
    /// not be met: the remaining margin was smaller than the predicted
    /// execution time, so launching would only have burned capacity on a
    /// response the client had already given up on.
    DeadlineExceeded {
        /// Absolute deadline the request carried, in service milliseconds.
        deadline_ms: u64,
        /// Service clock at the shed decision, in milliseconds.
        now_ms: u64,
        /// Predicted milliseconds the launch would have needed.
        needed_ms: u64,
    },
}

impl GnnOneError {
    /// Short error class used by reports: `"validation"`, `"io"`,
    /// `"parse"`, `"launch"`, `"abort"`, `"shard-abort"`, `"panic"`,
    /// `"config"`, `"rejected"`, `"deadline-exceeded"`.
    pub fn kind(&self) -> &'static str {
        match self {
            GnnOneError::Validation(_) => "validation",
            GnnOneError::Io { .. } => "io",
            GnnOneError::Parse { .. } => "parse",
            GnnOneError::Launch(_) => "launch",
            GnnOneError::Abort(_) => "abort",
            GnnOneError::ShardAbort(_) => "shard-abort",
            GnnOneError::Panic { .. } => "panic",
            GnnOneError::Config { .. } => "config",
            GnnOneError::Rejected { .. } => "rejected",
            GnnOneError::DeadlineExceeded { .. } => "deadline-exceeded",
        }
    }

    /// Serializes through the dependency-free [`crate::jsonio`] path. The
    /// object always carries a `"kind"` discriminator.
    pub fn to_json(&self) -> Json {
        let kind = ("kind", Json::Str(self.kind().into()));
        match self {
            GnnOneError::Validation(v) => Json::obj(vec![kind, ("validation", v.to_json())]),
            GnnOneError::Io { path, detail } => Json::obj(vec![
                kind,
                ("path", Json::Str(path.clone())),
                ("detail", Json::Str(detail.clone())),
            ]),
            GnnOneError::Parse {
                source,
                line,
                detail,
            } => Json::obj(vec![
                kind,
                ("source", Json::Str(source.clone())),
                ("line", Json::U64(*line)),
                ("detail", Json::Str(detail.clone())),
            ]),
            GnnOneError::Launch(e) => Json::obj(vec![
                kind,
                ("launch", Json::Str(launch_error_slug(e).into())),
                ("detail", Json::Str(e.to_string())),
            ]),
            GnnOneError::Abort(a) => Json::obj(vec![kind, ("abort", a.to_json())]),
            GnnOneError::ShardAbort(a) => Json::obj(vec![kind, ("shard_abort", a.to_json())]),
            GnnOneError::Panic { context, detail } => Json::obj(vec![
                kind,
                ("context", Json::Str(context.clone())),
                ("detail", Json::Str(detail.clone())),
            ]),
            GnnOneError::Config { detail } => {
                Json::obj(vec![kind, ("detail", Json::Str(detail.clone()))])
            }
            GnnOneError::Rejected {
                queue_depth,
                retry_after_ms,
            } => Json::obj(vec![
                kind,
                ("queue_depth", Json::U64(*queue_depth)),
                ("retry_after_ms", Json::U64(*retry_after_ms)),
            ]),
            GnnOneError::DeadlineExceeded {
                deadline_ms,
                now_ms,
                needed_ms,
            } => Json::obj(vec![
                kind,
                ("deadline_ms", Json::U64(*deadline_ms)),
                ("now_ms", Json::U64(*now_ms)),
                ("needed_ms", Json::U64(*needed_ms)),
            ]),
        }
    }

    /// Reads back a value written by [`GnnOneError::to_json`]. Lossy for
    /// [`GnnOneError::Launch`] (the structured variant collapses to
    /// [`LaunchError::Unlaunchable`] carrying the display string), exact
    /// for every other variant.
    pub fn from_json(v: &Json) -> Option<Self> {
        Some(match v.get("kind")?.as_str()? {
            "validation" => {
                GnnOneError::Validation(ValidationError::from_json(v.get("validation")?)?)
            }
            "io" => GnnOneError::Io {
                path: v.get("path")?.as_str()?.to_string(),
                detail: v.get("detail")?.as_str()?.to_string(),
            },
            "parse" => GnnOneError::Parse {
                source: v.get("source")?.as_str()?.to_string(),
                line: v.get("line")?.as_u64()?,
                detail: v.get("detail")?.as_str()?.to_string(),
            },
            "launch" => GnnOneError::Launch(LaunchError::Unlaunchable {
                reason: v.get("detail")?.as_str()?.to_string(),
            }),
            "abort" => GnnOneError::Abort(KernelAbort::from_json(v.get("abort")?)?),
            "shard-abort" => GnnOneError::ShardAbort(ShardAbort::from_json(v.get("shard_abort")?)?),
            "panic" => GnnOneError::Panic {
                context: v.get("context")?.as_str()?.to_string(),
                detail: v.get("detail")?.as_str()?.to_string(),
            },
            "config" => GnnOneError::Config {
                detail: v.get("detail")?.as_str()?.to_string(),
            },
            "rejected" => GnnOneError::Rejected {
                queue_depth: v.get("queue_depth")?.as_u64()?,
                retry_after_ms: v.get("retry_after_ms")?.as_u64()?,
            },
            "deadline-exceeded" => GnnOneError::DeadlineExceeded {
                deadline_ms: v.get("deadline_ms")?.as_u64()?,
                now_ms: v.get("now_ms")?.as_u64()?,
                needed_ms: v.get("needed_ms")?.as_u64()?,
            },
            _ => return None,
        })
    }
}

/// Stable slug for a [`LaunchError`] variant.
fn launch_error_slug(e: &LaunchError) -> &'static str {
    match e {
        LaunchError::Unlaunchable { .. } => "unlaunchable",
        LaunchError::GridTooLarge { .. } => "grid-too-large",
        LaunchError::OutOfMemory { .. } => "out-of-memory",
        LaunchError::Aborted(_) => "aborted",
    }
}

impl std::fmt::Display for GnnOneError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GnnOneError::Validation(v) => write!(f, "{v}"),
            GnnOneError::Io { path, detail } => write!(f, "io error on {path}: {detail}"),
            GnnOneError::Parse {
                source,
                line,
                detail,
            } => {
                if *line > 0 {
                    write!(f, "parse error in {source}:{line}: {detail}")
                } else {
                    write!(f, "parse error in {source}: {detail}")
                }
            }
            GnnOneError::Launch(e) => write!(f, "{e}"),
            GnnOneError::Abort(a) => write!(f, "{a}"),
            GnnOneError::ShardAbort(a) => write!(f, "{a}"),
            GnnOneError::Panic { context, detail } => {
                write!(f, "panic isolated in {context}: {detail}")
            }
            GnnOneError::Config { detail } => write!(f, "config error: {detail}"),
            GnnOneError::Rejected {
                queue_depth,
                retry_after_ms,
            } => write!(
                f,
                "rejected: admission queue full at depth {queue_depth}; \
                 retry after {retry_after_ms} ms"
            ),
            GnnOneError::DeadlineExceeded {
                deadline_ms,
                now_ms,
                needed_ms,
            } => write!(
                f,
                "deadline exceeded: needed {needed_ms} ms at t={now_ms} ms \
                 against a deadline of {deadline_ms} ms"
            ),
        }
    }
}

impl std::error::Error for GnnOneError {}

impl From<ValidationError> for GnnOneError {
    fn from(v: ValidationError) -> Self {
        GnnOneError::Validation(v)
    }
}

impl From<KernelAbort> for GnnOneError {
    fn from(a: KernelAbort) -> Self {
        GnnOneError::Abort(a)
    }
}

impl From<ShardAbort> for GnnOneError {
    fn from(a: ShardAbort) -> Self {
        GnnOneError::ShardAbort(a)
    }
}

impl From<LaunchError> for GnnOneError {
    /// Routes [`LaunchError::Aborted`] to [`GnnOneError::Abort`] so reports
    /// distinguish "declined at preflight" from "stopped while running".
    fn from(e: LaunchError) -> Self {
        match e {
            LaunchError::Aborted(a) => GnnOneError::Abort(a),
            other => GnnOneError::Launch(other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation_roundtrip_and_display() {
        let v = ValidationError::new("Csr", "offsets", Some(17), "offsets[17] > offsets[18]");
        let e = GnnOneError::from(v.clone());
        assert_eq!(e.kind(), "validation");
        let json = e.to_json().to_string_compact();
        assert!(json.contains("\"offsets\""));
        let back = GnnOneError::from_json(&crate::jsonio::parse(&json).unwrap()).unwrap();
        assert_eq!(back, e);
        assert!(v.to_string().contains("offsets[17]"));
    }

    #[test]
    fn abort_roundtrip_carries_reason_payload() {
        let a = KernelAbort {
            kernel: "GnnOne".into(),
            warp_id: 3,
            ops: 1 << 22,
            budget: 1 << 22,
            reason: AbortReason::GlobalOutOfBounds { index: 99, len: 64 },
        };
        let e: GnnOneError = a.clone().into();
        let back = GnnOneError::from_json(
            &crate::jsonio::parse(&e.to_json().to_string_compact()).unwrap(),
        )
        .unwrap();
        assert_eq!(back, e);
        assert!(a.to_string().contains("element 99"));
    }

    #[test]
    fn launch_error_conversion_routes_aborts() {
        let abort = LaunchError::Aborted(KernelAbort {
            kernel: "k".into(),
            warp_id: 0,
            ops: 10,
            budget: 5,
            reason: AbortReason::Watchdog,
        });
        assert_eq!(GnnOneError::from(abort).kind(), "abort");
        let oom = LaunchError::OutOfMemory {
            requested: 10,
            available: 5,
        };
        assert_eq!(GnnOneError::from(oom).kind(), "launch");
    }

    #[test]
    fn every_variant_serializes_with_kind() {
        let cases = vec![
            GnnOneError::Io {
                path: "a.mtx".into(),
                detail: "missing".into(),
            },
            GnnOneError::Parse {
                source: "a.mtx".into(),
                line: 7,
                detail: "bad token".into(),
            },
            GnnOneError::Panic {
                context: "spmm/G3".into(),
                detail: "index out of bounds".into(),
            },
            GnnOneError::Config {
                detail: "unknown dataset".into(),
            },
            GnnOneError::ShardAbort(ShardAbort {
                kernel: "GnnOne".into(),
                shard: 2,
                shards: 4,
                attempts: 3,
                completed: 2,
                fault: Some("shard-kill".into()),
                detail: "chaos-injected fatal warp trap".into(),
            }),
            GnnOneError::ShardAbort(ShardAbort {
                kernel: "CuSparse".into(),
                shard: 0,
                shards: 8,
                attempts: 1,
                completed: 0,
                fault: None,
                detail: "organic failure".into(),
            }),
        ];
        for e in cases {
            let json = e.to_json().to_string_compact();
            let back = GnnOneError::from_json(&crate::jsonio::parse(&json).unwrap()).unwrap();
            assert_eq!(back, e, "roundtrip failed for {json}");
            assert!(json.contains(&format!("\"{}\"", e.kind())));
        }
    }

    #[test]
    fn service_variants_roundtrip_with_kind() {
        let cases = vec![
            GnnOneError::Rejected {
                queue_depth: 256,
                retry_after_ms: 12,
            },
            GnnOneError::DeadlineExceeded {
                deadline_ms: 100,
                now_ms: 95,
                needed_ms: 9,
            },
        ];
        for e in cases {
            let json = e.to_json().to_string_compact();
            let back = GnnOneError::from_json(&crate::jsonio::parse(&json).unwrap()).unwrap();
            assert_eq!(back, e, "roundtrip failed for {json}");
            assert!(json.contains(&format!("\"{}\"", e.kind())), "{json}");
        }
    }

    #[test]
    fn rejected_kind_and_display_carry_backpressure_hint() {
        let e = GnnOneError::Rejected {
            queue_depth: 64,
            retry_after_ms: 7,
        };
        assert_eq!(e.kind(), "rejected");
        let text = e.to_string();
        assert!(text.contains("depth 64"), "{text}");
        assert!(text.contains("7 ms"), "{text}");
    }

    #[test]
    fn deadline_exceeded_kind_and_display_name_the_margin() {
        let e = GnnOneError::DeadlineExceeded {
            deadline_ms: 250,
            now_ms: 248,
            needed_ms: 30,
        };
        assert_eq!(e.kind(), "deadline-exceeded");
        let text = e.to_string();
        assert!(text.contains("needed 30 ms"), "{text}");
        assert!(text.contains("t=248"), "{text}");
        assert!(text.contains("250"), "{text}");
    }

    #[test]
    fn shard_abort_display_names_shard_and_fault() {
        let a = ShardAbort {
            kernel: "GnnOne".into(),
            shard: 3,
            shards: 8,
            attempts: 3,
            completed: 3,
            fault: Some("halo-drop".into()),
            detail: "halo checksum mismatch".into(),
        };
        let text = a.to_string();
        assert!(text.contains("shard 3/8"), "{text}");
        assert!(text.contains("3 shards checkpointed"), "{text}");
        assert!(text.contains("halo-drop"), "{text}");
        assert_eq!(GnnOneError::from(a).kind(), "shard-abort");
    }
}
