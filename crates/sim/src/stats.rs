//! Execution statistics gathered by the simulator.

use serde::{Deserialize, Serialize};

/// Counters accumulated while one warp executes. Aggregated into
/// [`KernelStats`] after the launch.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WarpStats {
    /// Global-load instructions issued.
    pub loads: u64,
    /// 32-byte sectors read from DRAM.
    pub read_sectors: u64,
    /// Useful bytes requested by loads.
    pub read_useful_bytes: u64,
    /// Global-store instructions issued.
    pub stores: u64,
    /// 32-byte sectors written to DRAM.
    pub write_sectors: u64,
    /// Shared-memory accesses (loads + stores).
    pub shared_accesses: u64,
    /// Barriers / fences executed (including those implied by shuffles).
    pub barriers: u64,
    /// Warp-shuffle exchange rounds.
    pub shfl_rounds: u64,
    /// Global atomic instructions.
    pub atomics: u64,
    /// Extra serialization steps caused by intra-warp atomic address
    /// conflicts (0 when all lanes hit distinct addresses).
    pub atomic_conflicts: u64,
    /// Warp-wide compute instructions (FMA-equivalents).
    pub compute_instr: u64,
    /// Cycles this warp would take running alone on an SM (scoreboard
    /// model: issue + exposed memory latency).
    pub solo_cycles: u64,
    /// Portion of `solo_cycles` spent stalled on memory (load latency the
    /// scoreboard could not overlap). Basis of the Fig. 11 breakdown.
    pub mem_stall_cycles: u64,
}

impl WarpStats {
    /// Accumulate another warp's counters into `self`.
    pub fn merge(&mut self, other: &WarpStats) {
        self.loads += other.loads;
        self.read_sectors += other.read_sectors;
        self.read_useful_bytes += other.read_useful_bytes;
        self.stores += other.stores;
        self.write_sectors += other.write_sectors;
        self.shared_accesses += other.shared_accesses;
        self.barriers += other.barriers;
        self.shfl_rounds += other.shfl_rounds;
        self.atomics += other.atomics;
        self.atomic_conflicts += other.atomic_conflicts;
        self.compute_instr += other.compute_instr;
        self.solo_cycles += other.solo_cycles;
        self.mem_stall_cycles += other.mem_stall_cycles;
    }
}

/// Launch-wide statistics, reported by [`crate::Gpu::launch`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct KernelStats {
    /// Number of warps executed.
    pub warps: u64,
    /// Global-load instructions issued.
    pub loads: u64,
    /// DRAM read traffic in bytes (sectors × 32).
    pub read_bytes: u64,
    /// Bytes actually requested by active lanes — `read_bytes -
    /// read_useful_bytes` is wasted bandwidth from poor coalescing.
    pub read_useful_bytes: u64,
    /// DRAM write traffic in bytes.
    pub write_bytes: u64,
    /// Shared-memory accesses.
    pub shared_accesses: u64,
    /// Barriers executed.
    pub barriers: u64,
    /// Warp-shuffle rounds.
    pub shfl_rounds: u64,
    /// Global atomics issued.
    pub atomics: u64,
    /// Intra-warp atomic serialization steps.
    pub atomic_conflicts: u64,
    /// Warp-wide compute instructions.
    pub compute_instr: u64,
    /// Sum of per-warp solo cycles.
    pub total_solo_cycles: u64,
    /// Largest single-warp solo time (workload-imbalance witness).
    pub max_warp_cycles: u64,
    /// Sum of per-warp memory stall cycles.
    pub total_mem_stall_cycles: u64,
}

impl KernelStats {
    /// Fold one warp's counters into the launch totals.
    pub fn absorb_warp(&mut self, w: &WarpStats) {
        self.warps += 1;
        self.loads += w.loads;
        self.read_bytes += w.read_sectors * crate::coalesce::SECTOR_BYTES;
        self.read_useful_bytes += w.read_useful_bytes;
        self.write_bytes += w.write_sectors * crate::coalesce::SECTOR_BYTES;
        self.shared_accesses += w.shared_accesses;
        self.barriers += w.barriers;
        self.shfl_rounds += w.shfl_rounds;
        self.atomics += w.atomics;
        self.atomic_conflicts += w.atomic_conflicts;
        self.compute_instr += w.compute_instr;
        self.total_solo_cycles += w.solo_cycles;
        self.max_warp_cycles = self.max_warp_cycles.max(w.solo_cycles);
        self.total_mem_stall_cycles += w.mem_stall_cycles;
    }

    /// Merge launch totals (used when reducing parallel partial sums).
    pub fn merge(&mut self, other: &KernelStats) {
        self.warps += other.warps;
        self.loads += other.loads;
        self.read_bytes += other.read_bytes;
        self.read_useful_bytes += other.read_useful_bytes;
        self.write_bytes += other.write_bytes;
        self.shared_accesses += other.shared_accesses;
        self.barriers += other.barriers;
        self.shfl_rounds += other.shfl_rounds;
        self.atomics += other.atomics;
        self.atomic_conflicts += other.atomic_conflicts;
        self.compute_instr += other.compute_instr;
        self.total_solo_cycles += other.total_solo_cycles;
        self.max_warp_cycles = self.max_warp_cycles.max(other.max_warp_cycles);
        self.total_mem_stall_cycles += other.total_mem_stall_cycles;
    }

    /// Fraction of read traffic that was useful (1.0 = perfectly coalesced).
    pub fn coalescing_efficiency(&self) -> f64 {
        if self.read_bytes == 0 {
            1.0
        } else {
            self.read_useful_bytes as f64 / self.read_bytes as f64
        }
    }

    /// Fraction of warp time spent stalled on memory — the paper's
    /// "data load ≫ actual compute" observation (Fig. 11).
    pub fn mem_stall_fraction(&self) -> f64 {
        if self.total_solo_cycles == 0 {
            0.0
        } else {
            self.total_mem_stall_cycles as f64 / self.total_solo_cycles as f64
        }
    }

    /// Serializes through the dependency-free [`crate::jsonio`] path.
    pub fn to_json(&self) -> crate::jsonio::Json {
        use crate::jsonio::Json;
        Json::obj(vec![
            ("warps", Json::U64(self.warps)),
            ("loads", Json::U64(self.loads)),
            ("read_bytes", Json::U64(self.read_bytes)),
            ("read_useful_bytes", Json::U64(self.read_useful_bytes)),
            ("write_bytes", Json::U64(self.write_bytes)),
            ("shared_accesses", Json::U64(self.shared_accesses)),
            ("barriers", Json::U64(self.barriers)),
            ("shfl_rounds", Json::U64(self.shfl_rounds)),
            ("atomics", Json::U64(self.atomics)),
            ("atomic_conflicts", Json::U64(self.atomic_conflicts)),
            ("compute_instr", Json::U64(self.compute_instr)),
            ("total_solo_cycles", Json::U64(self.total_solo_cycles)),
            ("max_warp_cycles", Json::U64(self.max_warp_cycles)),
            (
                "total_mem_stall_cycles",
                Json::U64(self.total_mem_stall_cycles),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absorb_warp_accumulates() {
        let mut ks = KernelStats::default();
        let w = WarpStats {
            loads: 2,
            read_sectors: 8,
            read_useful_bytes: 256,
            solo_cycles: 100,
            mem_stall_cycles: 60,
            ..Default::default()
        };
        ks.absorb_warp(&w);
        ks.absorb_warp(&w);
        assert_eq!(ks.warps, 2);
        assert_eq!(ks.loads, 4);
        assert_eq!(ks.read_bytes, 512);
        assert_eq!(ks.max_warp_cycles, 100);
        assert!((ks.coalescing_efficiency() - 1.0).abs() < 1e-12);
        assert!((ks.mem_stall_fraction() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn merge_takes_max_of_max() {
        let mut a = KernelStats {
            max_warp_cycles: 5,
            ..Default::default()
        };
        let b = KernelStats {
            max_warp_cycles: 9,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.max_warp_cycles, 9);
    }

    #[test]
    fn empty_stats_have_unit_efficiency() {
        let ks = KernelStats::default();
        assert_eq!(ks.coalescing_efficiency(), 1.0);
        assert_eq!(ks.mem_stall_fraction(), 0.0);
    }

    fn sample_warp(k: u64) -> WarpStats {
        WarpStats {
            loads: k,
            read_sectors: 3 * k + 1,
            read_useful_bytes: 17 * k,
            stores: k / 2,
            write_sectors: k / 3,
            shared_accesses: 5 * k,
            barriers: k % 7,
            shfl_rounds: k % 5,
            atomics: k % 3,
            atomic_conflicts: k % 2,
            compute_instr: 11 * k,
            solo_cycles: 100 * k + 13,
            mem_stall_cycles: 40 * k,
        }
    }

    fn sample_kernel(k: u64) -> KernelStats {
        let mut ks = KernelStats::default();
        ks.absorb_warp(&sample_warp(k));
        ks.absorb_warp(&sample_warp(k + 3));
        ks
    }

    #[test]
    fn warp_merge_is_associative() {
        let (a, b, c) = (sample_warp(2), sample_warp(9), sample_warp(31));
        let mut left = a;
        left.merge(&b);
        left.merge(&c);
        let mut bc = b;
        bc.merge(&c);
        let mut right = a;
        right.merge(&bc);
        assert_eq!(left, right);
    }

    #[test]
    fn kernel_merge_is_associative_and_commutative() {
        let (a, b, c) = (sample_kernel(1), sample_kernel(4), sample_kernel(7));
        let mut left = a;
        left.merge(&b);
        left.merge(&c);
        let mut bc = b;
        bc.merge(&c);
        let mut right = a;
        right.merge(&bc);
        assert_eq!(left, right);
        // Commutativity: the rayon reduce may pair partials in any
        // grouping; order of merge must not matter either.
        let mut ab = a;
        ab.merge(&b);
        let mut ba = b;
        ba.merge(&a);
        assert_eq!(ab, ba);
    }

    #[test]
    fn rollup_equals_direct_absorb() {
        // Absorbing warps one by one equals absorbing into partials and
        // merging the partials — the invariant the parallel CTA reduce
        // relies on.
        let warps: Vec<WarpStats> = (0..10).map(sample_warp).collect();
        let mut direct = KernelStats::default();
        for w in &warps {
            direct.absorb_warp(w);
        }
        let mut left = KernelStats::default();
        for w in &warps[..4] {
            left.absorb_warp(w);
        }
        let mut right = KernelStats::default();
        for w in &warps[4..] {
            right.absorb_warp(w);
        }
        left.merge(&right);
        assert_eq!(direct, left);
    }

    #[test]
    fn warp_stats_merge() {
        let mut a = WarpStats {
            loads: 1,
            solo_cycles: 10,
            ..Default::default()
        };
        let b = WarpStats {
            loads: 2,
            solo_cycles: 20,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.loads, 3);
        assert_eq!(a.solo_cycles, 30);
    }
}
