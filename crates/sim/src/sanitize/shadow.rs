//! Per-warp shadow state: what the sanitizer records while one warp runs.
//!
//! A [`WarpShadow`] is attached to a [`crate::WarpCtx`] by the engine when a
//! [`super::Sanitizer`] is installed on the [`crate::Gpu`]. Every
//! instrumented operation consults it *before* touching device or shared
//! memory, so an out-of-bounds access becomes a structured finding (and the
//! access is skipped) instead of a host panic. The shadow never touches the
//! warp's clock or statistics — attaching a sanitizer cannot perturb the
//! timing model.
//!
//! Shared-memory words carry a `(barrier epoch, writing lane)` tag; global
//! cells are keyed by `(buffer base address, element index)` and remember
//! the first lane of each access kind, which is all the cross-warp merge in
//! [`super::Sanitizer::audit_launch`] needs.

use std::collections::BTreeMap;

use super::{CheckKind, Finding, SanitizeConfig};

/// The kind of a global-memory access, for shadow cells and diagnostics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum GlobalKind {
    /// A plain load.
    Read,
    /// A plain (fire-and-forget) store.
    Write,
    /// An `atomicAdd`.
    Atomic,
}

impl GlobalKind {
    fn as_str(self) -> &'static str {
        match self {
            GlobalKind::Read => "load",
            GlobalKind::Write => "store",
            GlobalKind::Atomic => "atomic",
        }
    }
}

/// Per-kind first-accessor lanes of one global cell within one warp.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct CellAccess {
    /// First lane that plainly read the cell, if any.
    pub read: Option<u8>,
    /// First lane that plainly wrote the cell, if any.
    pub write: Option<u8>,
    /// First lane that atomically updated the cell, if any.
    pub atomic: Option<u8>,
}

/// Tag on one word of per-warp shared memory.
#[derive(Debug, Clone, Copy, Default)]
struct SharedTag {
    written: bool,
    epoch: u64,
    lane: u8,
}

/// Shadow state for one warp of one launch.
#[derive(Debug)]
pub(crate) struct WarpShadow {
    warp_id: usize,
    config: SanitizeConfig,
    /// Barrier epoch: incremented by every `barrier()`.
    epoch: u64,
    /// Total barriers executed (for the divergence audit).
    barriers: u64,
    shared: Vec<SharedTag>,
    /// Global cells touched: `(buffer base addr, element index)` → lanes.
    global: BTreeMap<(u64, u64), CellAccess>,
    findings: Vec<Finding>,
    suppressed: u64,
}

impl WarpShadow {
    pub(crate) fn new(warp_id: usize, config: SanitizeConfig, shared_words: usize) -> Self {
        Self {
            warp_id,
            config,
            epoch: 0,
            barriers: 0,
            shared: vec![SharedTag::default(); shared_words],
            global: BTreeMap::new(),
            findings: Vec::new(),
            suppressed: 0,
        }
    }

    pub(crate) fn warp_id(&self) -> usize {
        self.warp_id
    }

    pub(crate) fn barriers(&self) -> u64 {
        self.barriers
    }

    pub(crate) fn global_cells(&self) -> &BTreeMap<(u64, u64), CellAccess> {
        &self.global
    }

    pub(crate) fn suppressed(&self) -> u64 {
        self.suppressed
    }

    pub(crate) fn take_findings(&mut self) -> Vec<Finding> {
        std::mem::take(&mut self.findings)
    }

    fn push(&mut self, finding: Finding) {
        if self.findings.len() >= self.config.max_findings_per_launch {
            self.suppressed += 1;
        } else {
            self.findings.push(finding);
        }
    }

    /// Checks one lane's global access of `width` consecutive elements at
    /// `idx` into a buffer of `len` elements based at `base`. Returns
    /// `false` when the access is out of bounds and must be skipped.
    pub(crate) fn check_global(
        &mut self,
        base: u64,
        len: usize,
        idx: usize,
        width: usize,
        lane: usize,
        kind: GlobalKind,
    ) -> bool {
        if self.config.boundscheck && idx + width > len {
            let f = Finding {
                kind: CheckKind::GlobalOutOfBounds,
                kernel: String::new(),
                warp: self.warp_id,
                lane: Some(lane),
                other_warp: None,
                other_lane: None,
                addr: Some(base + (idx as u64) * 4),
                index: Some(idx as u64),
                epoch: None,
                detail: format!(
                    "{} of element {idx}..{} beyond buffer of {len} elements",
                    kind.as_str(),
                    idx + width
                ),
            };
            self.push(f);
            return false;
        }
        // Vector alignment: float2 needs 8-byte (idx % 2), float4 needs
        // 16-byte (idx % 4). float3 is three 4-byte-aligned scalar words on
        // CUDA — no extra constraint; that is exactly why the paper's §4.4
        // picks float3 for feature length 6.
        if self.config.boundscheck && (width == 2 || width == 4) && !idx.is_multiple_of(width) {
            let f = Finding {
                kind: CheckKind::MisalignedAccess,
                kernel: String::new(),
                warp: self.warp_id,
                lane: Some(lane),
                other_warp: None,
                other_lane: None,
                addr: Some(base + (idx as u64) * 4),
                index: Some(idx as u64),
                epoch: None,
                detail: format!(
                    "vector {} of width {width} at element {idx}: base must be \
                     {width}-element aligned",
                    kind.as_str()
                ),
            };
            self.push(f);
            // Misalignment is diagnosed but the access still executes — the
            // functional simulator has no alignment fault to model.
        }
        if self.config.racecheck {
            let l = lane as u8;
            for k in 0..width {
                let cell = self.global.entry((base, (idx + k) as u64)).or_default();
                let slot = match kind {
                    GlobalKind::Read => &mut cell.read,
                    GlobalKind::Write => &mut cell.write,
                    GlobalKind::Atomic => &mut cell.atomic,
                };
                if slot.is_none() {
                    *slot = Some(l);
                }
            }
        }
        true
    }

    /// Checks one lane's shared-memory store of word `idx`. Returns `false`
    /// when the word is outside the warp's declared allocation.
    pub(crate) fn shared_write(&mut self, idx: usize, lane: usize, limit: usize) -> bool {
        if idx >= limit {
            let f = self.shared_oob(idx, lane, limit, "store");
            self.push(f);
            return false;
        }
        if self.config.sharedcheck {
            self.shared[idx] = SharedTag {
                written: true,
                epoch: self.epoch,
                lane: lane as u8,
            };
        }
        true
    }

    /// Checks one lane's shared-memory load of word `idx`. Returns `false`
    /// when the word is outside the warp's declared allocation.
    pub(crate) fn shared_read(&mut self, idx: usize, lane: usize, limit: usize) -> bool {
        if idx >= limit {
            let f = self.shared_oob(idx, lane, limit, "load");
            self.push(f);
            return false;
        }
        if self.config.sharedcheck {
            let tag = self.shared[idx];
            if !tag.written {
                let f = Finding {
                    kind: CheckKind::SharedUninitialized,
                    kernel: String::new(),
                    warp: self.warp_id,
                    lane: Some(lane),
                    other_warp: None,
                    other_lane: None,
                    addr: None,
                    index: Some(idx as u64),
                    epoch: Some(self.epoch),
                    detail: format!(
                        "read of shared word {idx} never written by this warp \
                         (shared memory is uninitialized on hardware)"
                    ),
                };
                self.push(f);
            } else if tag.epoch == self.epoch && usize::from(tag.lane) != lane {
                let f = Finding {
                    kind: CheckKind::SharedReadInWriteEpoch,
                    kernel: String::new(),
                    warp: self.warp_id,
                    lane: Some(lane),
                    other_warp: Some(self.warp_id),
                    other_lane: Some(usize::from(tag.lane)),
                    addr: None,
                    index: Some(idx as u64),
                    epoch: Some(self.epoch),
                    detail: format!(
                        "lane {lane} reads shared word {idx} written by lane {} in the \
                         same barrier epoch {} — missing __syncwarp between them",
                        tag.lane, self.epoch
                    ),
                };
                self.push(f);
            }
        }
        true
    }

    fn shared_oob(&self, idx: usize, lane: usize, limit: usize, what: &str) -> Finding {
        Finding {
            kind: CheckKind::SharedOutOfBounds,
            kernel: String::new(),
            warp: self.warp_id,
            lane: Some(lane),
            other_warp: None,
            other_lane: None,
            addr: None,
            index: Some(idx as u64),
            epoch: Some(self.epoch),
            detail: format!(
                "shared {what} of word {idx} beyond the {limit} words this warp's \
                 KernelResources declaration covers"
            ),
        }
    }

    /// Called on every `barrier()`: advances the epoch.
    pub(crate) fn on_barrier(&mut self) {
        self.epoch += 1;
        self.barriers += 1;
    }
}
