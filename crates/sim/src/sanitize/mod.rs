//! Kernel sanitizer: the simulator's `compute-sanitizer` analogue.
//!
//! A [`Sanitizer`] attaches to a [`crate::Gpu`] exactly like a
//! [`crate::trace::TraceSession`] — one `Arc` in a `OnceLock`, one atomic
//! load per launch when absent, zero cost when disabled. While attached it
//! runs four families of checks over every launch:
//!
//! 1. **Global-memory racecheck** (`racecheck`, the `compute-sanitizer
//!    --tool racecheck` analogue): per-element shadow cells record which
//!    warps plainly read, plainly wrote, or atomically updated each device
//!    word. After the launch the per-warp cells are merged; a plain write
//!    that overlaps *any* access from a different warp — or a plain read /
//!    atomic overlapping a foreign plain write — is a data race on real
//!    hardware (last-writer-wins here). Buffers registered through
//!    [`Sanitizer::allow_last_writer_wins`] are exempt.
//! 2. **Shared-memory phase check** (`sharedcheck`, part racecheck, part
//!    `initcheck`): every shared word carries a `(barrier epoch, writing
//!    lane)` tag. A read of a word written by a *different* lane in the
//!    *same* epoch means a missing `__syncwarp`; a read of a never-written
//!    word is an uninitialized shared read.
//! 3. **Bounds + alignment** (`boundscheck`, the `memcheck` analogue):
//!    every `load*`/`store*`/`atomic_add*` is checked against the buffer's
//!    element count, and vector accesses (`load_f32x2`/`load_f32x4`) against
//!    their natural alignment. `float3` is deliberately unconstrained — it
//!    is three scalar words on CUDA, which is why the paper's §4.4 picks it
//!    for feature length 6.
//! 4. **Barrier audit** (`synccheck`): `KernelResources` invariants are
//!    validated at launch (see [`crate::KernelResources::validate`]), the
//!    declared shared allocation must cover every word touched, and — when
//!    [`SanitizeConfig::cta_scope_sync`] is set — all warps of a CTA must
//!    execute the same number of barriers. That last check is off by
//!    default because this simulator's `barrier()` is warp-scoped
//!    (`__syncwarp`), under which per-warp-varying barrier counts are legal
//!    and the shipped GE-SpMM-style chunk loops rely on exactly that.
//!
//! Findings are structured ([`Finding`]) and serialize through
//! [`crate::jsonio`], so `gnnone-prof sanitize` and the `--sanitize` flags
//! on the figure binaries can emit machine-readable reports.

mod shadow;

pub(crate) use shadow::{GlobalKind, WarpShadow};

use std::collections::{BTreeMap, BTreeSet};
use std::sync::{Mutex, MutexGuard};

use crate::buffer::{DeviceBuffer, Pod32};
use crate::jsonio::Json;

/// Locks a mutex, recovering the data from a poisoned lock. The sanitizer
/// is shared across launches that the sweep layer isolates with
/// `catch_unwind`; a panic while a guard was held must not turn every
/// later audit into a second panic — the protected state (findings,
/// allowlist) stays internally consistent under any interleaving of the
/// operations that take these locks.
fn lock_unpoisoned<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Which checks a [`Sanitizer`] runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SanitizeConfig {
    /// Cross-warp global-memory race detection.
    pub racecheck: bool,
    /// Shared-memory epoch + initialization checking.
    pub sharedcheck: bool,
    /// Global bounds and vector-alignment checking.
    pub boundscheck: bool,
    /// Barrier-count divergence audit (requires `cta_scope_sync` to flag
    /// anything beyond resource-declaration violations).
    pub synccheck: bool,
    /// Treat `barrier()` as CTA-scoped (`__syncthreads`) for the divergence
    /// audit. Off by default: the reproduced kernels synchronize at warp
    /// scope, where divergent per-warp barrier counts are legal.
    pub cta_scope_sync: bool,
    /// Cap on recorded findings per launch; the excess is counted in
    /// [`LaunchAudit::suppressed`].
    pub max_findings_per_launch: usize,
}

impl SanitizeConfig {
    /// Every check on (except [`Self::cta_scope_sync`], which changes the
    /// barrier semantics rather than adding a check), 64 findings per launch.
    pub fn on() -> Self {
        Self {
            racecheck: true,
            sharedcheck: true,
            boundscheck: true,
            synccheck: true,
            cta_scope_sync: false,
            max_findings_per_launch: 64,
        }
    }
}

impl Default for SanitizeConfig {
    fn default() -> Self {
        Self::on()
    }
}

/// The category of a [`Finding`] — one slug per failure mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckKind {
    /// Two warps accessed the same global word and at least one side was a
    /// plain (non-atomic) write.
    GlobalRace,
    /// A global access past the end of its buffer.
    GlobalOutOfBounds,
    /// A vector access whose base element is not width-aligned.
    MisalignedAccess,
    /// A shared word read by one lane in the same barrier epoch another lane
    /// wrote it (missing `__syncwarp`).
    SharedReadInWriteEpoch,
    /// A shared word read before any write.
    SharedUninitialized,
    /// A shared access beyond the words covered by the kernel's declared
    /// `shared_bytes_per_cta`.
    SharedOutOfBounds,
    /// Warps of one CTA executed different barrier counts under
    /// [`SanitizeConfig::cta_scope_sync`].
    BarrierDivergence,
    /// A chaos-injected memory bit flip (see [`crate::chaos::FaultKind`])
    /// observed by a load — the simulator's analogue of the SECDED ECC
    /// with which datacenter GPUs detect single-event upsets in DRAM and
    /// on-chip SRAM. Recorded at corruption time, so the finding survives
    /// even when the kernel later traps on the corrupted value.
    MemoryEcc,
}

impl CheckKind {
    /// Stable slug used in JSON reports.
    pub fn as_str(self) -> &'static str {
        match self {
            CheckKind::GlobalRace => "global-race",
            CheckKind::GlobalOutOfBounds => "global-oob",
            CheckKind::MisalignedAccess => "misaligned-access",
            CheckKind::SharedReadInWriteEpoch => "shared-same-epoch",
            CheckKind::SharedUninitialized => "shared-uninitialized",
            CheckKind::SharedOutOfBounds => "shared-oob",
            CheckKind::BarrierDivergence => "barrier-divergence",
            CheckKind::MemoryEcc => "memory-ecc",
        }
    }
}

/// One structured sanitizer diagnostic.
#[derive(Debug, Clone, PartialEq)]
pub struct Finding {
    /// Which check fired.
    pub kind: CheckKind,
    /// Name of the kernel whose launch produced the finding.
    pub kernel: String,
    /// Warp that performed (or, for races, first performed) the access.
    pub warp: usize,
    /// Lane within [`Self::warp`], when attributable to one lane.
    pub lane: Option<usize>,
    /// The conflicting warp, for races and same-epoch findings.
    pub other_warp: Option<usize>,
    /// The conflicting lane within [`Self::other_warp`].
    pub other_lane: Option<usize>,
    /// Device byte address, for global findings.
    pub addr: Option<u64>,
    /// Element / word index into the buffer or shared allocation.
    pub index: Option<u64>,
    /// Barrier epoch at the moment of the access, for shared/barrier
    /// findings.
    pub epoch: Option<u64>,
    /// Human-readable one-line description.
    pub detail: String,
}

impl Finding {
    /// Serializes through [`crate::jsonio`]; absent optional fields are
    /// omitted rather than null.
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("check", Json::Str(self.kind.as_str().into())),
            ("kernel", Json::Str(self.kernel.clone())),
            ("warp", Json::U64(self.warp as u64)),
        ];
        if let Some(l) = self.lane {
            fields.push(("lane", Json::U64(l as u64)));
        }
        if let Some(w) = self.other_warp {
            fields.push(("other_warp", Json::U64(w as u64)));
        }
        if let Some(l) = self.other_lane {
            fields.push(("other_lane", Json::U64(l as u64)));
        }
        if let Some(a) = self.addr {
            fields.push(("addr", Json::U64(a)));
        }
        if let Some(i) = self.index {
            fields.push(("index", Json::U64(i)));
        }
        if let Some(e) = self.epoch {
            fields.push(("epoch", Json::U64(e)));
        }
        fields.push(("detail", Json::Str(self.detail.clone())));
        Json::obj(fields)
    }
}

/// The sanitizer's verdict on one kernel launch.
#[derive(Debug, Clone, PartialEq)]
pub struct LaunchAudit {
    /// Kernel name as reported by [`crate::WarpKernel::name`].
    pub kernel: String,
    /// Warps the launch executed.
    pub warps: u64,
    /// Findings, in warp order, capped per
    /// [`SanitizeConfig::max_findings_per_launch`].
    pub findings: Vec<Finding>,
    /// Findings dropped by the cap.
    pub suppressed: u64,
}

impl LaunchAudit {
    /// Serializes through [`crate::jsonio`].
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("kernel", Json::Str(self.kernel.clone())),
            ("warps", Json::U64(self.warps)),
            (
                "findings",
                Json::Arr(self.findings.iter().map(Finding::to_json).collect()),
            ),
            ("suppressed", Json::U64(self.suppressed)),
        ])
    }
}

/// The shadow-state checker. Attach with [`crate::Gpu::attach_sanitizer`]
/// (or [`crate::Gpu::enable_sanitizer`]); thereafter every launch on that
/// `Gpu` is audited and the results accumulate here.
#[derive(Debug)]
pub struct Sanitizer {
    config: SanitizeConfig,
    /// Base addresses of buffers where last-writer-wins races are intended.
    allow: Mutex<BTreeSet<u64>>,
    launches: Mutex<Vec<LaunchAudit>>,
    /// ECC events, recorded at corruption time rather than through a warp
    /// shadow so they survive a launch that subsequently panics or aborts
    /// on the corrupted value.
    ecc_events: Mutex<Vec<Finding>>,
}

impl Sanitizer {
    /// Creates a sanitizer with the given check configuration.
    pub fn new(config: SanitizeConfig) -> Self {
        Self {
            config,
            allow: Mutex::new(BTreeSet::new()),
            launches: Mutex::new(Vec::new()),
            ecc_events: Mutex::new(Vec::new()),
        }
    }

    /// Records a chaos-injected bit flip observed by an index load — the
    /// [`CheckKind::MemoryEcc`] analogue of SECDED detection. Flushed
    /// immediately (not via the warp shadow) so the event is preserved even
    /// when the kernel traps on the corrupted value before its launch
    /// audit is assembled.
    pub(crate) fn record_ecc(
        &self,
        kernel: &str,
        warp: usize,
        lane: usize,
        index: u64,
        detail: String,
    ) {
        lock_unpoisoned(&self.ecc_events).push(Finding {
            kind: CheckKind::MemoryEcc,
            kernel: kernel.to_string(),
            warp,
            lane: Some(lane),
            other_warp: None,
            other_lane: None,
            addr: None,
            index: Some(index),
            epoch: None,
            detail,
        });
    }

    /// ECC events recorded so far, in corruption order.
    pub fn ecc_events(&self) -> Vec<Finding> {
        lock_unpoisoned(&self.ecc_events).clone()
    }

    /// The active configuration.
    pub fn config(&self) -> SanitizeConfig {
        self.config
    }

    /// Exempts `buf` from the global racecheck: concurrent plain stores to
    /// it are declared intentional last-writer-wins (the allowlist API of
    /// check 1). Bounds and alignment checks still apply.
    pub fn allow_last_writer_wins<T: Pod32>(&self, buf: &DeviceBuffer<T>) {
        lock_unpoisoned(&self.allow).insert(buf.addr_base());
    }

    /// Audits of every launch since attachment, in launch order.
    pub fn launches(&self) -> Vec<LaunchAudit> {
        lock_unpoisoned(&self.launches).clone()
    }

    /// Total recorded findings across all launches (suppressed ones not
    /// included).
    pub fn finding_count(&self) -> u64 {
        let launch_findings: u64 = lock_unpoisoned(&self.launches)
            .iter()
            .map(|l| l.findings.len() as u64 + l.suppressed)
            .sum();
        launch_findings + lock_unpoisoned(&self.ecc_events).len() as u64
    }

    /// `true` when no launch produced any finding.
    pub fn is_clean(&self) -> bool {
        self.finding_count() == 0
    }

    /// Full report as a [`crate::jsonio::Json`] document.
    pub fn report_json(&self) -> Json {
        let launches = lock_unpoisoned(&self.launches);
        let ecc = lock_unpoisoned(&self.ecc_events);
        let launch_findings: u64 = launches
            .iter()
            .map(|l| l.findings.len() as u64 + l.suppressed)
            .sum();
        Json::obj(vec![
            ("launches", Json::U64(launches.len() as u64)),
            ("findings", Json::U64(launch_findings + ecc.len() as u64)),
            (
                "audits",
                Json::Arr(launches.iter().map(LaunchAudit::to_json).collect()),
            ),
            (
                "ecc_events",
                Json::Arr(ecc.iter().map(Finding::to_json).collect()),
            ),
        ])
    }

    /// Writes the pretty-printed report to `path`.
    pub fn write(&self, path: &str) -> std::io::Result<()> {
        std::fs::write(path, self.report_json().to_string_pretty())
    }

    /// Merges per-warp shadows into one launch audit. Called by the engine
    /// after the reduce; `shadows` arrive in warp order.
    pub(crate) fn audit_launch(
        &self,
        kernel: &str,
        warps_per_cta: usize,
        mut shadows: Vec<WarpShadow>,
    ) {
        let mut findings: Vec<Finding> = Vec::new();
        let mut suppressed: u64 = 0;
        for sh in shadows.iter_mut() {
            for mut f in sh.take_findings() {
                f.kernel = kernel.to_string();
                findings.push(f);
            }
            suppressed += sh.suppressed();
        }

        if self.config.racecheck {
            let allow = lock_unpoisoned(&self.allow);
            // Merge per-warp cells in warp order so diagnostics are
            // deterministic: the reported pair is always (first warp to
            // touch the cell, first conflicting warp).
            #[derive(Default)]
            struct Owners {
                read: Option<(usize, u8)>,
                write: Option<(usize, u8)>,
                atomic: Option<(usize, u8)>,
            }
            let mut cells: BTreeMap<(u64, u64), Owners> = BTreeMap::new();
            let mut reported: BTreeSet<(u64, u64)> = BTreeSet::new();
            for sh in shadows.iter() {
                let warp = sh.warp_id();
                for (&key, acc) in sh.global_cells() {
                    if allow.contains(&key.0) {
                        continue;
                    }
                    let owners = cells.entry(key).or_default();
                    // A conflict needs a plain write on one side and any
                    // access from a different warp on the other.
                    let conflict = if acc.write.is_some() {
                        [owners.write, owners.atomic, owners.read]
                            .into_iter()
                            .flatten()
                            .find(|&(w, _)| w != warp)
                    } else {
                        owners.write.filter(|&(w, _)| w != warp)
                    };
                    if let Some((other_warp, other_lane)) = conflict {
                        if reported.insert(key) {
                            let lane = acc.write.or(acc.atomic).or(acc.read).unwrap_or(0);
                            let this_kind = if acc.write.is_some() {
                                "plain store"
                            } else if acc.atomic.is_some() {
                                "atomic"
                            } else {
                                "load"
                            };
                            let f = Finding {
                                kind: CheckKind::GlobalRace,
                                kernel: kernel.to_string(),
                                warp: other_warp,
                                lane: Some(usize::from(other_lane)),
                                other_warp: Some(warp),
                                other_lane: Some(usize::from(lane)),
                                addr: Some(key.0 + key.1 * 4),
                                index: Some(key.1),
                                epoch: None,
                                detail: format!(
                                    "warps {other_warp} and {warp} both touch element {} \
                                     (buffer base {:#x}) and at least one side is a plain \
                                     store ({this_kind} from warp {warp}); on hardware this \
                                     is last-writer-wins",
                                    key.1, key.0
                                ),
                            };
                            if findings.len() < self.config.max_findings_per_launch {
                                findings.push(f);
                            } else {
                                suppressed += 1;
                            }
                        }
                    }
                    if owners.read.is_none() {
                        owners.read = acc.read.map(|l| (warp, l));
                    }
                    if owners.write.is_none() {
                        owners.write = acc.write.map(|l| (warp, l));
                    }
                    if owners.atomic.is_none() {
                        owners.atomic = acc.atomic.map(|l| (warp, l));
                    }
                }
            }
        }

        if self.config.synccheck && self.config.cta_scope_sync && warps_per_cta > 1 {
            let mut ctas: BTreeMap<usize, Vec<(usize, u64)>> = BTreeMap::new();
            for sh in shadows.iter() {
                ctas.entry(sh.warp_id() / warps_per_cta)
                    .or_default()
                    .push((sh.warp_id(), sh.barriers()));
            }
            for (cta, warps) in &ctas {
                let expected = warps[0].1;
                for &(warp, count) in &warps[1..] {
                    if count != expected {
                        let f = Finding {
                            kind: CheckKind::BarrierDivergence,
                            kernel: kernel.to_string(),
                            warp,
                            lane: None,
                            other_warp: Some(warps[0].0),
                            other_lane: None,
                            addr: None,
                            index: None,
                            epoch: Some(count),
                            detail: format!(
                                "warp {warp} of CTA {cta} executed {count} barriers but \
                                 warp {} executed {expected}; under CTA-scoped sync all \
                                 warps must reach every barrier",
                                warps[0].0
                            ),
                        };
                        if findings.len() < self.config.max_findings_per_launch {
                            findings.push(f);
                        } else {
                            suppressed += 1;
                        }
                    }
                }
            }
        }

        lock_unpoisoned(&self.launches).push(LaunchAudit {
            kernel: kernel.to_string(),
            warps: shadows.len() as u64,
            findings,
            suppressed,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_on_enables_checks() {
        let c = SanitizeConfig::on();
        assert!(c.racecheck && c.sharedcheck && c.boundscheck && c.synccheck);
        assert!(!c.cta_scope_sync);
        assert_eq!(c, SanitizeConfig::default());
    }

    #[test]
    fn check_kind_slugs_are_stable() {
        assert_eq!(CheckKind::GlobalRace.as_str(), "global-race");
        assert_eq!(CheckKind::GlobalOutOfBounds.as_str(), "global-oob");
        assert_eq!(
            CheckKind::SharedReadInWriteEpoch.as_str(),
            "shared-same-epoch"
        );
        assert_eq!(CheckKind::BarrierDivergence.as_str(), "barrier-divergence");
    }

    #[test]
    fn finding_json_omits_absent_fields() {
        let f = Finding {
            kind: CheckKind::GlobalOutOfBounds,
            kernel: "k".into(),
            warp: 3,
            lane: Some(4),
            other_warp: None,
            other_lane: None,
            addr: Some(0x180),
            index: Some(16),
            epoch: None,
            detail: "d".into(),
        };
        let j = f.to_json();
        assert_eq!(j.get("check").and_then(Json::as_str), Some("global-oob"));
        assert_eq!(j.get("warp").and_then(Json::as_u64), Some(3));
        assert_eq!(j.get("lane").and_then(Json::as_u64), Some(4));
        assert!(j.get("other_warp").is_none());
        assert!(j.get("epoch").is_none());
    }

    #[test]
    fn empty_sanitizer_is_clean() {
        let s = Sanitizer::new(SanitizeConfig::on());
        assert!(s.is_clean());
        assert_eq!(s.finding_count(), 0);
        let j = s.report_json();
        assert_eq!(j.get("launches").and_then(Json::as_u64), Some(0));
    }

    #[test]
    fn race_merge_attributes_both_warps() {
        let cfg = SanitizeConfig::on();
        let s = Sanitizer::new(cfg);
        let mut a = WarpShadow::new(0, cfg, 0);
        let mut b = WarpShadow::new(1, cfg, 0);
        // Both warps plain-store element 5 of the same buffer.
        assert!(a.check_global(0x1000, 16, 5, 1, 2, GlobalKind::Write));
        assert!(b.check_global(0x1000, 16, 5, 1, 7, GlobalKind::Write));
        s.audit_launch("racy", 1, vec![a, b]);
        let audits = s.launches();
        assert_eq!(audits.len(), 1);
        let f = &audits[0].findings[0];
        assert_eq!(f.kind, CheckKind::GlobalRace);
        assert_eq!(f.warp, 0);
        assert_eq!(f.other_warp, Some(1));
        assert_eq!(f.lane, Some(2));
        assert_eq!(f.other_lane, Some(7));
        assert_eq!(f.index, Some(5));
    }

    #[test]
    fn allowlist_suppresses_race() {
        let cfg = SanitizeConfig::on();
        let s = Sanitizer::new(cfg);
        let buf = DeviceBuffer::<f32>::zeros(16);
        s.allow_last_writer_wins(&buf);
        let mut a = WarpShadow::new(0, cfg, 0);
        let mut b = WarpShadow::new(1, cfg, 0);
        a.check_global(buf.addr_base(), 16, 5, 1, 0, GlobalKind::Write);
        b.check_global(buf.addr_base(), 16, 5, 1, 0, GlobalKind::Write);
        s.audit_launch("allowed", 1, vec![a, b]);
        assert!(s.is_clean());
    }

    #[test]
    fn atomics_do_not_race_with_atomics() {
        let cfg = SanitizeConfig::on();
        let s = Sanitizer::new(cfg);
        let mut a = WarpShadow::new(0, cfg, 0);
        let mut b = WarpShadow::new(1, cfg, 0);
        a.check_global(0x2000, 8, 3, 1, 0, GlobalKind::Atomic);
        b.check_global(0x2000, 8, 3, 1, 0, GlobalKind::Atomic);
        s.audit_launch("atomic-only", 1, vec![a, b]);
        assert!(s.is_clean(), "{:?}", s.launches());
    }

    #[test]
    fn same_warp_accesses_never_race() {
        let cfg = SanitizeConfig::on();
        let s = Sanitizer::new(cfg);
        let mut a = WarpShadow::new(0, cfg, 0);
        a.check_global(0x3000, 8, 1, 1, 0, GlobalKind::Write);
        a.check_global(0x3000, 8, 1, 1, 5, GlobalKind::Read);
        s.audit_launch("solo", 1, vec![a]);
        assert!(s.is_clean());
    }

    #[test]
    fn barrier_divergence_requires_cta_scope() {
        let mut cfg = SanitizeConfig::on();
        let s = Sanitizer::new(cfg);
        let mut a = WarpShadow::new(0, cfg, 0);
        let b = WarpShadow::new(1, cfg, 0);
        a.on_barrier();
        s.audit_launch("warp-scope", 2, vec![a, b]);
        assert!(s.is_clean(), "warp-scoped sync must tolerate divergence");

        cfg.cta_scope_sync = true;
        let s = Sanitizer::new(cfg);
        let mut a = WarpShadow::new(0, cfg, 0);
        let b = WarpShadow::new(1, cfg, 0);
        a.on_barrier();
        s.audit_launch("cta-scope", 2, vec![a, b]);
        let audits = s.launches();
        assert_eq!(audits[0].findings.len(), 1);
        let f = &audits[0].findings[0];
        assert_eq!(f.kind, CheckKind::BarrierDivergence);
        assert_eq!(f.warp, 1);
        assert_eq!(f.other_warp, Some(0));
        assert_eq!(f.epoch, Some(0));
    }
}
