//! GPU hardware specification and timing parameters.
//!
//! The default parameterization, [`GpuSpec::a100_40gb`], approximates the
//! NVIDIA A100-40GB used by the paper's evaluation (§5). All values are
//! public and tunable so sensitivity studies can vary them (see the
//! `sim_params` ablation bench in `gnnone-bench`).

use serde::{Deserialize, Serialize};

use crate::jsonio::Json;

/// Static hardware characteristics of the simulated GPU.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GpuSpec {
    /// Human-readable name of the modelled part.
    pub name: String,
    /// Number of streaming multiprocessors.
    pub num_sms: usize,
    /// Maximum resident threads per SM.
    pub max_threads_per_sm: usize,
    /// Maximum resident CTAs per SM.
    pub max_ctas_per_sm: usize,
    /// 32-bit registers available per SM.
    pub regs_per_sm: usize,
    /// Maximum registers a single thread may use before spilling.
    pub max_regs_per_thread: usize,
    /// Shared memory (bytes) available per SM.
    pub shared_mem_per_sm: usize,
    /// Maximum shared memory (bytes) a single CTA may reserve.
    pub shared_mem_per_cta: usize,
    /// Device memory capacity in bytes (used for OOM modelling).
    pub device_mem_bytes: u64,
    /// SM clock in GHz — converts cycles to wall time.
    pub clock_ghz: f64,
    /// Aggregate DRAM bandwidth in GB/s.
    pub dram_bandwidth_gbs: f64,
    /// Maximum CTAs CUDA allows in one grid dimension. Used to model the
    /// Sputnik failure the paper reports for |V| > ~2M (§5.1).
    pub max_grid_ctas: u64,
    /// Timing model parameters.
    pub timing: TimingParams,
}

/// Parameters of the cycle-level timing model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimingParams {
    /// Latency (cycles) from issuing a global-memory load to data arrival.
    pub dram_latency: u64,
    /// Extra cycles of DRAM service time per 32-byte sector beyond the
    /// first, charged to the issuing warp's latency chain.
    pub cycles_per_extra_sector: u64,
    /// Maximum outstanding global loads per warp before issue stalls
    /// (models the memory-instruction queue / MSHR share of one warp).
    pub max_outstanding_loads: usize,
    /// Issue cost (cycles) of any warp-wide instruction.
    pub issue_cycles: u64,
    /// Latency (cycles) of a shared-memory access.
    pub shared_latency: u64,
    /// Cost (cycles) of a barrier / fence beyond draining loads.
    pub barrier_cycles: u64,
    /// Cost (cycles) of one warp-shuffle exchange round.
    pub shfl_cycles: u64,
    /// Base cost (cycles) of a global atomic operation.
    pub atomic_cycles: u64,
    /// Store pipeline cost per 32-byte sector written.
    pub store_sector_cycles: u64,
    /// Fixed cost of launching a kernel (driver + grid setup), in cycles.
    /// Matters end-to-end: fused systems like dgNN amortize it (§5.3.2).
    pub kernel_launch_overhead_cycles: u64,
    /// Warp instructions an SM can issue per cycle (number of warp
    /// schedulers).
    pub issue_width_per_sm: u64,
    /// How far one SM may exceed its fair share of DRAM bandwidth when
    /// other SMs are idle (the L2-to-SM path allows bursting; DRAM remains
    /// a *global* limit). ≈ L2 bandwidth / DRAM bandwidth on Ampere.
    pub sm_bandwidth_burst: f64,
    /// Maximum number of resident warps whose memory stalls an SM can
    /// effectively overlap (MSHR / miss-queue limit): even at full
    /// occupancy, only this many warps' worth of outstanding misses fly
    /// concurrently. Lower values make barrier-frequency and load-ILP
    /// effects (paper Figs. 8–9) visible through the occupancy haze.
    pub latency_hiding_warps: u64,
    /// Fraction of exposed memory-latency stalls that overlap with DRAM
    /// service time on an SM (1.0 = perfect overlap, the pure-roofline
    /// view). Real SMs keep DRAM saturated only while enough requests are
    /// in flight, so latency-side improvements (fewer barriers, more loads
    /// per drain) still pay off in bandwidth-heavy kernels — the effect
    /// behind the paper's Fig. 9/10 deltas.
    pub latency_bw_overlap: f64,
}

impl Default for TimingParams {
    fn default() -> Self {
        Self {
            dram_latency: 480,
            cycles_per_extra_sector: 2,
            max_outstanding_loads: 8,
            issue_cycles: 1,
            shared_latency: 24,
            barrier_cycles: 16,
            shfl_cycles: 4,
            atomic_cycles: 24,
            store_sector_cycles: 2,
            kernel_launch_overhead_cycles: 4000,
            issue_width_per_sm: 4,
            sm_bandwidth_burst: 3.0,
            latency_hiding_warps: 20,
            latency_bw_overlap: 0.7,
        }
    }
}

impl GpuSpec {
    /// NVIDIA A100-40GB (SXM) approximation: 108 SMs, 1.41 GHz, 1555 GB/s
    /// HBM2, 40 GB, 64K registers and up to 164 KB shared memory per SM.
    pub fn a100_40gb() -> Self {
        Self {
            name: "A100-40GB (simulated)".to_string(),
            num_sms: 108,
            max_threads_per_sm: 2048,
            max_ctas_per_sm: 32,
            regs_per_sm: 65_536,
            max_regs_per_thread: 255,
            shared_mem_per_sm: 164 * 1024,
            shared_mem_per_cta: 160 * 1024,
            device_mem_bytes: 40 * 1024 * 1024 * 1024,
            clock_ghz: 1.41,
            dram_bandwidth_gbs: 1555.0,
            max_grid_ctas: (1 << 31) - 1,
            timing: TimingParams::default(),
        }
    }

    /// An A100 scaled down to `1/div` of its SMs and aggregate bandwidth,
    /// with **identical per-SM characteristics** (occupancy limits, per-SM
    /// bandwidth share, latencies).
    ///
    /// The reproduction runs graphs scaled to ~1/64–1/1000 of the paper's;
    /// running them on a full 108-SM A100 would leave the device
    /// under-saturated in a way the paper's 100M-edge datasets never were.
    /// Scaling SM count with dataset size restores the saturation regime
    /// while preserving every per-SM effect the optimizations target.
    pub fn a100_scaled(div: usize) -> Self {
        assert!(div >= 1);
        let mut spec = Self::a100_40gb();
        spec.name = format!("A100-40GB (simulated, 1/{div} SMs)");
        spec.num_sms = (spec.num_sms / div).max(1);
        spec.dram_bandwidth_gbs /= div as f64;
        spec
    }

    /// A deliberately small GPU useful for tests: pressure on occupancy and
    /// bandwidth appears at small problem sizes.
    pub fn tiny() -> Self {
        Self {
            name: "tiny (test)".to_string(),
            num_sms: 4,
            max_threads_per_sm: 512,
            max_ctas_per_sm: 8,
            regs_per_sm: 16_384,
            max_regs_per_thread: 255,
            shared_mem_per_sm: 32 * 1024,
            shared_mem_per_cta: 32 * 1024,
            device_mem_bytes: 256 * 1024 * 1024,
            clock_ghz: 1.0,
            dram_bandwidth_gbs: 100.0,
            max_grid_ctas: 1 << 16,
            timing: TimingParams::default(),
        }
    }

    /// Bytes of DRAM bandwidth available per SM per cycle.
    pub fn bytes_per_cycle_per_sm(&self) -> f64 {
        self.dram_bandwidth_gbs / self.clock_ghz / self.num_sms as f64
    }

    /// Convert a cycle count into milliseconds at this spec's clock.
    pub fn cycles_to_ms(&self, cycles: u64) -> f64 {
        cycles as f64 / (self.clock_ghz * 1e9) * 1e3
    }

    /// Serializes through the dependency-free [`crate::jsonio`] path.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("name", Json::Str(self.name.clone())),
            ("num_sms", Json::U64(self.num_sms as u64)),
            (
                "max_threads_per_sm",
                Json::U64(self.max_threads_per_sm as u64),
            ),
            ("max_ctas_per_sm", Json::U64(self.max_ctas_per_sm as u64)),
            ("regs_per_sm", Json::U64(self.regs_per_sm as u64)),
            (
                "max_regs_per_thread",
                Json::U64(self.max_regs_per_thread as u64),
            ),
            (
                "shared_mem_per_sm",
                Json::U64(self.shared_mem_per_sm as u64),
            ),
            (
                "shared_mem_per_cta",
                Json::U64(self.shared_mem_per_cta as u64),
            ),
            ("device_mem_bytes", Json::U64(self.device_mem_bytes)),
            ("clock_ghz", Json::F64(self.clock_ghz)),
            ("dram_bandwidth_gbs", Json::F64(self.dram_bandwidth_gbs)),
            ("max_grid_ctas", Json::U64(self.max_grid_ctas)),
            ("timing", self.timing.to_json()),
        ])
    }

    /// Reconstructs a spec from [`GpuSpec::to_json`] output.
    pub fn from_json(j: &Json) -> Result<GpuSpec, String> {
        Ok(GpuSpec {
            name: j
                .get("name")
                .and_then(Json::as_str)
                .ok_or("missing or non-string field name")?
                .to_string(),
            num_sms: get_usize(j, "num_sms")?,
            max_threads_per_sm: get_usize(j, "max_threads_per_sm")?,
            max_ctas_per_sm: get_usize(j, "max_ctas_per_sm")?,
            regs_per_sm: get_usize(j, "regs_per_sm")?,
            max_regs_per_thread: get_usize(j, "max_regs_per_thread")?,
            shared_mem_per_sm: get_usize(j, "shared_mem_per_sm")?,
            shared_mem_per_cta: get_usize(j, "shared_mem_per_cta")?,
            device_mem_bytes: get_u64(j, "device_mem_bytes")?,
            clock_ghz: get_f64(j, "clock_ghz")?,
            dram_bandwidth_gbs: get_f64(j, "dram_bandwidth_gbs")?,
            max_grid_ctas: get_u64(j, "max_grid_ctas")?,
            timing: TimingParams::from_json(j.get("timing").ok_or("missing field timing")?)?,
        })
    }
}

impl TimingParams {
    /// Serializes through the dependency-free [`crate::jsonio`] path.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("dram_latency", Json::U64(self.dram_latency)),
            (
                "cycles_per_extra_sector",
                Json::U64(self.cycles_per_extra_sector),
            ),
            (
                "max_outstanding_loads",
                Json::U64(self.max_outstanding_loads as u64),
            ),
            ("issue_cycles", Json::U64(self.issue_cycles)),
            ("shared_latency", Json::U64(self.shared_latency)),
            ("barrier_cycles", Json::U64(self.barrier_cycles)),
            ("shfl_cycles", Json::U64(self.shfl_cycles)),
            ("atomic_cycles", Json::U64(self.atomic_cycles)),
            ("store_sector_cycles", Json::U64(self.store_sector_cycles)),
            (
                "kernel_launch_overhead_cycles",
                Json::U64(self.kernel_launch_overhead_cycles),
            ),
            ("issue_width_per_sm", Json::U64(self.issue_width_per_sm)),
            ("sm_bandwidth_burst", Json::F64(self.sm_bandwidth_burst)),
            ("latency_hiding_warps", Json::U64(self.latency_hiding_warps)),
            ("latency_bw_overlap", Json::F64(self.latency_bw_overlap)),
        ])
    }

    /// Reconstructs timing parameters from [`TimingParams::to_json`] output.
    pub fn from_json(j: &Json) -> Result<TimingParams, String> {
        Ok(TimingParams {
            dram_latency: get_u64(j, "dram_latency")?,
            cycles_per_extra_sector: get_u64(j, "cycles_per_extra_sector")?,
            max_outstanding_loads: get_usize(j, "max_outstanding_loads")?,
            issue_cycles: get_u64(j, "issue_cycles")?,
            shared_latency: get_u64(j, "shared_latency")?,
            barrier_cycles: get_u64(j, "barrier_cycles")?,
            shfl_cycles: get_u64(j, "shfl_cycles")?,
            atomic_cycles: get_u64(j, "atomic_cycles")?,
            store_sector_cycles: get_u64(j, "store_sector_cycles")?,
            kernel_launch_overhead_cycles: get_u64(j, "kernel_launch_overhead_cycles")?,
            issue_width_per_sm: get_u64(j, "issue_width_per_sm")?,
            sm_bandwidth_burst: get_f64(j, "sm_bandwidth_burst")?,
            latency_hiding_warps: get_u64(j, "latency_hiding_warps")?,
            latency_bw_overlap: get_f64(j, "latency_bw_overlap")?,
        })
    }
}

fn get_u64(j: &Json, key: &str) -> Result<u64, String> {
    j.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("missing or non-integer field {key}"))
}

fn get_usize(j: &Json, key: &str) -> Result<usize, String> {
    get_u64(j, key).map(|v| v as usize)
}

fn get_f64(j: &Json, key: &str) -> Result<f64, String> {
    j.get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| format!("missing or non-numeric field {key}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a100_bandwidth_per_sm_is_about_ten_bytes_per_cycle() {
        let spec = GpuSpec::a100_40gb();
        let b = spec.bytes_per_cycle_per_sm();
        assert!((9.0..12.0).contains(&b), "got {b}");
    }

    #[test]
    fn cycles_to_ms_roundtrip() {
        let spec = GpuSpec::a100_40gb();
        // 1.41e9 cycles == 1 second == 1000 ms.
        let ms = spec.cycles_to_ms(1_410_000_000);
        assert!((ms - 1000.0).abs() < 1e-6);
    }

    #[test]
    fn default_timing_is_sane() {
        let t = TimingParams::default();
        assert!(t.dram_latency > t.shared_latency);
        assert!(t.max_outstanding_loads >= 1);
    }

    #[test]
    fn spec_serde_roundtrip() {
        // Round trip through the dependency-free jsonio path, so tier-1
        // passes offline with a stubbed serde_json.
        for spec in [
            GpuSpec::tiny(),
            GpuSpec::a100_40gb(),
            GpuSpec::a100_scaled(8),
        ] {
            let json = spec.to_json().to_string_compact();
            let back = GpuSpec::from_json(&crate::jsonio::parse(&json).unwrap()).unwrap();
            assert_eq!(spec, back);
        }
    }

    #[test]
    fn spec_from_json_reports_missing_field() {
        let mut json = GpuSpec::tiny().to_json();
        if let Json::Obj(fields) = &mut json {
            fields.retain(|(k, _)| k != "num_sms");
        }
        let err = GpuSpec::from_json(&json).unwrap_err();
        assert!(err.contains("num_sms"), "{err}");
    }
}

#[cfg(test)]
mod scaled_tests {
    use super::*;

    #[test]
    fn a100_scaled_preserves_per_sm_bandwidth() {
        let full = GpuSpec::a100_40gb();
        let quarter = GpuSpec::a100_scaled(4);
        assert_eq!(quarter.num_sms, full.num_sms / 4);
        assert!(
            (quarter.bytes_per_cycle_per_sm() - full.bytes_per_cycle_per_sm()).abs() < 1e-9,
            "per-SM share must be identical"
        );
        assert_eq!(quarter.max_threads_per_sm, full.max_threads_per_sm);
        assert_eq!(quarter.regs_per_sm, full.regs_per_sm);
    }

    #[test]
    fn a100_scaled_one_is_identity_shape() {
        let full = GpuSpec::a100_40gb();
        let one = GpuSpec::a100_scaled(1);
        assert_eq!(one.num_sms, full.num_sms);
        assert_eq!(one.dram_bandwidth_gbs, full.dram_bandwidth_gbs);
    }
}
