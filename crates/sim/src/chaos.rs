//! Deterministic fault-injection and schedule-chaos engine.
//!
//! PR 2 (sanitizer) and PR 4 (validation, watchdog, panic isolation) built
//! *detection* layers; this module builds the *attacker* that proves they
//! work. A [`ChaosEngine`] attaches per-[`crate::Gpu`] exactly like the
//! profiler and sanitizer (set-once slot, one atomic load per launch when
//! absent, zero cost detached) and perturbs execution in two orthogonal
//! ways:
//!
//! * **Fault injection** — a single seeded fault from the lattice in
//!   [`FaultKind`] is armed for one target warp per launch: bit flips in
//!   values returned by global/shared index loads, an `atomicAdd` silently
//!   downgraded to a plain store (the "dropped atomic at a row split"
//!   failure), an elided `__syncwarp`, a killed or stalled warp, or a
//!   transient launch failure at preflight.
//! * **Schedule chaos** — a seeded permutation of CTA execution order and
//!   of warp order within each CTA. The engine then executes sequentially
//!   in the permuted order and restores canonical order before cost
//!   aggregation, making the simulator's determinism contract *testable*:
//!   outputs and reports must be bit-identical across schedule seeds.
//!
//! Every fault is reproducible from its `(kernel, graph, fault, seed)`
//! tuple alone: the target warp and the index of the op the fault fires at
//! are derived from the seed with a splitmix64 hash — never from device
//! addresses (which come from a process-global bump allocator) or host
//! state. Each injected run is classified into a [`Verdict`] by the chaos
//! sweep in `gnnone-bench` (with a CPU-reference cross-check for the
//! silent-data-corruption case); the taxonomy lives here so the slugs are
//! shared by every report.

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};

use crate::jsonio::Json;

/// One injectable execution-level fault. The lattice mirrors the failure
/// classes a misbehaving GPU exposes: memory corruption, lost
/// synchronization, and control faults.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Flip `flips` high-order bits (starting at bit 28) of a value
    /// returned by a **global** `u32` load — index/topology corruption.
    /// A flipped NZE id becomes a far-out-of-bounds index on its next use,
    /// which the bounds layer must catch; with a sanitizer attached the
    /// firing flip is *also* reported at load time as a
    /// [`crate::CheckKind::MemoryEcc`] finding — the SECDED-ECC analogue
    /// that covers kernels whose defensive guards would otherwise turn the
    /// corrupted index into silently skipped work. (Low-order flips in
    /// `f32` payloads are a *known-silent* class — excluded from the
    /// default lattice and documented in `docs/ROBUSTNESS.md`.)
    GlobalBitFlip {
        /// Number of high bits flipped (1 = single-event upset).
        flips: u32,
    },
    /// The same high-bit flip on a value returned by a **shared-memory**
    /// `u32` load — corruption of the Stage-1 NZE cache. ECC-reported like
    /// [`FaultKind::GlobalBitFlip`] (A100 shared memory is SECDED too).
    SharedBitFlip {
        /// Number of high bits flipped.
        flips: u32,
    },
    /// One `atomicAdd` executes as a plain store of the addend — the
    /// lost-update failure at SpMM row splits. The shadow records the op
    /// as a plain write, so the sanitizer's racecheck fires wherever a
    /// second warp touches the same cell.
    AtomicDrop,
    /// One `__syncwarp` is skipped entirely: no scoreboard drain and no
    /// shadow epoch bump, so shared reads land in their writers' epoch.
    BarrierElide,
    /// The target warp dies mid-flight (a fatal hardware trap): the launch
    /// aborts with [`crate::AbortReason::ChaosKill`].
    WarpKill,
    /// The target warp stops making progress: its instruction counter is
    /// inflated so an armed watchdog trips on the next charge.
    WarpStall,
    /// The launch itself fails once at preflight with a structured
    /// [`crate::engine::LaunchError`]; the next attempt succeeds —
    /// exercising bounded retry in sweep guards.
    LaunchTransient,
}

impl FaultKind {
    /// The default sweep lattice: every fault class, with single- and
    /// double-bit memory flips.
    pub fn lattice() -> Vec<FaultKind> {
        vec![
            FaultKind::GlobalBitFlip { flips: 1 },
            FaultKind::GlobalBitFlip { flips: 2 },
            FaultKind::SharedBitFlip { flips: 1 },
            FaultKind::AtomicDrop,
            FaultKind::BarrierElide,
            FaultKind::WarpKill,
            FaultKind::WarpStall,
            FaultKind::LaunchTransient,
        ]
    }

    /// Stable lowercase slug used in JSON reports and seed derivation.
    pub fn as_str(&self) -> &'static str {
        match self {
            FaultKind::GlobalBitFlip { .. } => "global-bit-flip",
            FaultKind::SharedBitFlip { .. } => "shared-bit-flip",
            FaultKind::AtomicDrop => "atomic-drop",
            FaultKind::BarrierElide => "barrier-elide",
            FaultKind::WarpKill => "warp-kill",
            FaultKind::WarpStall => "warp-stall",
            FaultKind::LaunchTransient => "launch-transient",
        }
    }

    /// Reads back a value written by [`FaultKind::to_json`].
    pub fn from_json(v: &Json) -> Option<Self> {
        let flips = || v.get("flips").and_then(Json::as_u64).unwrap_or(1) as u32;
        Some(match v.get("kind")?.as_str()? {
            "global-bit-flip" => FaultKind::GlobalBitFlip { flips: flips() },
            "shared-bit-flip" => FaultKind::SharedBitFlip { flips: flips() },
            "atomic-drop" => FaultKind::AtomicDrop,
            "barrier-elide" => FaultKind::BarrierElide,
            "warp-kill" => FaultKind::WarpKill,
            "warp-stall" => FaultKind::WarpStall,
            "launch-transient" => FaultKind::LaunchTransient,
            _ => return None,
        })
    }

    /// Serializes through the dependency-free [`crate::jsonio`] path.
    pub fn to_json(&self) -> Json {
        let mut fields = vec![("kind", Json::Str(self.as_str().into()))];
        match self {
            FaultKind::GlobalBitFlip { flips } | FaultKind::SharedBitFlip { flips } => {
                fields.push(("flips", Json::U64(u64::from(*flips))));
            }
            _ => {}
        }
        Json::obj(fields)
    }

    /// Salt mixed into the seed so each fault kind targets a different
    /// (warp, op) point under the same sweep seed.
    fn salt(&self) -> u64 {
        self.as_str()
            .bytes()
            .fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
                (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3)
            })
    }
}

impl std::fmt::Display for FaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultKind::GlobalBitFlip { flips } => write!(f, "global-bit-flip(x{flips})"),
            FaultKind::SharedBitFlip { flips } => write!(f, "shared-bit-flip(x{flips})"),
            other => f.write_str(other.as_str()),
        }
    }
}

/// One injectable *shard-level* fault, the scale-out analogue of
/// [`FaultKind`]: instead of corrupting a single warp inside one launch, a
/// shard fault takes out one whole shard of a sharded execution — the
/// failure classes a multi-device topology exposes (device loss, device
/// hang, dropped interconnect transfer, transient scheduler decline). Each
/// armed fault fires **once per sweep** at a seeded shard chosen by
/// [`ShardFaultKind::target`], so every run is reproducible from
/// `(fault, seed)` alone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardFaultKind {
    /// The target shard's launch dies mid-flight (device loss): its output
    /// is discarded and the supervision loop observes a structured abort
    /// with [`crate::AbortReason::ChaosKill`].
    ShardKill,
    /// The target shard stops making progress (device hang): its reported
    /// time is inflated past the per-shard watchdog deadline, which trips
    /// with [`crate::AbortReason::Watchdog`] and discards the output.
    ShardStall,
    /// The halo transfer feeding the target shard is dropped on the wire:
    /// the received buffer is corrupted, the executor's transfer checksum
    /// mismatches, and the gather is retried from the owners.
    HaloDrop,
    /// The target shard's launch is declined once at preflight with a
    /// structured [`crate::engine::LaunchError`]; the next attempt
    /// succeeds — exercising bounded retry in the supervision loop.
    TransientShardLaunch,
}

impl ShardFaultKind {
    /// The default shard-fault sweep lattice: every shard fault class.
    pub fn lattice() -> Vec<ShardFaultKind> {
        vec![
            ShardFaultKind::ShardKill,
            ShardFaultKind::ShardStall,
            ShardFaultKind::HaloDrop,
            ShardFaultKind::TransientShardLaunch,
        ]
    }

    /// Stable lowercase slug used in JSON reports and seed derivation.
    pub fn as_str(&self) -> &'static str {
        match self {
            ShardFaultKind::ShardKill => "shard-kill",
            ShardFaultKind::ShardStall => "shard-stall",
            ShardFaultKind::HaloDrop => "halo-drop",
            ShardFaultKind::TransientShardLaunch => "transient-shard-launch",
        }
    }

    /// Parses the slug form written by [`ShardFaultKind::as_str`].
    pub fn from_str_slug(s: &str) -> Option<Self> {
        Some(match s {
            "shard-kill" => ShardFaultKind::ShardKill,
            "shard-stall" => ShardFaultKind::ShardStall,
            "halo-drop" => ShardFaultKind::HaloDrop,
            "transient-shard-launch" => ShardFaultKind::TransientShardLaunch,
            _ => return None,
        })
    }

    /// Serializes through the dependency-free [`crate::jsonio`] path.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![("kind", Json::Str(self.as_str().into()))])
    }

    /// Reads back a value written by [`ShardFaultKind::to_json`].
    pub fn from_json(v: &Json) -> Option<Self> {
        Self::from_str_slug(v.get("kind")?.as_str()?)
    }

    /// The seeded firing point: which of `candidates` eligible shards this
    /// fault takes out under `seed`. Deterministic in `(self, seed)`; each
    /// fault kind mixes a distinct salt so the four faults spread over
    /// different shards under one sweep seed. `None` when no shard is
    /// eligible (e.g. [`ShardFaultKind::HaloDrop`] on a partition with no
    /// halo traffic) — the sweep records those cells as not-injected.
    pub fn target(&self, seed: u64, candidates: usize) -> Option<usize> {
        if candidates == 0 {
            return None;
        }
        let salt = self
            .as_str()
            .bytes()
            .fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
                (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3)
            });
        Some((mix(seed ^ salt) % candidates as u64) as usize)
    }
}

impl std::fmt::Display for ShardFaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Resilience verdict of one injected run, assigned by the chaos sweep in
/// `gnnone-bench`. Precedence (first match wins): sanitizer finding →
/// structured abort → structured decline → output cross-check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// The attached sanitizer recorded at least one finding for the run.
    DetectedBySanitizer,
    /// The launch stopped mid-run with a structured
    /// [`crate::KernelAbort`] — the watchdog, a bounds check, or the
    /// injected fatal trap itself surfacing as a typed abort.
    AbortedByWatchdog,
    /// The launch was declined at preflight with a typed
    /// [`crate::engine::LaunchError`].
    StructuredDecline,
    /// The fault fired but the output still matches the CPU reference
    /// within tolerance — absorbed by the kernel's structure.
    Masked,
    /// The fault fired, nothing detected it, and the output is wrong.
    /// The verdict the whole layer exists to prove impossible.
    SilentDataCorruption,
    /// The armed fault never found an eligible op in the target warp
    /// (e.g. an atomic fault on a kernel with no atomics); the run is
    /// excluded from resilience accounting but still reported.
    NotInjected,
}

impl Verdict {
    /// Every verdict, in severity-report order (for tabulating counts).
    pub const ALL: [Verdict; 6] = [
        Verdict::DetectedBySanitizer,
        Verdict::AbortedByWatchdog,
        Verdict::StructuredDecline,
        Verdict::Masked,
        Verdict::SilentDataCorruption,
        Verdict::NotInjected,
    ];

    /// Stable lowercase slug used in JSON reports.
    pub fn as_str(&self) -> &'static str {
        match self {
            Verdict::DetectedBySanitizer => "detected-by-sanitizer",
            Verdict::AbortedByWatchdog => "aborted-by-watchdog",
            Verdict::StructuredDecline => "structured-decline",
            Verdict::Masked => "masked",
            Verdict::SilentDataCorruption => "silent-data-corruption",
            Verdict::NotInjected => "not-injected",
        }
    }

    /// Reads a verdict back from its slug.
    pub fn from_slug(s: &str) -> Option<Self> {
        Some(match s {
            "detected-by-sanitizer" => Verdict::DetectedBySanitizer,
            "aborted-by-watchdog" => Verdict::AbortedByWatchdog,
            "structured-decline" => Verdict::StructuredDecline,
            "masked" => Verdict::Masked,
            "silent-data-corruption" => Verdict::SilentDataCorruption,
            "not-injected" => Verdict::NotInjected,
            _ => return None,
        })
    }
}

impl std::fmt::Display for Verdict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Chaos configuration: an optional fault and/or an optional schedule
/// permutation. The two compose — a fault can be injected under a
/// permuted schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaosConfig {
    /// Seed for fault targeting (which warp, which op).
    pub seed: u64,
    /// The fault to arm, if any.
    pub fault: Option<FaultKind>,
    /// When set, execute CTAs (and warps within each CTA) sequentially in
    /// a permutation of this seed instead of in parallel canonical order.
    pub schedule_seed: Option<u64>,
}

impl ChaosConfig {
    /// A fault-injection config.
    pub fn fault(kind: FaultKind, seed: u64) -> Self {
        Self {
            seed,
            fault: Some(kind),
            schedule_seed: None,
        }
    }

    /// A schedule-chaos-only config (no fault armed).
    pub fn schedule(seed: u64) -> Self {
        Self {
            seed,
            fault: None,
            schedule_seed: Some(seed),
        }
    }

    /// Serializes through the dependency-free [`crate::jsonio`] path.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("seed", Json::U64(self.seed)),
            (
                "fault",
                match &self.fault {
                    Some(k) => k.to_json(),
                    None => Json::Null,
                },
            ),
            (
                "schedule_seed",
                match self.schedule_seed {
                    Some(s) => Json::U64(s),
                    None => Json::Null,
                },
            ),
        ])
    }
}

/// splitmix64 — the seed expander used for all chaos targeting. Chosen for
/// its guarantee that distinct inputs produce well-distributed outputs
/// even for sequential seeds. Public so other deterministic machinery
/// (retry jitter, serving-layer schedules) draws from the same expander.
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

pub(crate) use splitmix64 as mix;

/// Seeded Fisher–Yates permutation of `0..n`.
pub(crate) fn permutation(n: usize, seed: u64) -> Vec<usize> {
    let mut v: Vec<usize> = (0..n).collect();
    let mut s = mix(seed) | 1; // xorshift state must be nonzero
    for i in (1..n).rev() {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        let j = (s % (i as u64 + 1)) as usize;
        v.swap(i, j);
    }
    v
}

/// The per-GPU chaos engine. Attach with [`crate::Gpu::enable_chaos`] /
/// [`crate::Gpu::attach_chaos`]; every subsequent launch on that GPU is
/// subject to the configured fault and/or schedule permutation. Thread-safe
/// — the engine only carries atomics, so it is shared freely across the
/// engine's parallel CTA execution.
#[derive(Debug)]
pub struct ChaosEngine {
    config: ChaosConfig,
    /// Count of faults that actually fired (reached an eligible op).
    injected: AtomicU64,
    /// Remaining transient launch failures to inject.
    transient_left: AtomicU32,
}

impl ChaosEngine {
    /// Creates an engine. A [`FaultKind::LaunchTransient`] fault arms
    /// exactly one preflight failure.
    pub fn new(config: ChaosConfig) -> Self {
        let transient = match config.fault {
            Some(FaultKind::LaunchTransient) => 1,
            _ => 0,
        };
        Self {
            config,
            injected: AtomicU64::new(0),
            transient_left: AtomicU32::new(transient),
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &ChaosConfig {
        &self.config
    }

    /// Number of faults that actually fired across all launches so far.
    /// Zero after a run means the armed fault never found an eligible op
    /// (reported as [`Verdict::NotInjected`] by the sweep).
    pub fn injections(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }

    /// Schedule-permutation seed, when schedule chaos is on.
    pub fn schedule_seed(&self) -> Option<u64> {
        self.config.schedule_seed
    }

    /// Consumes one armed transient launch failure; the engine's preflight
    /// declines the launch when this returns `true`. Counted as an
    /// injection (the fault observably fired).
    pub(crate) fn take_transient_failure(&self) -> bool {
        if self
            .transient_left
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| n.checked_sub(1))
            .is_ok()
        {
            self.injected.fetch_add(1, Ordering::Relaxed);
            true
        } else {
            false
        }
    }

    /// The warp the armed fault targets for a grid of `grid_warps` warps,
    /// derived from the seed. `None` when no per-warp fault is armed.
    pub(crate) fn fault_target(&self, grid_warps: usize) -> Option<usize> {
        let kind = self.config.fault?;
        if matches!(kind, FaultKind::LaunchTransient) || grid_warps == 0 {
            return None;
        }
        Some((mix(self.config.seed ^ kind.salt()) % grid_warps as u64) as usize)
    }

    /// Builds the per-warp fault hook for the target warp.
    pub(crate) fn warp_fault(&self) -> WarpChaos {
        let kind = self.config.fault.expect("warp_fault needs an armed fault");
        // Fire at the 1st or 2nd eligible op — kept small so faults land
        // even on tiny launches; still seed-dependent.
        let remaining = (mix(self.config.seed ^ kind.salt() ^ 0x5eed) % 2) as u32;
        WarpChaos {
            kind,
            remaining,
            fired: false,
        }
    }

    /// Records that a warp fault fired (called by the launch engine after
    /// collecting the warp's hook).
    pub(crate) fn note_injection(&self) {
        self.injected.fetch_add(1, Ordering::Relaxed);
    }
}

/// What a firing charge-point fault does to the warp.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ChargeFault {
    /// Abort the launch with [`crate::AbortReason::ChaosKill`].
    Kill,
    /// Inflate the instruction counter so an armed watchdog trips.
    Stall,
}

/// Per-warp fault hook, attached by the launch engine to the single target
/// warp of a launch (every other warp pays nothing). Each consult either
/// skips (counting down to the seeded firing point) or fires exactly once.
#[derive(Debug)]
pub struct WarpChaos {
    kind: FaultKind,
    remaining: u32,
    fired: bool,
}

impl WarpChaos {
    /// Whether the fault has fired.
    pub fn fired(&self) -> bool {
        self.fired
    }

    /// Counts one eligible op; `true` exactly once, at the seeded point.
    fn fire(&mut self) -> bool {
        if self.fired {
            return false;
        }
        if self.remaining == 0 {
            self.fired = true;
            true
        } else {
            self.remaining -= 1;
            false
        }
    }

    /// High-bit XOR mask for `flips` flips: bit 28 first (far-OOB on any
    /// realistic buffer), then 27, 26, … for multi-bit upsets.
    fn flip_mask(flips: u32) -> u32 {
        let mut mask = 0u32;
        for k in 0..flips.clamp(1, 8) {
            mask |= 1 << (28 - k);
        }
        mask
    }

    /// Consulted per active lane of a global `u32` load: returns the
    /// corrupted value when this lane-load is the firing point.
    pub(crate) fn corrupt_global_u32(&mut self, value: u32) -> Option<u32> {
        let FaultKind::GlobalBitFlip { flips } = self.kind else {
            return None;
        };
        self.fire().then(|| value ^ Self::flip_mask(flips))
    }

    /// Consulted per active lane of a shared `u32` load.
    pub(crate) fn corrupt_shared_u32(&mut self, value: u32) -> Option<u32> {
        let FaultKind::SharedBitFlip { flips } = self.kind else {
            return None;
        };
        self.fire().then(|| value ^ Self::flip_mask(flips))
    }

    /// Consulted per atomic instruction: `true` downgrades the whole
    /// warp-wide `atomicAdd` to plain stores of the addends.
    pub(crate) fn drop_atomic(&mut self) -> bool {
        matches!(self.kind, FaultKind::AtomicDrop) && self.fire()
    }

    /// Consulted per barrier: `true` elides it (no drain, no epoch bump).
    pub(crate) fn elide_barrier(&mut self) -> bool {
        matches!(self.kind, FaultKind::BarrierElide) && self.fire()
    }

    /// Consulted per watchdog charge: a control fault at the firing point.
    pub(crate) fn on_charge(&mut self) -> Option<ChargeFault> {
        let fault = match self.kind {
            FaultKind::WarpKill => ChargeFault::Kill,
            FaultKind::WarpStall => ChargeFault::Stall,
            _ => return None,
        };
        self.fire().then_some(fault)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lattice_slugs_are_unique_and_roundtrip() {
        let lattice = FaultKind::lattice();
        let slugs: std::collections::BTreeSet<_> = lattice
            .iter()
            .map(|k| k.to_json().to_string_compact())
            .collect();
        assert_eq!(slugs.len(), lattice.len());
        for k in &lattice {
            let j = k.to_json().to_string_compact();
            let back = FaultKind::from_json(&crate::jsonio::parse(&j).unwrap()).unwrap();
            assert_eq!(back, *k, "{j}");
        }
    }

    #[test]
    fn verdict_slugs_roundtrip() {
        for v in [
            Verdict::DetectedBySanitizer,
            Verdict::AbortedByWatchdog,
            Verdict::StructuredDecline,
            Verdict::Masked,
            Verdict::SilentDataCorruption,
            Verdict::NotInjected,
        ] {
            assert_eq!(Verdict::from_slug(v.as_str()), Some(v));
        }
        assert_eq!(Verdict::from_slug("nope"), None);
    }

    #[test]
    fn targeting_is_deterministic_and_seed_sensitive() {
        let a = ChaosEngine::new(ChaosConfig::fault(FaultKind::WarpKill, 7));
        let b = ChaosEngine::new(ChaosConfig::fault(FaultKind::WarpKill, 7));
        assert_eq!(a.fault_target(1000), b.fault_target(1000));
        let targets: std::collections::BTreeSet<_> = (0..32)
            .map(|s| {
                ChaosEngine::new(ChaosConfig::fault(FaultKind::WarpKill, s))
                    .fault_target(1 << 20)
                    .unwrap()
            })
            .collect();
        assert!(targets.len() > 16, "seeds must spread targets");
    }

    #[test]
    fn permutation_is_a_seeded_bijection() {
        let p = permutation(100, 3);
        let mut seen = [false; 100];
        for &i in &p {
            assert!(!seen[i]);
            seen[i] = true;
        }
        assert_eq!(p, permutation(100, 3));
        assert_ne!(p, permutation(100, 4));
        assert_ne!(p, (0..100).collect::<Vec<_>>());
        assert!(permutation(0, 9).is_empty());
        assert_eq!(permutation(1, 9), vec![0]);
    }

    #[test]
    fn warp_fault_fires_exactly_once() {
        let mut wc = WarpChaos {
            kind: FaultKind::GlobalBitFlip { flips: 1 },
            remaining: 1,
            fired: false,
        };
        assert_eq!(wc.corrupt_global_u32(5), None); // skipped op 0
        assert_eq!(wc.corrupt_global_u32(5), Some(5 | (1 << 28)));
        assert_eq!(wc.corrupt_global_u32(5), None); // already fired
        assert!(wc.fired());
        // Wrong-kind consults never count down or fire.
        let mut kill = WarpChaos {
            kind: FaultKind::WarpKill,
            remaining: 0,
            fired: false,
        };
        assert_eq!(kill.corrupt_global_u32(5), None);
        assert!(!kill.drop_atomic());
        assert_eq!(kill.on_charge(), Some(ChargeFault::Kill));
        assert!(kill.fired());
    }

    #[test]
    fn transient_failure_fires_once_per_engine() {
        let ch = ChaosEngine::new(ChaosConfig::fault(FaultKind::LaunchTransient, 1));
        assert!(ch.take_transient_failure());
        assert!(!ch.take_transient_failure());
        assert_eq!(ch.injections(), 1);
        // No per-warp target for a preflight fault.
        assert_eq!(ch.fault_target(64), None);
        // Other faults never fail preflight.
        let bf = ChaosEngine::new(ChaosConfig::fault(FaultKind::AtomicDrop, 1));
        assert!(!bf.take_transient_failure());
    }

    #[test]
    fn multi_bit_mask_extends_downward() {
        assert_eq!(WarpChaos::flip_mask(1), 1 << 28);
        assert_eq!(WarpChaos::flip_mask(2), (1 << 28) | (1 << 27));
        assert_eq!(WarpChaos::flip_mask(3), (1 << 28) | (1 << 27) | (1 << 26));
    }

    #[test]
    fn config_serializes() {
        let c = ChaosConfig::fault(FaultKind::GlobalBitFlip { flips: 2 }, 0xBEEF);
        let j = c.to_json().to_string_compact();
        assert!(j.contains("global-bit-flip"), "{j}");
        assert!(j.contains("\"flips\":2"), "{j}");
        let s = ChaosConfig::schedule(9).to_json().to_string_compact();
        assert!(s.contains("\"schedule_seed\":9"), "{s}");
    }

    #[test]
    fn shard_fault_lattice_roundtrips() {
        let lattice = ShardFaultKind::lattice();
        assert_eq!(lattice.len(), 4);
        for fault in lattice {
            let j = fault.to_json();
            assert_eq!(ShardFaultKind::from_json(&j), Some(fault));
            assert_eq!(ShardFaultKind::from_str_slug(fault.as_str()), Some(fault));
            assert_eq!(fault.to_string(), fault.as_str());
        }
        assert_eq!(ShardFaultKind::from_str_slug("warp-kill"), None);
    }

    #[test]
    fn shard_fault_target_is_seeded_and_bounded() {
        for fault in ShardFaultKind::lattice() {
            assert_eq!(fault.target(7, 0), None);
            for seed in 0..32u64 {
                let t = fault.target(seed, 4).unwrap();
                assert!(t < 4);
                // Deterministic under the same (fault, seed).
                assert_eq!(fault.target(seed, 4), Some(t));
            }
        }
        // Distinct salts: the four faults do not all pick the same shard
        // for every seed.
        let picks: Vec<usize> = ShardFaultKind::lattice()
            .iter()
            .map(|f| f.target(0xC0FFEE, 8).unwrap())
            .collect();
        assert!(picks.iter().any(|&p| p != picks[0]), "{picks:?}");
    }
}
