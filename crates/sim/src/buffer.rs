//! Device-memory buffers.
//!
//! A [`DeviceBuffer`] is the simulator's analogue of a `cudaMalloc`
//! allocation: a typed, 32-bit-element array with a *device address* used by
//! the coalescing model. Elements are stored as relaxed atomics so warps can
//! execute functionally in parallel on the host (plain GPU stores map to
//! relaxed stores; `atomicAdd` maps to a compare-exchange loop), following
//! the patterns in *Rust Atomics and Locks*.

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};

/// 128-byte alignment of allocations, matching CUDA's guarantee that
/// `cudaMalloc` results are at least 256-byte aligned (we only need the
/// transaction granularity).
pub const ALLOC_ALIGN: u64 = 128;

/// Global bump allocator for device addresses. Addresses are only used for
/// coalescing arithmetic, never dereferenced, so a process-wide counter is
/// sufficient and keeps buffers independent of any `Gpu` handle.
static NEXT_ADDR: AtomicU64 = AtomicU64::new(ALLOC_ALIGN);

fn alloc_addr(bytes: u64) -> u64 {
    let rounded = bytes.div_ceil(ALLOC_ALIGN) * ALLOC_ALIGN;
    NEXT_ADDR.fetch_add(rounded.max(ALLOC_ALIGN), Ordering::Relaxed)
}

/// Element types storable in device memory: 32-bit plain-old-data with a
/// lossless round trip through `u32` bits.
pub trait Pod32: Copy + Default + Send + Sync + 'static {
    /// Whether values of this type are used as indices/topology (`u32`).
    /// The chaos engine directs memory bit flips at index loads, where a
    /// high-bit upset is maximally destructive (and must be *caught*);
    /// low-bit flips in `f32` payloads are a documented known-silent class.
    const IS_INDEX: bool = false;
    /// Reinterpret as raw bits.
    fn to_bits32(self) -> u32;
    /// Reinterpret from raw bits.
    fn from_bits32(bits: u32) -> Self;
}

impl Pod32 for f32 {
    #[inline]
    fn to_bits32(self) -> u32 {
        self.to_bits()
    }
    #[inline]
    fn from_bits32(bits: u32) -> Self {
        f32::from_bits(bits)
    }
}

impl Pod32 for u32 {
    const IS_INDEX: bool = true;
    #[inline]
    fn to_bits32(self) -> u32 {
        self
    }
    #[inline]
    fn from_bits32(bits: u32) -> Self {
        bits
    }
}

impl Pod32 for i32 {
    #[inline]
    fn to_bits32(self) -> u32 {
        self as u32
    }
    #[inline]
    fn from_bits32(bits: u32) -> Self {
        bits as i32
    }
}

/// A typed device-memory allocation.
///
/// All accesses are relaxed atomics: concurrent plain stores to the *same*
/// element are a data race on a real GPU and remain last-writer-wins here;
/// [`DeviceBuffer::<f32>::atomic_add`] provides the `atomicAdd` semantics the
/// GNNOne SpMM reduction relies on (§4.3 of the paper).
pub struct DeviceBuffer<T: Pod32> {
    words: Box<[AtomicU32]>,
    addr: u64,
    _marker: std::marker::PhantomData<T>,
}

impl<T: Pod32> DeviceBuffer<T> {
    /// Allocates `len` elements initialized to `T::default()`.
    pub fn zeros(len: usize) -> Self {
        let words: Box<[AtomicU32]> = (0..len)
            .map(|_| AtomicU32::new(T::default().to_bits32()))
            .collect();
        Self {
            words,
            addr: alloc_addr((len as u64) * 4),
            _marker: std::marker::PhantomData,
        }
    }

    /// Allocates and copies from a host slice.
    pub fn from_slice(data: &[T]) -> Self {
        let words: Box<[AtomicU32]> = data.iter().map(|v| AtomicU32::new(v.to_bits32())).collect();
        Self {
            words,
            addr: alloc_addr((data.len() as u64) * 4),
            _marker: std::marker::PhantomData,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// Whether the buffer holds zero elements.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Size in bytes — the quantity the OOM model accounts.
    pub fn size_bytes(&self) -> u64 {
        (self.len() as u64) * 4
    }

    /// Base device address of the allocation. Stable for the buffer's
    /// lifetime and unique across live buffers — the sanitizer uses it as
    /// the buffer's identity when merging per-warp shadow state, and the
    /// allowlist API keys intentional last-writer-wins buffers by it.
    #[inline]
    pub fn addr_base(&self) -> u64 {
        self.addr
    }

    /// Device address of element `idx` (for the coalescing model).
    #[inline]
    pub fn addr_of(&self, idx: usize) -> u64 {
        debug_assert!(idx < self.len(), "device OOB: {idx} >= {}", self.len());
        self.addr + (idx as u64) * 4
    }

    /// Reads element `idx`.
    #[inline]
    pub fn read(&self, idx: usize) -> T {
        T::from_bits32(self.words[idx].load(Ordering::Relaxed))
    }

    /// Writes element `idx` (plain GPU store).
    #[inline]
    pub fn write(&self, idx: usize, value: T) {
        self.words[idx].store(value.to_bits32(), Ordering::Relaxed);
    }

    /// Copies the contents back to the host.
    pub fn to_vec(&self) -> Vec<T> {
        self.words
            .iter()
            .map(|w| T::from_bits32(w.load(Ordering::Relaxed)))
            .collect()
    }

    /// Bulk host→device copy: overwrites the whole buffer from `data`
    /// (which must match the buffer length). Element-wise relaxed stores,
    /// the bulk form of [`DeviceBuffer::write`] — used by the native
    /// backend to publish results computed outside the simulator.
    pub fn copy_from_slice(&self, data: &[T]) {
        assert_eq!(
            data.len(),
            self.len(),
            "copy_from_slice length mismatch: {} != {}",
            data.len(),
            self.len()
        );
        for (w, v) in self.words.iter().zip(data) {
            w.store(v.to_bits32(), Ordering::Relaxed);
        }
    }

    /// Resets every element to `T::default()`.
    pub fn fill_default(&self) {
        let bits = T::default().to_bits32();
        for w in self.words.iter() {
            w.store(bits, Ordering::Relaxed);
        }
    }
}

impl DeviceBuffer<f32> {
    /// `atomicAdd(&buf[idx], value)`: compare-exchange loop over the bit
    /// representation, as on hardware without native f32 atomic add.
    #[inline]
    pub fn atomic_add(&self, idx: usize, value: f32) {
        let word = &self.words[idx];
        let mut cur = word.load(Ordering::Relaxed);
        loop {
            let next = (f32::from_bits(cur) + value).to_bits();
            match word.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => return,
                Err(actual) => cur = actual,
            }
        }
    }
}

impl<T: Pod32 + std::fmt::Debug> std::fmt::Debug for DeviceBuffer<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "DeviceBuffer(len={}, addr={:#x})", self.len(), self.addr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_len() {
        let b = DeviceBuffer::<f32>::zeros(10);
        assert_eq!(b.len(), 10);
        assert!(!b.is_empty());
        assert_eq!(b.read(9), 0.0);
        assert_eq!(b.size_bytes(), 40);
    }

    #[test]
    fn from_slice_roundtrip() {
        let data = vec![1u32, 2, 3, 4];
        let b = DeviceBuffer::from_slice(&data);
        assert_eq!(b.to_vec(), data);
    }

    #[test]
    fn write_then_read() {
        let b = DeviceBuffer::<i32>::zeros(4);
        b.write(2, -7);
        assert_eq!(b.read(2), -7);
    }

    #[test]
    fn addresses_are_aligned_and_disjoint() {
        let a = DeviceBuffer::<f32>::zeros(100);
        let b = DeviceBuffer::<f32>::zeros(100);
        assert_eq!(a.addr_of(0) % ALLOC_ALIGN, 0);
        assert_eq!(b.addr_of(0) % ALLOC_ALIGN, 0);
        // Allocations never overlap.
        let a_end = a.addr_of(99) + 4;
        let b_start = b.addr_of(0);
        assert!(b_start >= a_end || a.addr_of(0) >= b.addr_of(99) + 4);
    }

    #[test]
    fn consecutive_elements_are_4_bytes_apart() {
        let b = DeviceBuffer::<f32>::zeros(8);
        assert_eq!(b.addr_of(3) - b.addr_of(2), 4);
    }

    #[test]
    fn atomic_add_accumulates_concurrently() {
        use std::sync::Arc;
        let b = Arc::new(DeviceBuffer::<f32>::zeros(1));
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let b = Arc::clone(&b);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        b.atomic_add(0, 1.0);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(b.read(0), 4000.0);
    }

    #[test]
    fn fill_default_resets() {
        let b = DeviceBuffer::<f32>::from_slice(&[1.0, 2.0]);
        b.fill_default();
        assert_eq!(b.to_vec(), vec![0.0, 0.0]);
    }
}
