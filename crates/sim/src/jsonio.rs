//! Minimal, dependency-free JSON reading and writing.
//!
//! The observability layer ([`crate::trace`], [`crate::metrics`]) needs to
//! emit Chrome-trace files and metrics snapshots, and `gnnone-prof` needs to
//! read them back. Going through a hand-rolled value type keeps that path
//! free of external dependencies and — just as important for the
//! determinism guard tests — makes the byte-level output fully specified:
//! object keys keep insertion order, and numbers format via Rust's shortest
//! round-trip `Display`.
//!
//! This is *not* a general-purpose JSON library: it parses the full JSON
//! grammar but offers no serde integration, streaming, or pretty-printer
//! configurability beyond two-space indentation.

use std::fmt::Write as _;

/// A parsed or to-be-written JSON value.
///
/// Integers keep their own variants so u64 counters survive a round trip
/// exactly (an `f64` mantissa only holds 53 bits).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer.
    U64(u64),
    /// A negative integer.
    I64(i64),
    /// A floating-point number. Non-finite values are written as `null`.
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved when writing.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from `(key, value)` pairs, preserving order.
    pub fn obj(fields: Vec<(&str, Json)>) -> Json {
        Json::Obj(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Looks up a key in an object; `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as `u64` if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Json::U64(v) => Some(v),
            Json::I64(v) => u64::try_from(v).ok(),
            Json::F64(v) if v >= 0.0 && v.fract() == 0.0 && v <= u64::MAX as f64 => Some(v as u64),
            _ => None,
        }
    }

    /// The value as `f64` if it is any numeric variant.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Json::U64(v) => Some(v as f64),
            Json::I64(v) => Some(v as f64),
            Json::F64(v) => Some(v),
            _ => None,
        }
    }

    /// The value as `bool` if it is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Json::Bool(v) => Some(v),
            _ => None,
        }
    }

    /// The value as `&str` if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a slice if it is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The object fields if it is an object.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(fields) => Some(fields),
            _ => None,
        }
    }

    /// Serializes compactly (no whitespace).
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Serializes with two-space indentation and a trailing newline.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(v) => {
                let _ = write!(out, "{v}");
            }
            Json::I64(v) => {
                let _ = write!(out, "{v}");
            }
            Json::F64(v) => {
                if v.is_finite() {
                    // Rust's Display for f64 is the shortest round-trip
                    // decimal and never uses exponent syntax — valid JSON.
                    if v.fract() == 0.0 && v.abs() < 1e15 {
                        let _ = write!(out, "{v:.1}");
                    } else {
                        let _ = write!(out, "{v}");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                write_seq(out, indent, depth, '[', ']', items.len(), |out, i, d| {
                    items[i].write(out, indent, d)
                });
            }
            Json::Obj(fields) => {
                write_seq(out, indent, depth, '{', '}', fields.len(), |out, i, d| {
                    let (k, v) = &fields[i];
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, d)
                });
            }
        }
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(w) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', w * (depth + 1)));
        }
        item(out, i, depth + 1);
    }
    if let Some(w) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', w * depth));
    }
    out.push(close);
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure, with the byte offset where it occurred.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// What went wrong.
    pub message: String,
    /// Byte offset into the input.
    pub offset: usize,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Parses a complete JSON document (trailing whitespace allowed).
pub fn parse(input: &str) -> Result<Json, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing data after document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> ParseError {
        ParseError {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("non-ASCII in \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogate pairs are not reconstructed; lone
                            // surrogates map to the replacement character.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(lead) => {
                    // Consume one UTF-8 scalar. The input came from a
                    // `&str`, so the lead byte's width is always in bounds
                    // and the slice re-validates for free; a replacement
                    // character covers the (unreachable) invalid case.
                    let width = match lead {
                        0x00..=0x7f => 1,
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        _ => 4,
                    };
                    let end = (self.pos + width).min(self.bytes.len());
                    match std::str::from_utf8(&self.bytes[self.pos..end])
                        .ok()
                        .and_then(|s| s.chars().next())
                    {
                        Some(c) => {
                            out.push(c);
                            self.pos += c.len_utf8();
                        }
                        None => {
                            out.push('\u{fffd}');
                            self.pos += 1;
                        }
                    }
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        if !is_float {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Json::U64(v));
            }
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Json::I64(v));
            }
        }
        text.parse::<f64>().map(Json::F64).map_err(|_| ParseError {
            message: format!("bad number '{text}'"),
            offset: start,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_preserves_structure() {
        let v = Json::obj(vec![
            ("name", Json::Str("spmm \"v2\"\n".to_string())),
            ("count", Json::U64(u64::MAX)),
            ("delta", Json::I64(-3)),
            ("ratio", Json::F64(0.25)),
            ("flag", Json::Bool(true)),
            ("none", Json::Null),
            (
                "list",
                Json::Arr(vec![Json::U64(1), Json::F64(1.5), Json::Str("x".into())]),
            ),
        ]);
        let text = v.to_string_pretty();
        assert_eq!(parse(&text).unwrap(), v);
        let compact = v.to_string_compact();
        assert_eq!(parse(&compact).unwrap(), v);
    }

    #[test]
    fn u64_counters_survive_exactly() {
        let v = Json::U64(9_007_199_254_740_993); // 2^53 + 1: not f64-exact
        let parsed = parse(&v.to_string_compact()).unwrap();
        assert_eq!(parsed.as_u64(), Some(9_007_199_254_740_993));
    }

    #[test]
    fn floats_format_as_valid_json() {
        assert_eq!(Json::F64(2.0).to_string_compact(), "2.0");
        assert_eq!(Json::F64(0.125).to_string_compact(), "0.125");
        assert_eq!(Json::F64(f64::NAN).to_string_compact(), "null");
        assert_eq!(Json::F64(f64::INFINITY).to_string_compact(), "null");
    }

    #[test]
    fn parses_escapes_and_unicode() {
        let v = parse(r#"{"k": "a\"b\\c\ndAé"}"#).unwrap();
        assert_eq!(v.get("k").unwrap().as_str(), Some("a\"b\\c\ndAé"));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\" 1}").is_err());
        assert!(parse("12 34").is_err());
        assert!(parse("").is_err());
    }

    #[test]
    fn accessors() {
        let v = parse(r#"{"a": [1, -2, 2.5], "s": "x", "b": true}"#).unwrap();
        let arr = v.get("a").unwrap().as_arr().unwrap();
        assert_eq!(arr[0].as_u64(), Some(1));
        assert_eq!(arr[1].as_f64(), Some(-2.0));
        assert_eq!(arr[2].as_f64(), Some(2.5));
        assert_eq!(v.get("s").unwrap().as_str(), Some("x"));
        assert_eq!(v.get("b").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("s").unwrap().as_bool(), None);
        assert_eq!(v.get("missing"), None);
        assert!(v.as_obj().is_some());
    }
}
