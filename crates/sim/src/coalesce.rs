//! Memory-coalescing model.
//!
//! When the 32 lanes of a warp execute one memory instruction, the hardware
//! groups the lane addresses into 32-byte *sectors* (the DRAM access
//! granularity on Volta+) belonging to 128-byte cache lines. A fully
//! coalesced warp-wide 4-byte access touches exactly 4 sectors (128 bytes);
//! a fully scattered one touches up to 32 sectors (1 KiB of traffic for
//! 128 bytes of data). The paper's Stage-1/Stage-2 designs are precisely
//! about keeping this number minimal (§4.1–4.2), so the simulator derives
//! both bandwidth cost and latency cost from the sector count.

/// DRAM sector size in bytes (Volta/Ampere: 32 B).
pub const SECTOR_BYTES: u64 = 32;

/// Cache-line / maximal transaction size in bytes.
pub const LINE_BYTES: u64 = 128;

/// Outcome of coalescing one warp-wide memory instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Access {
    /// Number of distinct 32-byte sectors touched.
    pub sectors: u32,
    /// Number of distinct 128-byte lines touched.
    pub lines: u32,
    /// Bytes of useful data requested by active lanes.
    pub useful_bytes: u64,
}

impl Access {
    /// Bytes of DRAM traffic generated (sectors × 32).
    pub fn traffic_bytes(&self) -> u64 {
        self.sectors as u64 * SECTOR_BYTES
    }

    /// Whether the access was perfectly coalesced, i.e. no byte of a touched
    /// sector is wasted.
    pub fn is_fully_coalesced(&self) -> bool {
        self.useful_bytes == self.traffic_bytes()
    }
}

/// Groups the byte ranges `[addr, addr + width)` of active lanes into
/// sectors and lines.
///
/// `addrs` yields `(addr, width_bytes)` per active lane. Sector sets are tiny
/// (≤ 32 per instruction for scalar, ≤ 64 for vector loads crossing
/// sectors), so a small sorted buffer beats a hash set — this runs in the
/// innermost loop of every simulated kernel.
pub fn coalesce(addrs: impl Iterator<Item = (u64, u64)>) -> Access {
    let mut sectors: Vec<u64> = Vec::with_capacity(32);
    let mut useful = 0u64;
    for (addr, width) in addrs {
        useful += width;
        let first = addr / SECTOR_BYTES;
        let last = (addr + width - 1) / SECTOR_BYTES;
        for s in first..=last {
            if let Err(pos) = sectors.binary_search(&s) {
                sectors.insert(pos, s);
            }
        }
    }
    let mut lines = 0u32;
    let mut prev_line = u64::MAX;
    for &s in &sectors {
        let line = s * SECTOR_BYTES / LINE_BYTES;
        if line != prev_line {
            lines += 1;
            prev_line = line;
        }
    }
    Access {
        sectors: sectors.len() as u32,
        lines,
        useful_bytes: useful,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scalar_addrs(addrs: &[u64]) -> Access {
        coalesce(addrs.iter().map(|&a| (a, 4)))
    }

    #[test]
    fn fully_coalesced_warp_load_is_four_sectors_one_line() {
        // 32 lanes × 4 bytes, consecutive, 128-byte aligned.
        let addrs: Vec<u64> = (0..32).map(|l| 1024 + l * 4).collect();
        let a = scalar_addrs(&addrs);
        assert_eq!(a.sectors, 4);
        assert_eq!(a.lines, 1);
        assert_eq!(a.useful_bytes, 128);
        assert!(a.is_fully_coalesced());
    }

    #[test]
    fn strided_access_wastes_bandwidth() {
        // Stride of 128 bytes: every lane touches its own line.
        let addrs: Vec<u64> = (0..32).map(|l| l * 128).collect();
        let a = scalar_addrs(&addrs);
        assert_eq!(a.sectors, 32);
        assert_eq!(a.lines, 32);
        assert_eq!(a.useful_bytes, 128);
        assert!(!a.is_fully_coalesced());
        assert_eq!(a.traffic_bytes(), 1024);
    }

    #[test]
    fn same_address_broadcast_is_one_sector() {
        let addrs = vec![64u64; 32];
        let a = scalar_addrs(&addrs);
        assert_eq!(a.sectors, 1);
        assert_eq!(a.lines, 1);
    }

    #[test]
    fn vector_load_float4_is_coalesced_across_eight_lanes() {
        // 8 lanes × 16 bytes consecutive = 128 bytes, 4 sectors — the
        // thread-group layout of GNNOne's Stage 2 (§4.2.1).
        let a = coalesce((0..8u64).map(|l| (2048 + l * 16, 16)));
        assert_eq!(a.sectors, 4);
        assert_eq!(a.lines, 1);
        assert!(a.is_fully_coalesced());
    }

    #[test]
    fn unaligned_access_touches_extra_sector() {
        // 32 consecutive floats starting 4 bytes into a sector.
        let addrs: Vec<u64> = (0..32).map(|l| 1028 + l * 4).collect();
        let a = scalar_addrs(&addrs);
        assert_eq!(a.sectors, 5);
        assert_eq!(a.useful_bytes, 128);
        assert!(!a.is_fully_coalesced());
    }

    #[test]
    fn empty_access_is_zero() {
        let a = coalesce(std::iter::empty());
        assert_eq!(a, Access::default());
        assert!(a.is_fully_coalesced()); // vacuously: 0 == 0
    }

    #[test]
    fn duplicate_sectors_counted_once() {
        let addrs = vec![0u64, 4, 8, 0, 4, 8];
        let a = scalar_addrs(&addrs);
        assert_eq!(a.sectors, 1);
        assert_eq!(a.useful_bytes, 24);
    }
}
