//! GPU occupancy calculation.
//!
//! Occupancy — resident warps per SM — is bounded by four resources:
//! thread slots, CTA slots, the register file, and shared memory. The paper
//! leans on this twice: Yang et al.'s nonzero-split SpMM materializes per-NZE
//! dot products in registers, collapsing occupancy and with it latency
//! hiding (§3.2); and GNNOne keeps its Stage-1 cache small enough that
//! shared memory never becomes the limiter (§4.1.1).

use crate::kernel::KernelResources;
use crate::spec::GpuSpec;

/// Resolved occupancy of a kernel on a spec.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Occupancy {
    /// Resident CTAs per SM.
    pub ctas_per_sm: usize,
    /// Resident warps per SM (`ctas_per_sm × warps_per_cta`).
    pub warps_per_sm: usize,
    /// Which resource bound first.
    pub limiter: Limiter,
}

/// The resource that bounds occupancy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Limiter {
    /// Thread-slot limit (full occupancy).
    Threads,
    /// CTA-slot limit.
    CtaSlots,
    /// Register file exhausted.
    Registers,
    /// Shared memory exhausted.
    SharedMemory,
    /// Kernel cannot run at all (one CTA exceeds an SM's resources).
    Unlaunchable,
}

impl Occupancy {
    /// Computes occupancy for `res` on `spec`.
    pub fn compute(spec: &GpuSpec, res: &KernelResources) -> Occupancy {
        let threads = res.threads_per_cta.max(1);
        // Register allocation is per-thread, clamped at the ISA limit —
        // beyond it the compiler spills, which we conservatively model by
        // capping (the spill traffic is charged by kernels that declare it).
        let regs = res.regs_per_thread.clamp(1, spec.max_regs_per_thread);

        let by_threads = spec.max_threads_per_sm / threads;
        let by_slots = spec.max_ctas_per_sm;
        let by_regs = spec.regs_per_sm / (regs * threads);
        let by_shared = spec
            .shared_mem_per_sm
            .checked_div(res.shared_bytes_per_cta)
            .unwrap_or(usize::MAX);

        let ctas = by_threads.min(by_slots).min(by_regs).min(by_shared);
        if ctas == 0 || res.shared_bytes_per_cta > spec.shared_mem_per_cta {
            return Occupancy {
                ctas_per_sm: 0,
                warps_per_sm: 0,
                limiter: Limiter::Unlaunchable,
            };
        }
        let limiter = if ctas == by_threads {
            Limiter::Threads
        } else if ctas == by_regs {
            Limiter::Registers
        } else if ctas == by_shared {
            Limiter::SharedMemory
        } else {
            Limiter::CtaSlots
        };
        Occupancy {
            ctas_per_sm: ctas,
            warps_per_sm: ctas * (threads / 32).max(1),
            limiter,
        }
    }

    /// Occupancy as a fraction of the spec's maximum resident warps.
    pub fn fraction(&self, spec: &GpuSpec) -> f64 {
        self.warps_per_sm as f64 / (spec.max_threads_per_sm / 32) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn res(threads: usize, regs: usize, shared: usize) -> KernelResources {
        KernelResources {
            threads_per_cta: threads,
            regs_per_thread: regs,
            shared_bytes_per_cta: shared,
        }
    }

    #[test]
    fn lean_kernel_reaches_full_occupancy() {
        let spec = GpuSpec::a100_40gb();
        let o = Occupancy::compute(&spec, &res(256, 32, 0));
        assert_eq!(o.ctas_per_sm, 8);
        assert_eq!(o.warps_per_sm, 64);
        assert_eq!(o.limiter, Limiter::Threads);
        assert!((o.fraction(&spec) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn register_hog_halves_occupancy() {
        // 64 regs/thread on A100: 65536 / (64 × 256) = 4 CTAs = 1024 threads.
        let spec = GpuSpec::a100_40gb();
        let o = Occupancy::compute(&spec, &res(256, 64, 0));
        assert_eq!(o.ctas_per_sm, 4);
        assert_eq!(o.limiter, Limiter::Registers);
        assert!((o.fraction(&spec) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn extreme_registers_collapse_occupancy() {
        // The Yang et al. pathology: 255 regs/thread.
        let spec = GpuSpec::a100_40gb();
        let o = Occupancy::compute(&spec, &res(256, 255, 0));
        assert_eq!(o.ctas_per_sm, 1);
        assert_eq!(o.limiter, Limiter::Registers);
    }

    #[test]
    fn regs_beyond_isa_limit_clamp() {
        let spec = GpuSpec::a100_40gb();
        let clamped = Occupancy::compute(&spec, &res(256, 10_000, 0));
        let at_limit = Occupancy::compute(&spec, &res(256, 255, 0));
        assert_eq!(clamped, at_limit);
    }

    #[test]
    fn shared_memory_limits() {
        // 40 KB per CTA on a 164 KB SM → 4 CTAs.
        let spec = GpuSpec::a100_40gb();
        let o = Occupancy::compute(&spec, &res(128, 32, 40 * 1024));
        assert_eq!(o.ctas_per_sm, 4);
        assert_eq!(o.limiter, Limiter::SharedMemory);
    }

    #[test]
    fn oversized_cta_is_unlaunchable() {
        let spec = GpuSpec::a100_40gb();
        let o = Occupancy::compute(&spec, &res(256, 32, 200 * 1024));
        assert_eq!(o.limiter, Limiter::Unlaunchable);
        assert_eq!(o.warps_per_sm, 0);
    }

    #[test]
    fn occupancy_monotone_in_register_use() {
        let spec = GpuSpec::a100_40gb();
        let mut prev = usize::MAX;
        for regs in [16, 32, 48, 64, 96, 128, 255] {
            let o = Occupancy::compute(&spec, &res(256, regs, 0));
            assert!(o.warps_per_sm <= prev, "regs={regs}");
            prev = o.warps_per_sm;
        }
    }
}
