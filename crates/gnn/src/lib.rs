//! # gnnone-gnn — GNN models, training, and system configurations
//!
//! End-to-end GNN training on top of the simulated sparse kernels
//! (paper §5.3):
//!
//! * [`graphops`] — autograd ops whose forward/backward launch the
//!   *simulated* sparse kernels: SpMM's backward calls SpMM(Aᵀ) and SDDMM,
//!   exactly the kernel interplay the paper builds on (§1);
//! * [`models`] — GCN (2-layer, hidden 16), GIN (5-layer, hidden 64) and
//!   GAT (5-layer, hidden 16), the paper's training workloads;
//! * [`systems`] — the three systems compared in Figs. 5–7: **GNNOne**
//!   (COO kernels), **DGL** (cuSPARSE SpMM + its own COO SDDMM, multiple
//!   formats), **dgNN** (vertex-parallel dgSparse kernels with attention
//!   fusion);
//! * [`timing`] — the simulated clock: sparse-kernel launches accumulate
//!   their `KernelReport` cycles, dense ops (linear/softmax/dropout — the
//!   "rely on PyTorch" part) are charged through a roofline cost model;
//! * [`train`] — the training loop (Adam, NLL loss, accuracy, masks);
//! * [`memory`] — the paper-scale device-memory model behind the Fig. 7
//!   OOM results.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod graphops;
pub mod memory;
pub mod models;
pub mod systems;
pub mod timing;
pub mod train;

pub use systems::{GnnContext, SystemKind};
pub use train::{train_model, TrainConfig, TrainResult};
