//! The paper's training workloads (§5.3): 2-layer GCN (hidden 16),
//! 5-layer GIN (hidden 64), 5-layer GAT (hidden 16).
//!
//! Models are define-by-run: `forward` replays the architecture onto a
//! fresh tape each step, registering parameters as leaves and returning
//! their ids so the trainer can route gradients to the optimizer. Dense
//! ops charge the simulated clock with a forward+backward roofline cost
//! (×3 of forward: one forward pass, two backward GEMMs), mirroring the
//! PyTorch side both systems share.

use std::rc::Rc;

use gnnone_tensor::optim::Param;
use gnnone_tensor::{init, ops, Tape, Tensor, VarId};

use crate::graphops;
use crate::systems::GnnContext;

/// Output of a model forward pass.
pub struct ForwardOutput {
    /// Raw class logits (`|V| × C`).
    pub logits: VarId,
    /// Tape ids of the parameters, aligned with `params_mut()` order.
    pub param_vars: Vec<VarId>,
}

/// A trainable GNN model.
pub trait GnnModel {
    /// Human-readable name ("GCN", "GIN", "GAT").
    fn name(&self) -> &'static str;

    /// Runs the forward pass for one step.
    fn forward(
        &self,
        tape: &mut Tape,
        ctx: &Rc<GnnContext>,
        x: &Tensor,
        training: bool,
        step: u64,
    ) -> ForwardOutput;

    /// Mutable access to the parameters, in `param_vars` order.
    fn params_mut(&mut self) -> Vec<&mut Param>;
}

/// A linear layer `x·W + b`.
struct Linear {
    w: Param,
    b: Param,
}

impl Linear {
    fn new(fan_in: usize, fan_out: usize, seed: u64) -> Self {
        Self {
            w: Param::new(init::xavier_uniform(fan_in, fan_out, seed)),
            b: Param::new(Tensor::zeros(1, fan_out)),
        }
    }

    fn apply(
        &self,
        tape: &mut Tape,
        ctx: &GnnContext,
        collector: &mut Vec<VarId>,
        x: VarId,
    ) -> VarId {
        let w = tape.leaf(self.w.value.clone(), true);
        let b = tape.leaf(self.b.value.clone(), true);
        collector.push(w);
        collector.push(b);
        let (n, k) = (tape.value(x).rows(), tape.value(x).cols());
        let m = self.w.value.cols();
        let z = ops::matmul(tape, x, w);
        let out = ops::add_bias(tape, z, b);
        // fwd GEMM + two bwd GEMMs.
        let flops = 3 * (n * k * m) as u64;
        let bytes = 3 * 4 * (n * k + k * m + n * m) as u64;
        ctx.clock.borrow_mut().charge_dense(flops, bytes);
        out
    }

    fn push_params<'a>(&'a mut self, out: &mut Vec<&'a mut Param>) {
        out.push(&mut self.w);
        out.push(&mut self.b);
    }
}

/// Charges an element-wise activation/dropout pass on `n` values.
fn charge_elementwise(ctx: &GnnContext, n: usize) {
    ctx.clock
        .borrow_mut()
        .charge_dense(3 * n as u64, 3 * 8 * n as u64);
}

// ------------------------------------------------------------------- GCN

/// 2-layer GCN (Kipf & Welling) with symmetric normalization.
pub struct Gcn {
    l1: Linear,
    l2: Linear,
    dropout: f32,
}

impl Gcn {
    /// GCN with the paper's shape: `input → 16 → classes`.
    pub fn new(input_dim: usize, hidden: usize, classes: usize, seed: u64) -> Self {
        Self {
            l1: Linear::new(input_dim, hidden, seed),
            l2: Linear::new(hidden, classes, seed + 1),
            dropout: 0.5,
        }
    }
}

impl GnnModel for Gcn {
    fn name(&self) -> &'static str {
        "GCN"
    }

    fn forward(
        &self,
        tape: &mut Tape,
        ctx: &Rc<GnnContext>,
        x: &Tensor,
        training: bool,
        step: u64,
    ) -> ForwardOutput {
        let mut pv = Vec::new();
        let norm = graphops::gcn_norm_weights(ctx);
        let x = tape.leaf(x.clone(), false);
        // Layer 1: Â (X W₁), ReLU, dropout.
        let z1 = self.l1.apply(tape, ctx, &mut pv, x);
        let a1 = graphops::spmm_const(ctx, tape, &norm, z1);
        let h1 = ops::relu(tape, a1);
        charge_elementwise(ctx, tape.value(h1).len());
        let h1 = ops::dropout(tape, h1, self.dropout, training, step ^ 0x5eed);
        // Layer 2: Â (H W₂).
        let z2 = self.l2.apply(tape, ctx, &mut pv, h1);
        let logits = graphops::spmm_const(ctx, tape, &norm, z2);
        ForwardOutput {
            logits,
            param_vars: pv,
        }
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut out = Vec::new();
        self.l1.push_params(&mut out);
        self.l2.push_params(&mut out);
        out
    }
}

// ------------------------------------------------------------------- GIN

/// One GIN layer: `MLP((1 + ε)·h + Σ_neighbors h)` with a 2-layer MLP.
struct GinLayer {
    mlp1: Linear,
    mlp2: Linear,
    eps: f32,
}

/// 5-layer GIN (Xu et al.) with hidden width 64.
pub struct Gin {
    layers: Vec<GinLayer>,
    classifier: Linear,
}

impl Gin {
    /// GIN with the paper's shape: `num_layers` of hidden width `hidden`.
    pub fn new(
        input_dim: usize,
        hidden: usize,
        classes: usize,
        num_layers: usize,
        seed: u64,
    ) -> Self {
        let mut layers = Vec::new();
        for i in 0..num_layers {
            let fan_in = if i == 0 { input_dim } else { hidden };
            layers.push(GinLayer {
                mlp1: Linear::new(fan_in, hidden, seed + 10 * i as u64),
                mlp2: Linear::new(hidden, hidden, seed + 10 * i as u64 + 5),
                eps: 0.0,
            });
        }
        Self {
            layers,
            classifier: Linear::new(hidden, classes, seed + 999),
        }
    }
}

impl GnnModel for Gin {
    fn name(&self) -> &'static str {
        "GIN"
    }

    fn forward(
        &self,
        tape: &mut Tape,
        ctx: &Rc<GnnContext>,
        x: &Tensor,
        _training: bool,
        _step: u64,
    ) -> ForwardOutput {
        let mut pv = Vec::new();
        let ones = graphops::ones_weights(ctx);
        let mut h = tape.leaf(x.clone(), false);
        for layer in &self.layers {
            let agg = graphops::spmm_const(ctx, tape, &ones, h);
            let selfed = ops::scale(tape, h, 1.0 + layer.eps);
            let s = ops::add(tape, agg, selfed);
            charge_elementwise(ctx, tape.value(s).len());
            let m1 = layer.mlp1.apply(tape, ctx, &mut pv, s);
            let r1 = ops::relu(tape, m1);
            charge_elementwise(ctx, tape.value(r1).len());
            let m2 = layer.mlp2.apply(tape, ctx, &mut pv, r1);
            let r2 = ops::relu(tape, m2);
            charge_elementwise(ctx, tape.value(r2).len());
            h = r2;
        }
        let logits = self.classifier.apply(tape, ctx, &mut pv, h);
        ForwardOutput {
            logits,
            param_vars: pv,
        }
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut out = Vec::new();
        for layer in &mut self.layers {
            layer.mlp1.push_params(&mut out);
            layer.mlp2.push_params(&mut out);
        }
        self.classifier.push_params(&mut out);
        out
    }
}

// ------------------------------------------------------------------- GAT

/// One GAT attention head: projection + the two attention vectors.
struct GatHead {
    proj: Linear,
    attn_l: Param,
    attn_r: Param,
}

/// One GAT layer: one or more heads, concatenated (hidden layers) or
/// averaged (output layer), as in Veličković et al.
struct GatLayer {
    heads: Vec<GatHead>,
    /// Concatenate head outputs (hidden layers) vs average them (output).
    concat: bool,
}

/// 5-layer GAT (Veličković et al.) with hidden width 16.
pub struct Gat {
    layers: Vec<GatLayer>,
    slope: f32,
}

impl Gat {
    /// Single-head GAT with the paper's shape (the configuration the
    /// Fig. 6 timing harness uses).
    pub fn new(
        input_dim: usize,
        hidden: usize,
        classes: usize,
        num_layers: usize,
        seed: u64,
    ) -> Self {
        Self::with_heads(input_dim, hidden, classes, num_layers, 1, seed)
    }

    /// Multi-head GAT: `heads` per hidden layer (outputs concatenated, so
    /// the next layer sees `heads × hidden` features) and `heads` averaged
    /// heads on the output layer.
    pub fn with_heads(
        input_dim: usize,
        hidden: usize,
        classes: usize,
        num_layers: usize,
        heads: usize,
        seed: u64,
    ) -> Self {
        assert!(heads >= 1);
        let mut layers = Vec::new();
        for i in 0..num_layers {
            let last = i + 1 == num_layers;
            let fan_in = if i == 0 { input_dim } else { hidden * heads };
            let fan_out = if last { classes } else { hidden };
            let mut hs = Vec::new();
            for h in 0..heads {
                let s = seed + 100 * i as u64 + 10 * h as u64;
                hs.push(GatHead {
                    proj: Linear::new(fan_in, fan_out, s),
                    attn_l: Param::new(init::xavier_uniform(fan_out, 1, s + 7)),
                    attn_r: Param::new(init::xavier_uniform(fan_out, 1, s + 13)),
                });
            }
            layers.push(GatLayer {
                heads: hs,
                concat: !last,
            });
        }
        Self { layers, slope: 0.2 }
    }
}

impl GnnModel for Gat {
    fn name(&self) -> &'static str {
        "GAT"
    }

    fn forward(
        &self,
        tape: &mut Tape,
        ctx: &Rc<GnnContext>,
        x: &Tensor,
        _training: bool,
        _step: u64,
    ) -> ForwardOutput {
        let mut pv = Vec::new();
        let mut h = tape.leaf(x.clone(), false);
        let n_layers = self.layers.len();
        for (i, layer) in self.layers.iter().enumerate() {
            // Each head: projection, attention logits
            // e = LeakyReLU(z·a_l [u] + z·a_r [v]), softmax, aggregation.
            // The attention step is the unfused pipeline (GNNOne/DGL) or
            // dgNN's single fused kernel; either way the backward launches
            // the transposed SpMM and SDDMM — GAT needs both kernels (§3.1).
            let mut head_outs = Vec::with_capacity(layer.heads.len());
            for head in &layer.heads {
                let z = head.proj.apply(tape, ctx, &mut pv, h);
                let al = tape.leaf(head.attn_l.value.clone(), true);
                let ar = tape.leaf(head.attn_r.value.clone(), true);
                pv.push(al);
                pv.push(ar);
                let el = ops::matmul(tape, z, al);
                let er = ops::matmul(tape, z, ar);
                head_outs.push(graphops::gat_attention(ctx, tape, el, er, z, self.slope));
            }
            // Combine heads: concat (hidden) / average (output).
            let mut agg = head_outs[0];
            for &other in &head_outs[1..] {
                agg = if layer.concat {
                    ops::concat_cols(tape, agg, other)
                } else {
                    ops::add(tape, agg, other)
                };
            }
            if !layer.concat && head_outs.len() > 1 {
                agg = ops::scale(tape, agg, 1.0 / head_outs.len() as f32);
            }
            h = if i + 1 == n_layers {
                agg
            } else {
                let r = ops::relu(tape, agg);
                charge_elementwise(ctx, tape.value(r).len());
                r
            };
        }
        ForwardOutput {
            logits: h,
            param_vars: pv,
        }
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut out = Vec::new();
        for layer in &mut self.layers {
            for head in &mut layer.heads {
                head.proj.push_params(&mut out);
                out.push(&mut head.attn_l);
                out.push(&mut head.attn_r);
            }
        }
        out
    }
}

// ----------------------------------------------------- serving exports

/// Frozen [`Gcn`] weights exported for inference serving. The training
/// structs keep their parameters private (the tape owns gradient routing);
/// serving needs only the forward values, so the export clones them out
/// as plain tensors.
pub struct GcnServingWeights {
    /// Layer-1 projection (`input × hidden`).
    pub w1: Tensor,
    /// Layer-1 bias (`1 × hidden`).
    pub b1: Tensor,
    /// Layer-2 projection (`hidden × classes`).
    pub w2: Tensor,
    /// Layer-2 bias (`1 × classes`).
    pub b2: Tensor,
}

impl Gcn {
    /// Exports the frozen forward weights for serving.
    pub fn serving_weights(&self) -> GcnServingWeights {
        GcnServingWeights {
            w1: self.l1.w.value.clone(),
            b1: self.l1.b.value.clone(),
            w2: self.l2.w.value.clone(),
            b2: self.l2.b.value.clone(),
        }
    }
}

/// Frozen weights of one [`Gat`] attention head for serving.
pub struct GatHeadWeights {
    /// Projection (`fan_in × fan_out`).
    pub w: Tensor,
    /// Projection bias (`1 × fan_out`).
    pub b: Tensor,
    /// Destination-side attention vector (`fan_out × 1`).
    pub attn_l: Tensor,
    /// Source-side attention vector (`fan_out × 1`).
    pub attn_r: Tensor,
}

/// Frozen weights of one [`Gat`] layer for serving.
pub struct GatLayerWeights {
    /// Per-head weights, in head order.
    pub heads: Vec<GatHeadWeights>,
    /// Concatenate head outputs (hidden layers) vs average them (output).
    pub concat: bool,
}

impl Gat {
    /// The LeakyReLU negative slope used by every attention layer.
    pub fn slope(&self) -> f32 {
        self.slope
    }

    /// Exports the frozen per-layer forward weights for serving.
    pub fn serving_weights(&self) -> Vec<GatLayerWeights> {
        self.layers
            .iter()
            .map(|layer| GatLayerWeights {
                heads: layer
                    .heads
                    .iter()
                    .map(|h| GatHeadWeights {
                        w: h.proj.w.value.clone(),
                        b: h.proj.b.value.clone(),
                        attn_l: h.attn_l.value.clone(),
                        attn_r: h.attn_r.value.clone(),
                    })
                    .collect(),
                concat: layer.concat,
            })
            .collect()
    }
}

// ------------------------------------------------------------- GraphSAGE

/// GraphSAGE (Hamilton et al.) with the mean aggregator — an **IR-only
/// model variant**: the neighbour sum is [`graphops::sage_aggregate`],
/// whose `copy_u → aggregate_sum` IR chain the lowering pass folds into a
/// single `RowAccum` launch with unit edge values. No hand-written
/// aggregation kernel exists for it.
pub struct GraphSage {
    layers: Vec<Linear>,
    classifier: Linear,
}

impl GraphSage {
    /// `num_layers` of hidden width `hidden`; each layer applies a linear
    /// to `concat(h, mean_agg(h))`, SAGE-style.
    pub fn new(
        input_dim: usize,
        hidden: usize,
        classes: usize,
        num_layers: usize,
        seed: u64,
    ) -> Self {
        let mut layers = Vec::new();
        for i in 0..num_layers {
            let fan_in = if i == 0 { input_dim } else { hidden };
            layers.push(Linear::new(2 * fan_in, hidden, seed + 10 * i as u64));
        }
        Self {
            layers,
            classifier: Linear::new(hidden, classes, seed + 999),
        }
    }
}

/// `|V| × f` tensor of `1/max(deg_in, 1)` per row, replicated across
/// columns — turns the IR-lowered neighbour sum into the mean.
fn mean_scaler(ctx: &GnnContext, f: usize) -> Tensor {
    let csr = &ctx.graph.csr;
    let n = ctx.num_vertices();
    let mut data = vec![0.0f32; n * f];
    for r in 0..n {
        let inv = 1.0 / (csr.row_range(r).len().max(1) as f32);
        data[r * f..(r + 1) * f].fill(inv);
    }
    Tensor::from_vec(n, f, data)
}

impl GnnModel for GraphSage {
    fn name(&self) -> &'static str {
        "GraphSAGE"
    }

    fn forward(
        &self,
        tape: &mut Tape,
        ctx: &Rc<GnnContext>,
        x: &Tensor,
        _training: bool,
        _step: u64,
    ) -> ForwardOutput {
        let mut pv = Vec::new();
        let mut h = tape.leaf(x.clone(), false);
        for layer in &self.layers {
            // Neighbour sum via the IR (`copy_u → aggregate_sum` fold),
            // then the mean via a constant per-row scaler.
            let agg = graphops::sage_aggregate(ctx, tape, h);
            let f = tape.value(h).cols();
            let scaler = tape.leaf(mean_scaler(ctx, f), false);
            let mean = ops::mul(tape, agg, scaler);
            charge_elementwise(ctx, tape.value(mean).len());
            let cat = ops::concat_cols(tape, h, mean);
            let z = layer.apply(tape, ctx, &mut pv, cat);
            let r = ops::relu(tape, z);
            charge_elementwise(ctx, tape.value(r).len());
            h = r;
        }
        let logits = self.classifier.apply(tape, ctx, &mut pv, h);
        ForwardOutput {
            logits,
            param_vars: pv,
        }
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut out = Vec::new();
        for layer in &mut self.layers {
            layer.push_params(&mut out);
        }
        self.classifier.push_params(&mut out);
        out
    }
}

// ------------------------------------------------------- dot attention

/// One dot-product attention layer: query/key/value projections.
struct DotAttnLayer {
    q: Linear,
    k: Linear,
    v: Linear,
}

/// Transformer-style dot-product attention GNN — the second **IR-only
/// model variant**: its `u_dot_v → edge_softmax → u_mul_e →
/// aggregate_sum` chain has no fused pipeline, so the lowering pass
/// emits the unfused fallback (an `EdgeDot` launch, the host softmax,
/// and a `RowAccum` launch) via [`graphops::dot_attention`]. Zero new
/// hand-written kernels.
pub struct DotGat {
    layers: Vec<DotAttnLayer>,
}

impl DotGat {
    /// `num_layers` of hidden width `hidden`, classes on the last layer.
    pub fn new(
        input_dim: usize,
        hidden: usize,
        classes: usize,
        num_layers: usize,
        seed: u64,
    ) -> Self {
        let mut layers = Vec::new();
        for i in 0..num_layers {
            let last = i + 1 == num_layers;
            let fan_in = if i == 0 { input_dim } else { hidden };
            let fan_out = if last { classes } else { hidden };
            let s = seed + 100 * i as u64;
            layers.push(DotAttnLayer {
                q: Linear::new(fan_in, fan_out, s),
                k: Linear::new(fan_in, fan_out, s + 3),
                v: Linear::new(fan_in, fan_out, s + 5),
            });
        }
        Self { layers }
    }
}

impl GnnModel for DotGat {
    fn name(&self) -> &'static str {
        "DotGAT"
    }

    fn forward(
        &self,
        tape: &mut Tape,
        ctx: &Rc<GnnContext>,
        x: &Tensor,
        _training: bool,
        _step: u64,
    ) -> ForwardOutput {
        let mut pv = Vec::new();
        let mut h = tape.leaf(x.clone(), false);
        let n_layers = self.layers.len();
        for (i, layer) in self.layers.iter().enumerate() {
            let q = layer.q.apply(tape, ctx, &mut pv, h);
            let k = layer.k.apply(tape, ctx, &mut pv, h);
            let v = layer.v.apply(tape, ctx, &mut pv, h);
            // Scaled dot-product scores k[c]·q[r]/√d, softmaxed per row.
            let dh = tape.value(q).cols();
            let qs = ops::scale(tape, q, 1.0 / (dh as f32).sqrt());
            let y = graphops::dot_attention(ctx, tape, qs, k, v);
            h = if i + 1 == n_layers {
                y
            } else {
                let r = ops::relu(tape, y);
                charge_elementwise(ctx, tape.value(r).len());
                r
            };
        }
        ForwardOutput {
            logits: h,
            param_vars: pv,
        }
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut out = Vec::new();
        for layer in &mut self.layers {
            layer.q.push_params(&mut out);
            layer.k.push_params(&mut out);
            layer.v.push_params(&mut out);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::systems::SystemKind;
    use gnnone_sim::GpuSpec;
    use gnnone_sparse::formats::Coo;
    use gnnone_sparse::gen;

    fn ctx() -> Rc<GnnContext> {
        let el = gen::erdos_renyi(40, 160, 3).symmetrize();
        Rc::new(GnnContext::new(
            SystemKind::GnnOne,
            Coo::from_edge_list(&el),
            GpuSpec::a100_40gb(),
        ))
    }

    fn features(c: &GnnContext, f: usize) -> Tensor {
        Tensor::from_vec(
            c.num_vertices(),
            f,
            (0..c.num_vertices() * f)
                .map(|i| ((i % 13) as f32 - 6.0) * 0.1)
                .collect(),
        )
    }

    #[test]
    fn gcn_shapes_and_params() {
        let c = ctx();
        let mut model = Gcn::new(8, 16, 3, 1);
        let mut tape = Tape::new();
        let out = model.forward(&mut tape, &c, &features(&c, 8), true, 0);
        assert_eq!(tape.value(out.logits).rows(), c.num_vertices());
        assert_eq!(tape.value(out.logits).cols(), 3);
        assert_eq!(out.param_vars.len(), model.params_mut().len());
    }

    #[test]
    fn gin_depth_and_shapes() {
        let c = ctx();
        let mut model = Gin::new(8, 64, 5, 5, 2);
        let mut tape = Tape::new();
        let out = model.forward(&mut tape, &c, &features(&c, 8), true, 0);
        assert_eq!(tape.value(out.logits).cols(), 5);
        // 5 layers × 2 MLP linears × 2 params + classifier 2.
        assert_eq!(model.params_mut().len(), 5 * 4 + 2);
        assert_eq!(out.param_vars.len(), 22);
    }

    #[test]
    fn gat_shapes_and_params() {
        let c = ctx();
        let mut model = Gat::new(8, 16, 4, 5, 3);
        let mut tape = Tape::new();
        let out = model.forward(&mut tape, &c, &features(&c, 8), true, 0);
        assert_eq!(tape.value(out.logits).cols(), 4);
        // 5 layers × (2 linear params + 2 attention vectors).
        assert_eq!(model.params_mut().len(), 20);
    }

    #[test]
    fn gradients_flow_to_every_parameter() {
        let c = ctx();
        let model = Gat::new(8, 16, 4, 2, 4);
        let mut tape = Tape::new();
        let out = model.forward(&mut tape, &c, &features(&c, 8), true, 0);
        let ls = ops::log_softmax(&mut tape, out.logits);
        let targets: Vec<u32> = (0..c.num_vertices() as u32).map(|v| v % 4).collect();
        let loss = ops::nll_loss(&mut tape, ls, &targets, None);
        let grads = tape.backward(loss);
        for (i, &pid) in out.param_vars.iter().enumerate() {
            let g = grads[pid]
                .as_ref()
                .unwrap_or_else(|| panic!("param {i} has no grad"));
            assert!(
                g.data().iter().any(|&v| v != 0.0),
                "param {i} gradient is all zero"
            );
        }
    }

    #[test]
    fn graphsage_runs_forward_and_backward_as_ir_only() {
        let c = ctx();
        let mut model = GraphSage::new(8, 16, 3, 2, 5);
        let mut tape = Tape::new();
        let out = model.forward(&mut tape, &c, &features(&c, 8), true, 0);
        assert_eq!(tape.value(out.logits).rows(), c.num_vertices());
        assert_eq!(tape.value(out.logits).cols(), 3);
        // 2 SAGE linears + classifier, 2 params each.
        assert_eq!(model.params_mut().len(), 6);
        let ls = ops::log_softmax(&mut tape, out.logits);
        let targets: Vec<u32> = (0..c.num_vertices() as u32).map(|v| v % 3).collect();
        let loss = ops::nll_loss(&mut tape, ls, &targets, None);
        let grads = tape.backward(loss);
        for (i, &pid) in out.param_vars.iter().enumerate() {
            let g = grads[pid]
                .as_ref()
                .unwrap_or_else(|| panic!("param {i} has no grad"));
            assert!(g.data().iter().any(|&v| v != 0.0), "param {i} all-zero");
        }
    }

    #[test]
    fn dot_attention_runs_forward_and_backward_as_ir_only() {
        let c = ctx();
        let mut model = DotGat::new(8, 16, 3, 2, 7);
        let mut tape = Tape::new();
        let out = model.forward(&mut tape, &c, &features(&c, 8), true, 0);
        assert_eq!(tape.value(out.logits).rows(), c.num_vertices());
        assert_eq!(tape.value(out.logits).cols(), 3);
        // 2 layers × 3 projections × (W, b).
        assert_eq!(model.params_mut().len(), 12);
        let ls = ops::log_softmax(&mut tape, out.logits);
        let targets: Vec<u32> = (0..c.num_vertices() as u32).map(|v| v % 3).collect();
        let loss = ops::nll_loss(&mut tape, ls, &targets, None);
        let grads = tape.backward(loss);
        for (i, &pid) in out.param_vars.iter().enumerate() {
            let g = grads[pid]
                .as_ref()
                .unwrap_or_else(|| panic!("param {i} has no grad"));
            assert!(g.data().iter().any(|&v| v != 0.0), "param {i} all-zero");
        }
    }

    #[test]
    fn forward_charges_the_clock() {
        let c = ctx();
        let model = Gcn::new(8, 16, 3, 5);
        let mut tape = Tape::new();
        let _ = model.forward(&mut tape, &c, &features(&c, 8), true, 0);
        let clock = c.clock.borrow();
        assert!(clock.kernel_cycles > 0, "sparse kernels charged");
        assert!(clock.dense_cycles > 0, "dense ops charged");
    }
}

#[cfg(test)]
mod multihead_tests {
    use super::*;
    use crate::systems::SystemKind;
    use crate::train::{train_model, TrainConfig};
    use gnnone_sim::GpuSpec;
    use gnnone_sparse::formats::Coo;
    use gnnone_sparse::gen;

    #[test]
    fn multihead_gat_shapes_and_params() {
        let el = gen::erdos_renyi(30, 120, 5).symmetrize();
        let c = Rc::new(GnnContext::new(
            SystemKind::GnnOne,
            Coo::from_edge_list(&el),
            GpuSpec::a100_40gb(),
        ));
        let heads = 4;
        let mut model = Gat::with_heads(8, 16, 3, 2, heads, 11);
        let x = Tensor::from_vec(
            c.num_vertices(),
            8,
            (0..c.num_vertices() * 8)
                .map(|i| (i % 7) as f32 * 0.1)
                .collect(),
        );
        let mut tape = Tape::new();
        let out = model.forward(&mut tape, &c, &x, true, 0);
        // Output layer averages heads → classes columns.
        assert_eq!(tape.value(out.logits).cols(), 3);
        // 2 layers × 4 heads × (W, b, a_l, a_r).
        assert_eq!(model.params_mut().len(), 2 * heads * 4);
        assert_eq!(out.param_vars.len(), 2 * heads * 4);
    }

    #[test]
    fn multihead_gat_learns() {
        let g = gen::planted_partition(100, 3, 8.0, 0.9, 8, 0.2, 23);
        let coo = Coo::from_edge_list(&g.edges.clone().symmetrize());
        let ctx = Rc::new(GnnContext::new(
            SystemKind::GnnOne,
            coo,
            GpuSpec::a100_40gb(),
        ));
        let x = Tensor::from_vec(100, g.feature_dim, g.features.clone());
        let mut model = Gat::with_heads(8, 8, 3, 2, 2, 31);
        let cfg = TrainConfig {
            epochs: 50,
            lr: 0.02,
            ..Default::default()
        };
        let r = train_model(&mut model, &ctx, &x, &g.labels, &cfg);
        assert!(
            r.test_accuracy > 0.6,
            "multi-head GAT accuracy {}",
            r.test_accuracy
        );
    }

    #[test]
    fn multihead_gradients_reach_every_head() {
        let el = gen::erdos_renyi(24, 96, 7).symmetrize();
        let c = Rc::new(GnnContext::new(
            SystemKind::GnnOne,
            Coo::from_edge_list(&el),
            GpuSpec::a100_40gb(),
        ));
        let model = Gat::with_heads(4, 8, 2, 2, 3, 41);
        let x = Tensor::from_vec(
            c.num_vertices(),
            4,
            (0..c.num_vertices() * 4)
                .map(|i| ((i % 5) as f32 - 2.0) * 0.2)
                .collect(),
        );
        let mut tape = Tape::new();
        let out = model.forward(&mut tape, &c, &x, true, 0);
        let ls = ops::log_softmax(&mut tape, out.logits);
        let targets: Vec<u32> = (0..c.num_vertices() as u32).map(|v| v % 2).collect();
        let loss = ops::nll_loss(&mut tape, ls, &targets, None);
        let grads = tape.backward(loss);
        for (i, &pid) in out.param_vars.iter().enumerate() {
            let g = grads[pid]
                .as_ref()
                .unwrap_or_else(|| panic!("head param {i} missing grad"));
            assert!(
                g.data().iter().any(|&v| v != 0.0),
                "param {i} all-zero grad"
            );
        }
    }
}
