//! Paper-scale device-memory model — the mechanism behind Fig. 7's OOM
//! results ("GNNOne could train GCN on G17 due to memory saving enabled by
//! keeping a single storage format, while DGL ran out of memory; for G16
//! and G18 both systems ran out of memory").
//!
//! The estimate itemizes, at the *paper's* vertex/edge counts:
//!
//! * resident storage formats (GNNOne: COO only; DGL: COO + CSR + CSC);
//! * input features and per-layer activations (+ gradients);
//! * edge-level tensors (weights, attention, gradients);
//! * DGL's known edge-message materialization in the backward pass of
//!   weighted SpMM (`|E| × hidden` floats) — the dominant term that tips
//!   uk-2002 over 40 GB under DGL but not under GNNOne;
//! * optimizer state and a small framework-overhead factor.

use crate::systems::SystemKind;
use gnnone_sparse::datasets::DatasetSpec;
use serde::{Deserialize, Serialize};

/// Which model the estimate is for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ModelKind {
    /// 2-layer GCN, hidden 16.
    Gcn,
    /// 5-layer GIN, hidden 64.
    Gin,
    /// 5-layer GAT, hidden 16.
    Gat,
}

impl ModelKind {
    /// (layers, hidden width) per the paper's §5.3 setup.
    pub fn shape(&self) -> (u64, u64) {
        match self {
            ModelKind::Gcn => (2, 16),
            ModelKind::Gin => (5, 64),
            ModelKind::Gat => (5, 16),
        }
    }

    /// Whether edge weights are trainable (GAT's attention) — adds
    /// edge-level gradient tensors.
    pub fn trainable_edge_weights(&self) -> bool {
        matches!(self, ModelKind::Gat)
    }
}

/// Itemized memory estimate.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MemoryEstimate {
    /// (item, bytes) pairs.
    pub items: Vec<(String, u64)>,
    /// Total bytes including overhead factor.
    pub total_bytes: u64,
}

impl MemoryEstimate {
    /// Whether the estimate fits a device of `device_bytes`.
    pub fn fits(&self, device_bytes: u64) -> bool {
        self.total_bytes <= device_bytes
    }
}

/// Estimates training memory for `system` × `model` on a dataset at the
/// paper's scale.
pub fn estimate_training_bytes(
    system: SystemKind,
    model: ModelKind,
    spec: &DatasetSpec,
) -> MemoryEstimate {
    let v = spec.paper_vertices;
    let e = spec.paper_edges;
    let f_in = spec.feature_len as u64;
    let (layers, hidden) = model.shape();
    let mut items: Vec<(String, u64)> = Vec::new();

    // Storage formats.
    for fmt in system.formats() {
        let bytes = match *fmt {
            "COO" => 8 * e,
            "CSR" | "CSC" => 4 * e + 4 * (v + 1),
            other => unreachable!("unknown format {other}"),
        };
        items.push((format!("format:{fmt}"), bytes));
    }

    // Input features (no gradient needed).
    items.push(("features:input".into(), 4 * v * f_in));

    // Activations + gradients per layer (value, grad, workspace).
    items.push(("activations+grads".into(), 3 * 4 * v * hidden * layers));

    // Edge-level tensors: weights always; logits/attention/grads for GAT.
    let edge_tensors: u64 = if model.trainable_edge_weights() {
        4 * layers // logits, alpha, dlogits, dalpha per layer (amortized 4×)
    } else {
        1
    };
    items.push(("edge tensors".into(), 4 * e * edge_tensors));

    // DGL materializes |E| × hidden messages in weighted-SpMM backward.
    if system == SystemKind::Dgl {
        items.push(("DGL edge-message materialization".into(), 4 * e * hidden));
    }

    // Optimizer state (Adam: 2 moments + grads ≈ 3× weights) — weights are
    // tiny relative to features.
    let weight_elems = layers * hidden * (f_in.max(hidden) + hidden);
    items.push(("weights+Adam".into(), 4 * weight_elems * 4));

    let raw: u64 = items.iter().map(|(_, b)| b).sum();
    // Allocator fragmentation + framework bookkeeping.
    let total_bytes = (raw as f64 * 1.10) as u64;
    MemoryEstimate { items, total_bytes }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnnone_sparse::datasets::by_id;

    const A100_BYTES: u64 = 40 * 1024 * 1024 * 1024;

    #[test]
    fn fig7_gcn_oom_pattern() {
        // G17 (uk-2002): GNNOne trains, DGL OOMs.
        let g17 = by_id("G17").unwrap();
        let one = estimate_training_bytes(SystemKind::GnnOne, ModelKind::Gcn, &g17);
        let dgl = estimate_training_bytes(SystemKind::Dgl, ModelKind::Gcn, &g17);
        assert!(one.fits(A100_BYTES), "GNNOne should fit G17: {one:?}");
        assert!(!dgl.fits(A100_BYTES), "DGL should OOM on G17");

        // G16 (kmer) and G18 (uk-2005): both OOM.
        for id in ["G16", "G18"] {
            let spec = by_id(id).unwrap();
            let one = estimate_training_bytes(SystemKind::GnnOne, ModelKind::Gcn, &spec);
            let dgl = estimate_training_bytes(SystemKind::Dgl, ModelKind::Gcn, &spec);
            assert!(!one.fits(A100_BYTES), "{id}: GNNOne should OOM");
            assert!(!dgl.fits(A100_BYTES), "{id}: DGL should OOM");
        }
    }

    #[test]
    fn mid_size_datasets_fit_both_systems() {
        // LiveJournal, Reddit, orkut all train under both systems in Fig. 7.
        for id in ["G13", "G14", "G15"] {
            let spec = by_id(id).unwrap();
            for system in [SystemKind::GnnOne, SystemKind::Dgl] {
                let est = estimate_training_bytes(system, ModelKind::Gcn, &spec);
                assert!(
                    est.fits(A100_BYTES),
                    "{id}/{}: {} GB should fit",
                    system.name(),
                    est.total_bytes / (1 << 30)
                );
            }
        }
    }

    #[test]
    fn gnnone_always_uses_less_memory_than_dgl() {
        for spec in gnnone_sparse::datasets::table1() {
            for model in [ModelKind::Gcn, ModelKind::Gin, ModelKind::Gat] {
                let one = estimate_training_bytes(SystemKind::GnnOne, model, &spec);
                let dgl = estimate_training_bytes(SystemKind::Dgl, model, &spec);
                assert!(one.total_bytes < dgl.total_bytes, "{}", spec.id);
            }
        }
    }

    #[test]
    fn estimates_itemize() {
        let spec = by_id("G14").unwrap();
        let est = estimate_training_bytes(SystemKind::Dgl, ModelKind::Gat, &spec);
        assert!(est.items.iter().any(|(n, _)| n.starts_with("format:CSR")));
        assert!(est.items.iter().any(|(n, _)| n.contains("materialization")));
        let sum: u64 = est.items.iter().map(|(_, b)| b).sum();
        assert!(est.total_bytes >= sum);
    }
}
