//! The training loop (paper §5.3): Adam, NLL loss over a train mask,
//! accuracy on a held-out test mask, simulated epoch timing.

use std::rc::Rc;

use gnnone_tensor::optim::Adam;
use gnnone_tensor::{ops, Tape, Tensor};

use crate::models::GnnModel;
use crate::systems::GnnContext;

/// Training hyper-parameters.
#[derive(Debug, Clone)]
pub struct TrainConfig {
    /// Number of epochs (the paper times 200).
    pub epochs: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Fraction of vertices in the train split.
    pub train_fraction: f64,
    /// Seed for the split.
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            epochs: 200,
            lr: 0.01,
            train_fraction: 0.6,
            seed: 1,
        }
    }
}

/// Result of a training run.
#[derive(Debug, Clone)]
pub struct TrainResult {
    /// Loss after each epoch.
    pub losses: Vec<f32>,
    /// Final train-split accuracy.
    pub train_accuracy: f64,
    /// Final test-split accuracy (what Fig. 5 reports).
    pub test_accuracy: f64,
    /// Total simulated time over all epochs, milliseconds.
    pub simulated_ms: f64,
    /// Simulated sparse-kernel milliseconds.
    pub kernel_ms: f64,
    /// Kernel/dense launches issued.
    pub launches: u64,
}

/// Deterministic train/test split.
pub fn split_masks(n: usize, train_fraction: f64, seed: u64) -> (Vec<bool>, Vec<bool>) {
    use rand::prelude::*;
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
    let mut train = vec![false; n];
    let mut test = vec![false; n];
    for v in 0..n {
        if rng.gen_bool(train_fraction) {
            train[v] = true;
        } else {
            test[v] = true;
        }
    }
    (train, test)
}

/// Trains `model` on `(features, labels)` over the context's graph,
/// returning accuracy and simulated timing.
pub fn train_model(
    model: &mut dyn GnnModel,
    ctx: &Rc<GnnContext>,
    features: &Tensor,
    labels: &[u32],
    config: &TrainConfig,
) -> TrainResult {
    assert_eq!(features.rows(), ctx.num_vertices());
    assert_eq!(labels.len(), ctx.num_vertices());
    let (train_mask, test_mask) =
        split_masks(ctx.num_vertices(), config.train_fraction, config.seed);
    let mut opt = Adam::new(config.lr);
    ctx.clock.borrow_mut().reset();

    let mut losses = Vec::with_capacity(config.epochs);
    for epoch in 0..config.epochs {
        if let Some(session) = ctx.clock.borrow().trace() {
            session.record_marker(&format!("epoch {epoch}"));
        }
        let mut tape = Tape::new();
        let out = model.forward(&mut tape, ctx, features, true, epoch as u64);
        let ls = ops::log_softmax(&mut tape, out.logits);
        let loss = ops::nll_loss(&mut tape, ls, labels, Some(&train_mask));
        losses.push(tape.value(loss).item());
        let grads = tape.backward(loss);
        let grad_refs: Vec<Option<&Tensor>> = out
            .param_vars
            .iter()
            .map(|&pid| grads[pid].as_ref())
            .collect();
        let mut params = model.params_mut();
        opt.step(&mut params, &grad_refs);
    }

    // Final evaluation pass (no dropout).
    let mut tape = Tape::new();
    let out = model.forward(&mut tape, ctx, features, false, u64::MAX);
    let ls = ops::log_softmax(&mut tape, out.logits);
    let lp = tape.value(ls);
    let train_accuracy = ops::accuracy(lp, labels, Some(&train_mask));
    let test_accuracy = ops::accuracy(lp, labels, Some(&test_mask));

    let clock = ctx.clock.borrow();
    TrainResult {
        losses,
        train_accuracy,
        test_accuracy,
        simulated_ms: clock.total_ms(),
        kernel_ms: clock.spec().cycles_to_ms(clock.kernel_cycles),
        launches: clock.launches,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::{Gat, Gcn, Gin};
    use crate::systems::SystemKind;
    use gnnone_sim::GpuSpec;
    use gnnone_sparse::formats::Coo;
    use gnnone_sparse::gen;

    fn labeled_setup() -> (Rc<GnnContext>, Tensor, Vec<u32>) {
        let g = gen::planted_partition(120, 3, 8.0, 0.9, 8, 0.2, 7);
        let coo = Coo::from_edge_list(&g.edges.clone().symmetrize());
        let ctx = Rc::new(GnnContext::new(
            SystemKind::GnnOne,
            coo,
            GpuSpec::a100_40gb(),
        ));
        let x = Tensor::from_vec(120, g.feature_dim, g.features.clone());
        (ctx, x, g.labels)
    }

    #[test]
    fn split_masks_partition() {
        let (train, test) = split_masks(100, 0.6, 3);
        for v in 0..100 {
            assert!(train[v] ^ test[v]);
        }
        let t = train.iter().filter(|&&b| b).count();
        assert!((40..80).contains(&t));
    }

    #[test]
    fn gcn_learns_planted_partition() {
        let (ctx, x, labels) = labeled_setup();
        let mut model = Gcn::new(8, 16, 3, 11);
        let cfg = TrainConfig {
            epochs: 60,
            ..Default::default()
        };
        let r = train_model(&mut model, &ctx, &x, &labels, &cfg);
        assert!(
            r.test_accuracy > 0.7,
            "GCN test accuracy {} too low",
            r.test_accuracy
        );
        assert!(r.losses.first().unwrap() > r.losses.last().unwrap());
        assert!(r.simulated_ms > 0.0);
        assert!(r.launches > 0);
    }

    #[test]
    fn gin_learns_planted_partition() {
        let (ctx, x, labels) = labeled_setup();
        let mut model = Gin::new(8, 16, 3, 2, 13);
        let cfg = TrainConfig {
            epochs: 60,
            ..Default::default()
        };
        let r = train_model(&mut model, &ctx, &x, &labels, &cfg);
        assert!(
            r.test_accuracy > 0.6,
            "GIN test accuracy {} too low",
            r.test_accuracy
        );
    }

    #[test]
    fn gat_learns_planted_partition() {
        let (ctx, x, labels) = labeled_setup();
        let mut model = Gat::new(8, 16, 3, 2, 17);
        let cfg = TrainConfig {
            epochs: 60,
            lr: 0.02,
            ..Default::default()
        };
        let r = train_model(&mut model, &ctx, &x, &labels, &cfg);
        assert!(
            r.test_accuracy > 0.6,
            "GAT test accuracy {} too low",
            r.test_accuracy
        );
    }

    #[test]
    fn traced_training_covers_kernels_dense_ops_and_epochs() {
        use gnnone_sim::{MetricsRegistry, TraceConfig, TraceSession};
        use std::sync::Arc;

        let (ctx, x, labels) = labeled_setup();
        let session = Arc::new(TraceSession::new(TraceConfig::on(), "test", 1.0));
        let registry = Arc::new(MetricsRegistry::new());
        assert!(ctx.attach_trace(Arc::clone(&session)));
        assert!(ctx.attach_metrics(Arc::clone(&registry)));

        let mut model = Gcn::new(8, 16, 3, 11);
        let cfg = TrainConfig {
            epochs: 3,
            ..Default::default()
        };
        train_model(&mut model, &ctx, &x, &labels, &cfg);

        let events = session.events();
        assert!(events.iter().any(|e| e.cat == "kernel"), "sparse kernels");
        assert!(events.iter().any(|e| e.cat == "host"), "dense ops");
        let markers: Vec<_> = events
            .iter()
            .filter(|e| e.cat == "marker")
            .map(|e| e.name.as_str())
            .collect();
        assert_eq!(markers, ["epoch 0", "epoch 1", "epoch 2"]);
        // Kernel rollups landed in the registry.
        assert!(registry.kernel_count() > 0);
        let snap = registry.snapshot();
        assert!(snap.kernels.iter().any(|k| k.launches > 1));
    }

    #[test]
    fn accuracy_parity_between_systems() {
        // Fig. 5's claim: GNNOne and DGL kernels compute the same math, so
        // training accuracy matches.
        let g = gen::planted_partition(100, 3, 8.0, 0.9, 8, 0.2, 19);
        let coo = Coo::from_edge_list(&g.edges.clone().symmetrize());
        let x = Tensor::from_vec(100, g.feature_dim, g.features.clone());
        let cfg = TrainConfig {
            epochs: 40,
            ..Default::default()
        };
        let mut accs = Vec::new();
        for system in [SystemKind::GnnOne, SystemKind::Dgl] {
            let ctx = Rc::new(GnnContext::new(system, coo.clone(), GpuSpec::a100_40gb()));
            let mut model = Gcn::new(8, 16, 3, 23);
            let r = train_model(&mut model, &ctx, &x, &g.labels, &cfg);
            accs.push(r.test_accuracy);
        }
        assert!(
            (accs[0] - accs[1]).abs() < 0.05,
            "accuracy diverged: {accs:?}"
        );
    }
}
