//! Autograd graph ops backed by the simulated sparse kernels.
//!
//! The paper's observation that SDDMM and SpMM are *the* basic building
//! blocks (§1, §2) is realized here literally:
//!
//! * `spmm` forward launches the system's SpMM kernel;
//! * its backward launches **SpMM over `Aᵀ`** (for `∂X`) and **SDDMM**
//!   (for `∂W` when edge weights are trainable, e.g. GAT's attention);
//! * `u_add_v` and `edge_softmax` are the edge-level SDDMM *variants*
//!   attention GNNs add (§4.3, *Format Selection*); they execute on the
//!   host with their device cost charged as edge-parallel passes (fused
//!   into the attention pipeline under dgNN).
//!
//! Every simulated launch adds its `KernelReport` cycles to the context's
//! [`crate::timing::SimClock`], which is what the Fig. 6/7 end-to-end
//! timings read out.

use std::rc::Rc;

use gnnone_sim::DeviceBuffer;
use gnnone_tensor::{BackwardOp, Tape, Tensor, VarId};

use crate::systems::GnnContext;

/// Launches the context's SpMM over `A`, charging the clock.
fn launch_spmm(ctx: &GnnContext, w: &Tensor, x: &Tensor, f: usize) -> Tensor {
    let dw = DeviceBuffer::from_slice(w.data());
    let dx = DeviceBuffer::from_slice(x.data());
    let dy = DeviceBuffer::<f32>::zeros(ctx.num_vertices() * f);
    let report = ctx
        .spmm
        .run(&ctx.gpu, &dw, &dx, f, &dy)
        .expect("SpMM launch failed");
    ctx.clock.borrow_mut().add_kernel(&report);
    Tensor::from_vec(ctx.num_vertices(), f, dy.to_vec())
}

/// Launches SpMM over `Aᵀ` with edge weights given in `A`'s order.
fn launch_spmm_t(ctx: &GnnContext, w_in_a_order: &Tensor, x: &Tensor, f: usize) -> Tensor {
    let perm = &ctx.t_perm;
    let wt: Vec<f32> = perm
        .iter()
        .map(|&i| w_in_a_order.data()[i as usize])
        .collect();
    let dw = DeviceBuffer::from_slice(&wt);
    let dx = DeviceBuffer::from_slice(x.data());
    let dy = DeviceBuffer::<f32>::zeros(ctx.num_vertices() * f);
    let report = ctx
        .spmm_t
        .run(&ctx.gpu, &dw, &dx, f, &dy)
        .expect("transposed SpMM launch failed");
    ctx.clock.borrow_mut().add_kernel(&report);
    Tensor::from_vec(ctx.num_vertices(), f, dy.to_vec())
}

/// Launches the context's SDDMM over `A`, charging the clock.
fn launch_sddmm(ctx: &GnnContext, x: &Tensor, y: &Tensor, f: usize) -> Tensor {
    let dx = DeviceBuffer::from_slice(x.data());
    let dy = DeviceBuffer::from_slice(y.data());
    let dw = DeviceBuffer::<f32>::zeros(ctx.nnz());
    let report = ctx
        .sddmm
        .run(&ctx.gpu, &dx, &dy, f, &dw)
        .expect("SDDMM launch failed");
    ctx.clock.borrow_mut().add_kernel(&report);
    Tensor::from_vec(ctx.nnz(), 1, dw.to_vec())
}

struct SpmmBackward {
    ctx: Rc<GnnContext>,
    f: usize,
    /// Whether parent 0 (edge weights) needs a gradient.
    weights_need_grad: bool,
}

impl BackwardOp for SpmmBackward {
    fn backward(&self, grad: &Tensor, inputs: &[Rc<Tensor>]) -> Vec<Option<Tensor>> {
        let w = &inputs[0];
        let x = &inputs[1];
        // ∂X = SpMM(Aᵀ, w, grad) — the backward SpMM of §1.
        let dx = launch_spmm_t(&self.ctx, w, grad, self.f);
        // ∂W = SDDMM(A, grad, X) — backward calls SDDMM, as the paper says.
        let dw = if self.weights_need_grad {
            Some(launch_sddmm(&self.ctx, grad, x, self.f))
        } else {
            None
        };
        vec![dw, Some(dx)]
    }

    fn name(&self) -> &'static str {
        "spmm"
    }
}

/// `y = A · x` with trainable edge weights `w` (a `|E| × 1` variable, e.g.
/// GAT attention coefficients).
pub fn spmm(ctx: &Rc<GnnContext>, tape: &mut Tape, w: VarId, x: VarId) -> VarId {
    let f = tape.value(x).cols();
    assert_eq!(
        tape.value(w).rows(),
        ctx.nnz(),
        "edge weights must be |E|×1"
    );
    let value = launch_spmm(ctx, tape.value(w), tape.value(x), f);
    tape.push_op(
        value,
        vec![w, x],
        Box::new(SpmmBackward {
            ctx: Rc::clone(ctx),
            f,
            weights_need_grad: true,
        }),
    )
}

/// `y = A · x` with constant edge weights (GCN's symmetric normalization,
/// GIN's all-ones adjacency). The weights are registered as a no-grad leaf.
pub fn spmm_const(ctx: &Rc<GnnContext>, tape: &mut Tape, w: &Tensor, x: VarId) -> VarId {
    let f = tape.value(x).cols();
    assert_eq!(w.rows(), ctx.nnz(), "edge weights must be |E|×1");
    let w_leaf = tape.leaf(w.clone(), false);
    let value = launch_spmm(ctx, w, tape.value(x), f);
    tape.push_op(
        value,
        vec![w_leaf, x],
        Box::new(SpmmBackward {
            ctx: Rc::clone(ctx),
            f,
            weights_need_grad: false,
        }),
    )
}

/// Charges one edge-parallel host-modelled pass (`u_add_v`, softmax steps).
fn charge_edge_pass(ctx: &GnnContext, passes: u64) {
    let bytes = (ctx.nnz() as u64) * 16 * passes;
    let flops = (ctx.nnz() as u64) * passes;
    let mut clock = ctx.clock.borrow_mut();
    if ctx.fused_edge_ops {
        clock.charge_fused(flops, bytes / 2);
    } else {
        clock.charge_dense(flops, bytes);
    }
}

/// Launches a simulated SpMV to reduce an edge tensor to vertex level:
/// `out[r] = Σ_{e ∈ row r} w[e]` over `graph` (pass `graph_t` + permuted
/// weights for the column-side reduction).
fn launch_edge_reduce(
    ctx: &GnnContext,
    graph: &std::sync::Arc<gnnone_kernels::graph::GraphData>,
    w: &[f32],
) -> Tensor {
    use gnnone_kernels::traits::SpmvKernel;
    let kernel = gnnone_kernels::gnnone::GnnOneSpmv::new(std::sync::Arc::clone(graph));
    let ones = DeviceBuffer::from_slice(&vec![1.0f32; graph.num_vertices()]);
    let dw = DeviceBuffer::from_slice(w);
    let dy = DeviceBuffer::<f32>::zeros(graph.num_vertices());
    let report = kernel
        .run(&ctx.gpu, &dw, &ones, &dy)
        .expect("edge-reduce SpMV launch failed");
    ctx.clock.borrow_mut().add_kernel(&report);
    Tensor::from_vec(graph.num_vertices(), 1, dy.to_vec())
}

struct UAddVBackward {
    ctx: Rc<GnnContext>,
}

impl BackwardOp for UAddVBackward {
    fn backward(&self, grad: &Tensor, _inputs: &[Rc<Tensor>]) -> Vec<Option<Tensor>> {
        // ∂el[r] = Σ_{row(e)=r} g[e] and ∂er[c] = Σ_{col(e)=c} g[e]: two
        // edge→vertex reductions = simulated SpMVs over A and Aᵀ with the
        // incoming gradient as edge values and x ≡ 1.
        let del = launch_edge_reduce(&self.ctx, &self.ctx.graph, grad.data());
        let gt: Vec<f32> = self
            .ctx
            .t_perm
            .iter()
            .map(|&i| grad.data()[i as usize])
            .collect();
        let der = launch_edge_reduce(&self.ctx, &self.ctx.graph_t, &gt);
        vec![Some(del), Some(der)]
    }

    fn name(&self) -> &'static str {
        "u_add_v"
    }
}

/// GAT attention logits: `e[(u,v)] = el[u] + er[v]` — the `u_add_v` SDDMM
/// variant (§4.3), executed by its own edge-parallel two-stage kernel.
/// `el`/`er` are `|V| × 1`.
pub fn u_add_v(ctx: &Rc<GnnContext>, tape: &mut Tape, el: VarId, er: VarId) -> VarId {
    let elv = tape.value(el);
    let erv = tape.value(er);
    assert_eq!(elv.rows(), ctx.num_vertices());
    assert_eq!(erv.rows(), ctx.num_vertices());
    let d_el = DeviceBuffer::from_slice(elv.data());
    let d_er = DeviceBuffer::from_slice(erv.data());
    let dw = DeviceBuffer::<f32>::zeros(ctx.nnz());
    let kernel = gnnone_kernels::gnnone::GnnOneUAddV::new(std::sync::Arc::clone(&ctx.graph));
    let report = kernel
        .run(&ctx.gpu, &d_el, &d_er, &dw)
        .expect("u_add_v launch failed");
    ctx.clock.borrow_mut().add_kernel(&report);
    tape.push_op(
        Tensor::from_vec(ctx.nnz(), 1, dw.to_vec()),
        vec![el, er],
        Box::new(UAddVBackward {
            ctx: Rc::clone(ctx),
        }),
    )
}

struct EdgeSoftmaxBackward {
    ctx: Rc<GnnContext>,
    alpha: Tensor,
}

impl BackwardOp for EdgeSoftmaxBackward {
    fn backward(&self, grad: &Tensor, _inputs: &[Rc<Tensor>]) -> Vec<Option<Tensor>> {
        let csr = &self.ctx.graph.csr;
        let mut out = Tensor::zeros(grad.rows(), 1);
        for r in 0..csr.num_rows() {
            let range = csr.row_range(r);
            let dot: f32 = range
                .clone()
                .map(|e| self.alpha.data()[e] * grad.data()[e])
                .sum();
            for e in range {
                out.data_mut()[e] = self.alpha.data()[e] * (grad.data()[e] - dot);
            }
        }
        charge_edge_pass(&self.ctx, 2);
        vec![Some(out)]
    }

    fn name(&self) -> &'static str {
        "edge_softmax"
    }
}

/// Row-wise softmax over each vertex's incident edges — GAT's attention
/// normalization. Input and output are `|E| × 1` in `A`'s NZE order.
pub fn edge_softmax(ctx: &Rc<GnnContext>, tape: &mut Tape, logits: VarId) -> VarId {
    let csr = &ctx.graph.csr;
    let lv = tape.value(logits);
    assert_eq!(lv.rows(), ctx.nnz());
    let mut alpha = Tensor::zeros(ctx.nnz(), 1);
    for r in 0..csr.num_rows() {
        let range = csr.row_range(r);
        if range.is_empty() {
            continue;
        }
        let max = range
            .clone()
            .map(|e| lv.data()[e])
            .fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0f32;
        for e in range.clone() {
            let v = (lv.data()[e] - max).exp();
            alpha.data_mut()[e] = v;
            sum += v;
        }
        for e in range {
            alpha.data_mut()[e] /= sum;
        }
    }
    charge_edge_pass(ctx, 3);
    let alpha_saved = alpha.clone();
    tape.push_op(
        alpha,
        vec![logits],
        Box::new(EdgeSoftmaxBackward {
            ctx: Rc::clone(ctx),
            alpha: alpha_saved,
        }),
    )
}

// ---------------------------------------------------------------- GAT

/// The full GAT attention step:
/// `y[r] = Σ_c softmax_r(LeakyReLU(el[r] + er[c])) · z[c]`.
///
/// Dispatches on the system: GNNOne/DGL compose the unfused pipeline
/// (`u_add_v` → LeakyReLU → `edge_softmax` → SpMM, each a launch); dgNN
/// runs the **fused attention kernel** — one launch, no edge tensors in
/// device memory — which is how the real dgNN earns its Fig. 6 standing.
pub fn gat_attention(
    ctx: &Rc<GnnContext>,
    tape: &mut Tape,
    el: VarId,
    er: VarId,
    z: VarId,
    slope: f32,
) -> VarId {
    if !ctx.fused_edge_ops {
        let raw = u_add_v(ctx, tape, el, er);
        let logits = gnnone_tensor::ops::leaky_relu(tape, raw, slope);
        let alpha = edge_softmax(ctx, tape, logits);
        return spmm(ctx, tape, alpha, z);
    }
    // Fused path: one simulated launch produces y and keeps α for backward.
    let f = tape.value(z).cols();
    let n = ctx.num_vertices();
    let dz = DeviceBuffer::from_slice(tape.value(z).data());
    let del = DeviceBuffer::from_slice(tape.value(el).data());
    let der = DeviceBuffer::from_slice(tape.value(er).data());
    let dy = DeviceBuffer::<f32>::zeros(n * f);
    let dalpha = DeviceBuffer::<f32>::zeros(ctx.nnz());
    let kernel =
        gnnone_kernels::gnnone::FusedGatAttention::new(std::sync::Arc::clone(&ctx.graph), slope);
    let report = kernel
        .run(&ctx.gpu, &dz, &del, &der, f, &dy, Some(&dalpha))
        .expect("fused GAT launch failed");
    ctx.clock.borrow_mut().add_kernel(&report);
    let alpha = Tensor::from_vec(ctx.nnz(), 1, dalpha.to_vec());
    let value = Tensor::from_vec(n, f, dy.to_vec());
    tape.push_op(
        value,
        vec![el, er, z],
        Box::new(FusedGatBackward {
            ctx: Rc::clone(ctx),
            alpha,
            slope,
            f,
        }),
    )
}

struct FusedGatBackward {
    ctx: Rc<GnnContext>,
    alpha: Tensor,
    slope: f32,
    f: usize,
}

impl BackwardOp for FusedGatBackward {
    fn backward(&self, grad: &Tensor, inputs: &[Rc<Tensor>]) -> Vec<Option<Tensor>> {
        let (el, er, z) = (&inputs[0], &inputs[1], &inputs[2]);
        let coo = &self.ctx.graph.coo;
        let csr = &self.ctx.graph.csr;
        // ∂z from the aggregation: SpMM(Aᵀ, α, grad) — a simulated launch
        // (dgNN's backward aggregation kernel).
        let dz = launch_spmm_t(&self.ctx, &self.alpha, grad, self.f);
        // ∂α = SDDMM(A, grad, z) — the other simulated launch.
        let dalpha = launch_sddmm(&self.ctx, grad, z, self.f);
        // Softmax + LeakyReLU backward, fused as edge passes.
        let mut dlogit = Tensor::zeros(coo.nnz(), 1);
        for r in 0..csr.num_rows() {
            let range = csr.row_range(r);
            let dot: f32 = range
                .clone()
                .map(|e| self.alpha.data()[e] * dalpha.data()[e])
                .sum();
            for e in range {
                dlogit.data_mut()[e] = self.alpha.data()[e] * (dalpha.data()[e] - dot);
            }
        }
        let n = self.ctx.num_vertices();
        let mut del = Tensor::zeros(n, 1);
        let mut der = Tensor::zeros(n, 1);
        for e in 0..coo.nnz() {
            let r = coo.rows()[e] as usize;
            let c = coo.cols()[e] as usize;
            let raw = el.data()[r] + er.data()[c];
            let g = dlogit.data()[e] * if raw > 0.0 { 1.0 } else { self.slope };
            del.data_mut()[r] += g;
            der.data_mut()[c] += g;
        }
        charge_edge_pass(&self.ctx, 3);
        vec![Some(del), Some(der), Some(dz)]
    }

    fn name(&self) -> &'static str {
        "fused_gat"
    }
}

/// GCN symmetric normalization weights `1/√(d_u · d_v)` per edge, with
/// degrees counted on `A + I` semantics (degree floored at 1).
pub fn gcn_norm_weights(ctx: &GnnContext) -> Tensor {
    let coo = &ctx.graph.coo;
    let deg = coo.degrees();
    let data: Vec<f32> = (0..coo.nnz())
        .map(|e| {
            let du = deg[coo.rows()[e] as usize].max(1) as f32;
            let dv = deg[coo.cols()[e] as usize].max(1) as f32;
            1.0 / (du * dv).sqrt()
        })
        .collect();
    Tensor::from_vec(coo.nnz(), 1, data)
}

/// All-ones edge weights (GIN's plain sum aggregation).
pub fn ones_weights(ctx: &GnnContext) -> Tensor {
    Tensor::from_vec(ctx.nnz(), 1, vec![1.0; ctx.nnz()])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::systems::SystemKind;
    use gnnone_sim::GpuSpec;
    use gnnone_sparse::formats::{Coo, EdgeList};
    use gnnone_sparse::gen;
    use gnnone_sparse::reference;
    use gnnone_tensor::ops;

    fn ctx(system: SystemKind) -> Rc<GnnContext> {
        let el = gen::rmat(6, 300, gen::GRAPH500_PROBS, 9).symmetrize();
        Rc::new(GnnContext::new(
            system,
            Coo::from_edge_list(&el),
            GpuSpec::a100_40gb(),
        ))
    }

    #[test]
    fn spmm_forward_matches_reference() {
        for system in [SystemKind::GnnOne, SystemKind::Dgl] {
            let c = ctx(system);
            let f = 8;
            let mut tape = Tape::new();
            let x0 = Tensor::from_vec(
                c.num_vertices(),
                f,
                (0..c.num_vertices() * f)
                    .map(|i| (i % 7) as f32 * 0.3)
                    .collect(),
            );
            let x = tape.leaf(x0.clone(), true);
            let w = gcn_norm_weights(&c);
            let y = spmm_const(&c, &mut tape, &w, x);
            let expected = reference::spmm_csr(&c.graph.csr, w.data(), x0.data(), f);
            reference::assert_close(tape.value(y).data(), &expected, 1e-4);
        }
    }

    #[test]
    fn spmm_backward_dx_matches_transpose_reference() {
        let c = ctx(SystemKind::GnnOne);
        let f = 4;
        let mut tape = Tape::new();
        let x0 = Tensor::from_vec(
            c.num_vertices(),
            f,
            (0..c.num_vertices() * f)
                .map(|i| ((i % 5) as f32 - 2.0) * 0.5)
                .collect(),
        );
        let x = tape.leaf(x0, true);
        let w = ones_weights(&c);
        let y = spmm_const(&c, &mut tape, &w, x);
        let s = ops::sum(&mut tape, y);
        let grads = tape.backward(s);
        // d(sum A·x)/dx = Aᵀ · 1.
        let ones = vec![1.0f32; c.num_vertices() * f];
        let wt: Vec<f32> = c.t_perm.iter().map(|&i| w.data()[i as usize]).collect();
        let expected = reference::spmm_csr(&c.graph_t.csr, &wt, &ones, f);
        reference::assert_close(grads[x].as_ref().unwrap().data(), &expected, 1e-4);
    }

    #[test]
    fn spmm_weight_gradient_is_sddmm() {
        let c = ctx(SystemKind::GnnOne);
        let f = 4;
        let mut tape = Tape::new();
        let x0 = Tensor::from_vec(
            c.num_vertices(),
            f,
            (0..c.num_vertices() * f)
                .map(|i| (i % 3) as f32 * 0.7)
                .collect(),
        );
        let x = tape.leaf(x0.clone(), false);
        let w = tape.leaf(ones_weights(&c), true);
        let y = spmm(&c, &mut tape, w, x);
        let s = ops::sum(&mut tape, y);
        let grads = tape.backward(s);
        // dW[e] = grad_y[row]·x[col] with grad_y = 1.
        let ones = vec![1.0f32; c.num_vertices() * f];
        let expected = reference::sddmm_coo(&c.graph.coo, &ones, x0.data(), f);
        reference::assert_close(grads[w].as_ref().unwrap().data(), &expected, 1e-4);
    }

    #[test]
    fn edge_softmax_rows_sum_to_one() {
        let c = ctx(SystemKind::GnnOne);
        let mut tape = Tape::new();
        let logits = tape.leaf(
            Tensor::from_vec(
                c.nnz(),
                1,
                (0..c.nnz()).map(|e| (e % 11) as f32 * 0.2).collect(),
            ),
            true,
        );
        let alpha = edge_softmax(&c, &mut tape, logits);
        let av = tape.value(alpha);
        for r in 0..c.graph.csr.num_rows() {
            let range = c.graph.csr.row_range(r);
            if range.is_empty() {
                continue;
            }
            let sum: f32 = range.map(|e| av.data()[e]).sum();
            assert!((sum - 1.0).abs() < 1e-4, "row {r} sums to {sum}");
        }
    }

    #[test]
    fn edge_softmax_gradient_finite_difference() {
        // Small deterministic graph for a tight FD check.
        let el = EdgeList::new(4, vec![(0, 1), (0, 2), (0, 3), (1, 2)]);
        let c = Rc::new(GnnContext::new(
            SystemKind::GnnOne,
            Coo::from_edge_list(&el),
            GpuSpec::a100_40gb(),
        ));
        let l0 = Tensor::from_vec(4, 1, vec![0.3, -0.5, 0.9, 0.1]);
        let f = |l: &Tensor| {
            let mut tape = Tape::new();
            let lid = tape.leaf(l.clone(), false);
            let a = edge_softmax(&c, &mut tape, lid);
            let sq = ops::mul(&mut tape, a, a);
            let s = ops::sum(&mut tape, sq);
            tape.value(s).item()
        };
        let mut tape = Tape::new();
        let lid = tape.leaf(l0.clone(), true);
        let a = edge_softmax(&c, &mut tape, lid);
        let sq = ops::mul(&mut tape, a, a);
        let s = ops::sum(&mut tape, sq);
        let grads = tape.backward(s);
        let ana = grads[lid].as_ref().unwrap();
        let eps = 1e-3;
        for i in 0..4 {
            let mut lp = l0.clone();
            lp.data_mut()[i] += eps;
            let num = (f(&lp) - f(&l0)) / eps;
            assert!(
                (num - ana.data()[i]).abs() < 1e-2,
                "dlogit[{i}]: {num} vs {}",
                ana.data()[i]
            );
        }
    }

    #[test]
    fn u_add_v_forward_and_backward() {
        let el = EdgeList::new(3, vec![(0, 1), (1, 2), (2, 0)]);
        let c = Rc::new(GnnContext::new(
            SystemKind::GnnOne,
            Coo::from_edge_list(&el),
            GpuSpec::a100_40gb(),
        ));
        let mut tape = Tape::new();
        let elv = tape.leaf(Tensor::from_vec(3, 1, vec![1.0, 2.0, 3.0]), true);
        let erv = tape.leaf(Tensor::from_vec(3, 1, vec![10.0, 20.0, 30.0]), true);
        let logits = u_add_v(&c, &mut tape, elv, erv);
        // Edges in CSR order: (0,1), (1,2), (2,0).
        assert_eq!(tape.value(logits).data(), &[21.0, 32.0, 13.0]);
        let s = ops::sum(&mut tape, logits);
        let grads = tape.backward(s);
        // Each vertex is source of exactly 1 edge and dest of exactly 1.
        assert_eq!(grads[elv].as_ref().unwrap().data(), &[1.0, 1.0, 1.0]);
        assert_eq!(grads[erv].as_ref().unwrap().data(), &[1.0, 1.0, 1.0]);
    }

    #[test]
    fn clock_accumulates_kernel_launches() {
        let c = ctx(SystemKind::GnnOne);
        let mut tape = Tape::new();
        let x = tape.leaf(Tensor::zeros(c.num_vertices(), 4), true);
        let w = ones_weights(&c);
        let y = spmm_const(&c, &mut tape, &w, x);
        let s = ops::sum(&mut tape, y);
        assert_eq!(c.clock.borrow().launches, 1); // forward SpMM
        let _ = tape.backward(s);
        // Backward added the transposed SpMM.
        assert!(c.clock.borrow().launches >= 2);
        assert!(c.clock.borrow().kernel_cycles > 0);
        let _ = s;
    }

    #[test]
    fn gcn_norm_weights_are_symmetric_normalized() {
        let c = ctx(SystemKind::GnnOne);
        let w = gcn_norm_weights(&c);
        assert_eq!(w.rows(), c.nnz());
        assert!(w.data().iter().all(|&v| v > 0.0 && v <= 1.0));
    }
}

#[cfg(test)]
mod fused_tests {
    use super::*;
    use crate::systems::SystemKind;
    use gnnone_sim::GpuSpec;
    use gnnone_sparse::formats::Coo;
    use gnnone_sparse::gen;
    use gnnone_sparse::reference;
    use gnnone_tensor::ops;

    fn setup(system: SystemKind) -> Rc<GnnContext> {
        let el = gen::rmat(6, 300, gen::GRAPH500_PROBS, 77).symmetrize();
        Rc::new(GnnContext::new(
            system,
            Coo::from_edge_list(&el),
            GpuSpec::a100_40gb(),
        ))
    }

    fn run_attention(system: SystemKind) -> (Vec<f32>, Vec<f32>, Vec<f32>, Vec<f32>) {
        let c = setup(system);
        let n = c.num_vertices();
        let f = 8;
        let mut tape = Tape::new();
        let z = tape.leaf(
            Tensor::from_vec(
                n,
                f,
                (0..n * f).map(|i| ((i % 11) as f32 - 5.0) * 0.1).collect(),
            ),
            true,
        );
        let el = tape.leaf(
            Tensor::from_vec(n, 1, (0..n).map(|i| ((i % 7) as f32 - 3.0) * 0.2).collect()),
            true,
        );
        let er = tape.leaf(
            Tensor::from_vec(n, 1, (0..n).map(|i| ((i % 5) as f32 - 2.0) * 0.3).collect()),
            true,
        );
        let y = gat_attention(&c, &mut tape, el, er, z, 0.2);
        let out = tape.value(y).data().to_vec();
        let s = ops::sum(&mut tape, y);
        let grads = tape.backward(s);
        (
            out,
            grads[z].as_ref().unwrap().data().to_vec(),
            grads[el].as_ref().unwrap().data().to_vec(),
            grads[er].as_ref().unwrap().data().to_vec(),
        )
    }

    #[test]
    fn fused_and_unfused_attention_agree_forward_and_backward() {
        // dgNN's fused kernel must compute the same function — and the
        // same gradients — as the unfused GNNOne pipeline.
        let (y_u, dz_u, del_u, der_u) = run_attention(SystemKind::GnnOne);
        let (y_f, dz_f, del_f, der_f) = run_attention(SystemKind::DgNn);
        reference::assert_close(&y_f, &y_u, 1e-3);
        reference::assert_close(&dz_f, &dz_u, 1e-3);
        reference::assert_close(&del_f, &del_u, 1e-3);
        reference::assert_close(&der_f, &der_u, 1e-3);
    }

    #[test]
    fn fused_path_uses_fewer_launches() {
        let count_launches = |system: SystemKind| {
            let c = setup(system);
            let n = c.num_vertices();
            let f = 8;
            let mut tape = Tape::new();
            let z = tape.leaf(Tensor::zeros(n, f), true);
            let el = tape.leaf(Tensor::zeros(n, 1), true);
            let er = tape.leaf(Tensor::zeros(n, 1), true);
            let _ = gat_attention(&c, &mut tape, el, er, z, 0.2);
            let launches = c.clock.borrow().launches;
            launches
        };
        assert!(count_launches(SystemKind::DgNn) < count_launches(SystemKind::GnnOne));
    }
}
