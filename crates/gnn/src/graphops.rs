//! Autograd graph ops backed by the simulated sparse kernels, routed
//! through the fusion IR.
//!
//! The paper's observation that SDDMM and SpMM are *the* basic building
//! blocks (§1, §2) is realized here literally:
//!
//! * `spmm` forward launches the system's SpMM kernel;
//! * its backward launches **SpMM over `Aᵀ`** (for `∂X`) and **SDDMM**
//!   (for `∂W` when edge weights are trainable, e.g. GAT's attention);
//! * `u_add_v`, `u_dot_v` and `edge_softmax` are the edge-level SDDMM
//!   *variants* attention GNNs add (§4.3, *Format Selection*).
//!
//! Since the fusion-IR refactor, the multi-op entry points do not pick
//! kernels by hand: [`gat_attention`], [`dot_attention`],
//! [`sage_aggregate`], [`spmm`] and [`u_dot_v`] build
//! [`gnnone_kernels::ir`] dataflow graphs, run the pattern-matching
//! lowering pass, and replay the lowered [`Step`]s onto the autograd
//! tape (the private `run_plan`) — the GAT chain executes as the single IR-lowered
//! fused launch under dgNN and as the lowered unfused launches under
//! GNNOne/DGL, and new model variants (GraphSAGE mean aggregation,
//! dot-product attention) ship as IR graphs with zero new kernels.
//!
//! Every simulated launch adds its `KernelReport` cycles to the context's
//! [`crate::timing::SimClock`], which is what the Fig. 6/7 end-to-end
//! timings read out.

use std::collections::HashMap;
use std::rc::Rc;

use gnnone_kernels::ir::lower::{lower, LowerOptions, Plan, Step};
use gnnone_kernels::ir::{self, ValueId};
use gnnone_sim::DeviceBuffer;
use gnnone_tensor::{BackwardOp, Tape, Tensor, VarId};

use crate::systems::GnnContext;

/// Launches the context's SpMM over `A`, charging the clock.
fn launch_spmm(ctx: &GnnContext, w: &Tensor, x: &Tensor, f: usize) -> Tensor {
    let dw = DeviceBuffer::from_slice(w.data());
    let dx = DeviceBuffer::from_slice(x.data());
    let dy = DeviceBuffer::<f32>::zeros(ctx.num_vertices() * f);
    let report = ctx
        .spmm
        .run(&ctx.gpu, &dw, &dx, f, &dy)
        .expect("SpMM launch failed");
    ctx.clock.borrow_mut().add_kernel(&report);
    Tensor::from_vec(ctx.num_vertices(), f, dy.to_vec())
}

/// Launches SpMM over `Aᵀ` with edge weights given in `A`'s order.
fn launch_spmm_t(ctx: &GnnContext, w_in_a_order: &Tensor, x: &Tensor, f: usize) -> Tensor {
    let perm = &ctx.t_perm;
    let wt: Vec<f32> = perm
        .iter()
        .map(|&i| w_in_a_order.data()[i as usize])
        .collect();
    let dw = DeviceBuffer::from_slice(&wt);
    let dx = DeviceBuffer::from_slice(x.data());
    let dy = DeviceBuffer::<f32>::zeros(ctx.num_vertices() * f);
    let report = ctx
        .spmm_t
        .run(&ctx.gpu, &dw, &dx, f, &dy)
        .expect("transposed SpMM launch failed");
    ctx.clock.borrow_mut().add_kernel(&report);
    Tensor::from_vec(ctx.num_vertices(), f, dy.to_vec())
}

/// Launches the context's SDDMM over `A`, charging the clock.
fn launch_sddmm(ctx: &GnnContext, x: &Tensor, y: &Tensor, f: usize) -> Tensor {
    let dx = DeviceBuffer::from_slice(x.data());
    let dy = DeviceBuffer::from_slice(y.data());
    let dw = DeviceBuffer::<f32>::zeros(ctx.nnz());
    let report = ctx
        .sddmm
        .run(&ctx.gpu, &dx, &dy, f, &dw)
        .expect("SDDMM launch failed");
    ctx.clock.borrow_mut().add_kernel(&report);
    Tensor::from_vec(ctx.nnz(), 1, dw.to_vec())
}

struct SpmmBackward {
    ctx: Rc<GnnContext>,
    f: usize,
    /// Whether parent 0 (edge weights) needs a gradient.
    weights_need_grad: bool,
}

impl BackwardOp for SpmmBackward {
    fn backward(&self, grad: &Tensor, inputs: &[Rc<Tensor>]) -> Vec<Option<Tensor>> {
        let w = &inputs[0];
        let x = &inputs[1];
        // ∂X = SpMM(Aᵀ, w, grad) — the backward SpMM of §1.
        let dx = launch_spmm_t(&self.ctx, w, grad, self.f);
        // ∂W = SDDMM(A, grad, X) — backward calls SDDMM, as the paper says.
        let dw = if self.weights_need_grad {
            Some(launch_sddmm(&self.ctx, grad, x, self.f))
        } else {
            None
        };
        vec![dw, Some(dx)]
    }

    fn name(&self) -> &'static str {
        "spmm"
    }
}

/// SpMM tape op: forward launch plus the SDDMM/SpMM(Aᵀ) backward
/// pairing. The backward SDDMM is launched only when the weights
/// variable requires a gradient (read off the tape).
fn spmm_step(ctx: &Rc<GnnContext>, tape: &mut Tape, w: VarId, x: VarId) -> VarId {
    let f = tape.value(x).cols();
    let value = launch_spmm(ctx, tape.value(w), tape.value(x), f);
    let weights_need_grad = tape.requires_grad(w);
    tape.push_op(
        value,
        vec![w, x],
        Box::new(SpmmBackward {
            ctx: Rc::clone(ctx),
            f,
            weights_need_grad,
        }),
    )
}

/// `y = A · x` with trainable edge weights `w` (a `|E| × 1` variable, e.g.
/// GAT attention coefficients). Lowered from [`ir::spmm_graph`] — the
/// `u_mul_e → aggregate_sum` fold — to a single `RowAccum` launch.
pub fn spmm(ctx: &Rc<GnnContext>, tape: &mut Tape, w: VarId, x: VarId) -> VarId {
    assert_eq!(
        tape.value(w).rows(),
        ctx.nnz(),
        "edge weights must be |E|×1"
    );
    let g = ir::spmm_graph();
    let plan = lower(&g, LowerOptions::default()).expect("spmm graph must lower");
    let binds = [
        (g.find_input("w").unwrap(), w),
        (g.find_input("x").unwrap(), x),
    ];
    let vars = run_plan(ctx, tape, &plan, &binds);
    vars[&g.outputs()[0].0]
}

/// `y = A · x` with constant edge weights (GCN's symmetric normalization,
/// GIN's all-ones adjacency). The weights are registered as a no-grad
/// leaf, so the IR-lowered backward skips the ∂W SDDMM.
pub fn spmm_const(ctx: &Rc<GnnContext>, tape: &mut Tape, w: &Tensor, x: VarId) -> VarId {
    let w_leaf = tape.leaf(w.clone(), false);
    spmm(ctx, tape, w_leaf, x)
}

/// Charges one edge-parallel host-modelled pass (`u_add_v`, softmax steps).
fn charge_edge_pass(ctx: &GnnContext, passes: u64) {
    let bytes = (ctx.nnz() as u64) * 16 * passes;
    let flops = (ctx.nnz() as u64) * passes;
    let mut clock = ctx.clock.borrow_mut();
    if ctx.fused_edge_ops {
        clock.charge_fused(flops, bytes / 2);
    } else {
        clock.charge_dense(flops, bytes);
    }
}

/// Launches a simulated SpMV to reduce an edge tensor to vertex level:
/// `out[r] = Σ_{e ∈ row r} w[e]` over `graph` (pass `graph_t` + permuted
/// weights for the column-side reduction).
fn launch_edge_reduce(
    ctx: &GnnContext,
    graph: &std::sync::Arc<gnnone_kernels::graph::GraphData>,
    w: &[f32],
) -> Tensor {
    use gnnone_kernels::traits::SpmvKernel;
    let kernel = gnnone_kernels::gnnone::GnnOneSpmv::new(std::sync::Arc::clone(graph));
    let ones = DeviceBuffer::from_slice(&vec![1.0f32; graph.num_vertices()]);
    let dw = DeviceBuffer::from_slice(w);
    let dy = DeviceBuffer::<f32>::zeros(graph.num_vertices());
    let report = kernel
        .run(&ctx.gpu, &dw, &ones, &dy)
        .expect("edge-reduce SpMV launch failed");
    ctx.clock.borrow_mut().add_kernel(&report);
    Tensor::from_vec(graph.num_vertices(), 1, dy.to_vec())
}

/// Reduces an edge gradient to both vertex sides: `∂el[r] = Σ_{row(e)=r}
/// g[e]` and `∂er[c] = Σ_{col(e)=c} g[e]` — two edge→vertex reductions =
/// simulated SpMVs over `A` and `Aᵀ` with the gradient as edge values and
/// `x ≡ 1`. Shared by the unfused `u_add_v` backward and the fused GAT
/// backward so the two tapes stay bitwise identical.
fn edge_grad_to_vertices(ctx: &GnnContext, grad: &[f32]) -> (Tensor, Tensor) {
    let del = launch_edge_reduce(ctx, &ctx.graph, grad);
    let gt: Vec<f32> = ctx.t_perm.iter().map(|&i| grad[i as usize]).collect();
    let der = launch_edge_reduce(ctx, &ctx.graph_t, &gt);
    (del, der)
}

struct UAddVBackward {
    ctx: Rc<GnnContext>,
}

impl BackwardOp for UAddVBackward {
    fn backward(&self, grad: &Tensor, _inputs: &[Rc<Tensor>]) -> Vec<Option<Tensor>> {
        let (del, der) = edge_grad_to_vertices(&self.ctx, grad.data());
        vec![Some(del), Some(der)]
    }

    fn name(&self) -> &'static str {
        "u_add_v"
    }
}

/// GAT attention logits: `e[(u,v)] = el[u] + er[v]` — the `u_add_v` SDDMM
/// variant (§4.3), executed by its own edge-parallel two-stage kernel.
/// `el`/`er` are `|V| × 1`.
pub fn u_add_v(ctx: &Rc<GnnContext>, tape: &mut Tape, el: VarId, er: VarId) -> VarId {
    let elv = tape.value(el);
    let erv = tape.value(er);
    assert_eq!(elv.rows(), ctx.num_vertices());
    assert_eq!(erv.rows(), ctx.num_vertices());
    let d_el = DeviceBuffer::from_slice(elv.data());
    let d_er = DeviceBuffer::from_slice(erv.data());
    let dw = DeviceBuffer::<f32>::zeros(ctx.nnz());
    // The IR-lowered launch (identical pipeline to the hand-built kernel).
    let kernel = ir::IrUAddV::new(std::sync::Arc::clone(&ctx.graph));
    let report = kernel
        .run(&ctx.gpu, &d_el, &d_er, &dw)
        .expect("u_add_v launch failed");
    ctx.clock.borrow_mut().add_kernel(&report);
    tape.push_op(
        Tensor::from_vec(ctx.nnz(), 1, dw.to_vec()),
        vec![el, er],
        Box::new(UAddVBackward {
            ctx: Rc::clone(ctx),
        }),
    )
}

/// Softmax backward over CSR rows: `out[e] = α[e]·(g[e] − Σ_row α·g)`.
/// Shared by the unfused tape op and the fused GAT backward so both
/// paths run the exact same float sequence.
fn edge_softmax_backward_host(ctx: &GnnContext, alpha: &[f32], grad: &[f32]) -> Tensor {
    let csr = &ctx.graph.csr;
    let mut out = Tensor::zeros(grad.len(), 1);
    for r in 0..csr.num_rows() {
        let range = csr.row_range(r);
        let dot: f32 = range.clone().map(|e| alpha[e] * grad[e]).sum();
        for e in range {
            out.data_mut()[e] = alpha[e] * (grad[e] - dot);
        }
    }
    out
}

struct EdgeSoftmaxBackward {
    ctx: Rc<GnnContext>,
    alpha: Tensor,
}

impl BackwardOp for EdgeSoftmaxBackward {
    fn backward(&self, grad: &Tensor, _inputs: &[Rc<Tensor>]) -> Vec<Option<Tensor>> {
        let out = edge_softmax_backward_host(&self.ctx, self.alpha.data(), grad.data());
        charge_edge_pass(&self.ctx, 2);
        vec![Some(out)]
    }

    fn name(&self) -> &'static str {
        "edge_softmax"
    }
}

/// Row-wise softmax over each vertex's incident edges — GAT's attention
/// normalization. Input and output are `|E| × 1` in `A`'s NZE order.
/// Runs the same host routine the IR executor uses for
/// `HostEdgeSoftmax` steps, so the tape and the executor agree bit for
/// bit.
pub fn edge_softmax(ctx: &Rc<GnnContext>, tape: &mut Tape, logits: VarId) -> VarId {
    let lv = tape.value(logits);
    assert_eq!(lv.rows(), ctx.nnz());
    let mut alpha = Tensor::zeros(ctx.nnz(), 1);
    ir::exec::host_edge_softmax(&ctx.graph, lv.data(), alpha.data_mut());
    charge_edge_pass(ctx, 3);
    let alpha_saved = alpha.clone();
    tape.push_op(
        alpha,
        vec![logits],
        Box::new(EdgeSoftmaxBackward {
            ctx: Rc::clone(ctx),
            alpha: alpha_saved,
        }),
    )
}

// ------------------------------------------------- SDDMM (`u_dot_v`)

struct UDotVBackward {
    ctx: Rc<GnnContext>,
    f: usize,
}

impl BackwardOp for UDotVBackward {
    fn backward(&self, grad: &Tensor, inputs: &[Rc<Tensor>]) -> Vec<Option<Tensor>> {
        // w[e] = Σ_k x[row(e),k]·y[col(e),k], so
        // ∂x[r,k] += g[e]·y[c,k] and ∂y[c,k] += g[e]·x[r,k].
        let (x, y) = (&inputs[0], &inputs[1]);
        let coo = &self.ctx.graph.coo;
        let f = self.f;
        let n = self.ctx.num_vertices();
        let mut dx = Tensor::zeros(n, f);
        let mut dy = Tensor::zeros(n, f);
        for e in 0..coo.nnz() {
            let r = coo.rows()[e] as usize;
            let c = coo.cols()[e] as usize;
            let g = grad.data()[e];
            for k in 0..f {
                dx.data_mut()[r * f + k] += g * y.data()[c * f + k];
                dy.data_mut()[c * f + k] += g * x.data()[r * f + k];
            }
        }
        charge_edge_pass(&self.ctx, 2);
        vec![Some(dx), Some(dy)]
    }

    fn name(&self) -> &'static str {
        "u_dot_v"
    }
}

/// SDDMM tape op in the `Step::Sddmm` orientation: `x` is the
/// destination-side operand (indexed by COO rows), `y` the source side.
fn sddmm_step(ctx: &Rc<GnnContext>, tape: &mut Tape, x: VarId, y: VarId) -> VarId {
    let f = tape.value(x).cols();
    let value = launch_sddmm(ctx, tape.value(x), tape.value(y), f);
    tape.push_op(
        value,
        vec![x, y],
        Box::new(UDotVBackward {
            ctx: Rc::clone(ctx),
            f,
        }),
    )
}

// ---------------------------------------------------------------- GAT

struct FusedGatBackward {
    ctx: Rc<GnnContext>,
    slope: f32,
    f: usize,
}

impl BackwardOp for FusedGatBackward {
    fn backward(&self, grad: &Tensor, inputs: &[Rc<Tensor>]) -> Vec<Option<Tensor>> {
        let (el, er, z) = (&inputs[0], &inputs[1], &inputs[2]);
        let coo = &self.ctx.graph.coo;
        let nnz = coo.nnz();
        // Rematerialize the unfused intermediates on the host, bit for
        // bit: the raw logit is one f32 add (exactly what the `u_add_v`
        // kernel computes per edge), LeakyReLU takes the same `> 0.0`
        // branch as `ops::leaky_relu`, and the softmax is the shared
        // [`ir::exec::host_edge_softmax`] routine the unfused tape runs.
        // The kernel's α output is *not* reusable here: its shuffle-tree
        // reduction order differs from the host softmax, which would
        // break fused-vs-unfused gradient equality.
        let mut raw = vec![0.0f32; nnz];
        let mut logits = vec![0.0f32; nnz];
        for e in 0..nnz {
            let r = coo.rows()[e] as usize;
            let c = coo.cols()[e] as usize;
            let v = el.data()[r] + er.data()[c];
            raw[e] = v;
            logits[e] = if v > 0.0 { v } else { v * self.slope };
        }
        let mut alpha = vec![0.0f32; nnz];
        ir::exec::host_edge_softmax(&self.ctx.graph, &logits, &mut alpha);
        let alpha_t = Tensor::from_vec(nnz, 1, alpha);
        // ∂z from the aggregation: SpMM(Aᵀ, α, grad) — a simulated launch
        // (dgNN's backward aggregation kernel).
        let dz = launch_spmm_t(&self.ctx, &alpha_t, grad, self.f);
        // ∂α = SDDMM(A, grad, z) — the other simulated launch.
        let dalpha = launch_sddmm(&self.ctx, grad, z, self.f);
        // Softmax and LeakyReLU backward via the same helpers the
        // unfused tape ops call.
        let dlogit = edge_softmax_backward_host(&self.ctx, alpha_t.data(), dalpha.data());
        let mut draw = vec![0.0f32; nnz];
        for e in 0..nnz {
            let g = dlogit.data()[e];
            draw[e] = if raw[e] > 0.0 { g } else { g * self.slope };
        }
        let (del, der) = edge_grad_to_vertices(&self.ctx, &draw);
        charge_edge_pass(&self.ctx, 3);
        vec![Some(del), Some(der), Some(dz)]
    }

    fn name(&self) -> &'static str {
        "fused_gat"
    }
}

/// Launches the IR-lowered fused GAT kernel and registers its backward.
fn fused_gat_step(
    ctx: &Rc<GnnContext>,
    tape: &mut Tape,
    el: VarId,
    er: VarId,
    z: VarId,
    slope: f32,
) -> VarId {
    let f = tape.value(z).cols();
    let n = ctx.num_vertices();
    let dz = DeviceBuffer::from_slice(tape.value(z).data());
    let del = DeviceBuffer::from_slice(tape.value(el).data());
    let der = DeviceBuffer::from_slice(tape.value(er).data());
    let dy = DeviceBuffer::<f32>::zeros(n * f);
    let kernel = ir::IrFusedGat::new(std::sync::Arc::clone(&ctx.graph), slope);
    // α is rematerialized on the host in backward (see FusedGatBackward),
    // so the launch skips the α write-back entirely.
    let report = kernel
        .run(&ctx.gpu, &dz, &del, &der, f, &dy, None)
        .expect("fused GAT launch failed");
    ctx.clock.borrow_mut().add_kernel(&report);
    tape.push_op(
        Tensor::from_vec(n, f, dy.to_vec()),
        vec![el, er, z],
        Box::new(FusedGatBackward {
            ctx: Rc::clone(ctx),
            slope,
            f,
        }),
    )
}

// ------------------------------------------------------- plan replay

/// Replays a lowered [`Plan`] onto the autograd tape: every launch step
/// becomes the corresponding tape op with its backward rule, and host
/// fallback steps become the matching host tape ops. `inputs` binds IR
/// input values to tape variables. Returns the tape variable of every
/// value the plan materializes, keyed by `ValueId` index.
fn run_plan(
    ctx: &Rc<GnnContext>,
    tape: &mut Tape,
    plan: &Plan,
    inputs: &[(ValueId, VarId)],
) -> HashMap<usize, VarId> {
    let mut vars: HashMap<usize, VarId> = inputs.iter().map(|&(v, id)| (v.0, id)).collect();
    for step in &plan.steps {
        match *step {
            Step::FusedGat {
                slope,
                z,
                el,
                er,
                y,
                alpha: _,
            } => {
                let var = fused_gat_step(ctx, tape, vars[&el.0], vars[&er.0], vars[&z.0], slope);
                vars.insert(y.0, var);
            }
            Step::UAddV { el, er, out } => {
                let var = u_add_v(ctx, tape, vars[&el.0], vars[&er.0]);
                vars.insert(out.0, var);
            }
            Step::HostLeakyRelu { slope, x, out } => {
                let var = gnnone_tensor::ops::leaky_relu(tape, vars[&x.0], slope);
                vars.insert(out.0, var);
            }
            Step::HostEdgeSoftmax { x, out } => {
                let var = edge_softmax(ctx, tape, vars[&x.0]);
                vars.insert(out.0, var);
            }
            Step::Spmm { w, x, out } => {
                let var = spmm_step(ctx, tape, vars[&w.0], vars[&x.0]);
                vars.insert(out.0, var);
            }
            Step::SpmmOnes { x, out } => {
                let ones = tape.leaf(ones_weights(ctx), false);
                let var = spmm_step(ctx, tape, ones, vars[&x.0]);
                vars.insert(out.0, var);
            }
            Step::Sddmm { x, y, out } => {
                let var = sddmm_step(ctx, tape, vars[&x.0], vars[&y.0]);
                vars.insert(out.0, var);
            }
            ref other => panic!(
                "no autograd rule for lowered step {other:?}; training graphs must \
                 lower to launches plus host LeakyReLU/softmax"
            ),
        }
    }
    vars
}

/// The full GAT attention step with an explicit fusion switch:
/// `y[r] = Σ_c softmax_r(LeakyReLU(el[r] + er[c])) · z[c]`.
///
/// Builds the [`ir::gat_attention_graph`] chain, lowers it with
/// `LowerOptions { fuse }`, and replays the plan on the tape. With
/// `fuse: true` the chain pattern-matches into the **single IR-lowered
/// fused launch**; with `fuse: false` it runs the unfused pipeline
/// (`u_add_v` launch → host LeakyReLU → host softmax → SpMM launch).
/// Both variants produce the same gradients bitwise (the fused backward
/// rematerializes the unfused intermediates with the shared host
/// helpers).
pub fn gat_attention_plan(
    ctx: &Rc<GnnContext>,
    tape: &mut Tape,
    el: VarId,
    er: VarId,
    z: VarId,
    slope: f32,
    fuse: bool,
) -> VarId {
    let g = ir::gat_attention_graph(slope);
    let plan = lower(&g, LowerOptions { fuse }).expect("GAT chain must lower");
    // graphops orientation: logits[e] = el[row(e)] + er[col(e)], so `el`
    // is the destination-side term (IR `att_dst`) and `er` the source
    // side (`att_src`).
    let binds = [
        (g.find_input("att_src").unwrap(), er),
        (g.find_input("att_dst").unwrap(), el),
        (g.find_input("z").unwrap(), z),
    ];
    let vars = run_plan(ctx, tape, &plan, &binds);
    vars[&g.outputs()[0].0]
}

/// The full GAT attention step, dispatching on the system: GNNOne/DGL
/// lower to the unfused pipeline (each op a launch or host pass); dgNN
/// lowers to the **fused attention kernel** — one launch, no edge
/// tensors in device memory — which is how the real dgNN earns its
/// Fig. 6 standing.
pub fn gat_attention(
    ctx: &Rc<GnnContext>,
    tape: &mut Tape,
    el: VarId,
    er: VarId,
    z: VarId,
    slope: f32,
) -> VarId {
    gat_attention_plan(ctx, tape, el, er, z, slope, ctx.fused_edge_ops)
}

// ------------------------------------------------- IR-only model ops

/// Dot-product edge scores `w[e] = Σ_k x[col(e),k]·y[row(e),k]` — the
/// `u_dot_v` SDDMM variant (§4.3), lowered from [`ir::sddmm_graph`] to
/// the `EdgeDot` launch. `x` is the source-side operand, `y` the
/// destination side.
pub fn u_dot_v(ctx: &Rc<GnnContext>, tape: &mut Tape, x: VarId, y: VarId) -> VarId {
    let g = ir::sddmm_graph();
    let plan = lower(&g, LowerOptions::default()).expect("u_dot_v graph must lower");
    let binds = [
        (g.find_input("x").unwrap(), x),
        (g.find_input("y").unwrap(), y),
    ];
    let vars = run_plan(ctx, tape, &plan, &binds);
    vars[&g.outputs()[0].0]
}

/// Transformer-style dot-product attention:
/// `y[r] = Σ_c softmax_r(k[c]·q[r]) · v[c]`.
///
/// Lowered from [`ir::dot_attention_graph`] — no fused pipeline matches
/// dot-product logits, so the plan is the unfused fallback (`EdgeDot`
/// launch → host softmax → `RowAccum` launch). A whole new attention
/// variant with zero new hand-written kernels.
pub fn dot_attention(ctx: &Rc<GnnContext>, tape: &mut Tape, q: VarId, k: VarId, v: VarId) -> VarId {
    let g = ir::dot_attention_graph();
    let plan = lower(&g, LowerOptions::default()).expect("dot_attention graph must lower");
    let binds = [
        (g.find_input("k").unwrap(), k),
        (g.find_input("q").unwrap(), q),
        (g.find_input("v").unwrap(), v),
    ];
    let vars = run_plan(ctx, tape, &plan, &binds);
    vars[&g.outputs()[0].0]
}

/// GraphSAGE's neighbour sum `y[r] = Σ_{c ∈ N(r)} x[c]` (divide by the
/// degree for the mean aggregator). Lowered from
/// [`ir::copy_u_sum_graph`] — the `copy_u → aggregate_sum` fold — to a
/// single `RowAccum` launch with unit edge values.
pub fn sage_aggregate(ctx: &Rc<GnnContext>, tape: &mut Tape, x: VarId) -> VarId {
    let g = ir::copy_u_sum_graph();
    let plan = lower(&g, LowerOptions::default()).expect("sage graph must lower");
    let binds = [(g.find_input("x").unwrap(), x)];
    let vars = run_plan(ctx, tape, &plan, &binds);
    vars[&g.outputs()[0].0]
}

/// GCN symmetric normalization weights `1/√(d_u · d_v)` per edge, with
/// degrees counted on `A + I` semantics (degree floored at 1).
pub fn gcn_norm_weights(ctx: &GnnContext) -> Tensor {
    let coo = &ctx.graph.coo;
    let deg = coo.degrees();
    let data: Vec<f32> = (0..coo.nnz())
        .map(|e| {
            let du = deg[coo.rows()[e] as usize].max(1) as f32;
            let dv = deg[coo.cols()[e] as usize].max(1) as f32;
            1.0 / (du * dv).sqrt()
        })
        .collect();
    Tensor::from_vec(coo.nnz(), 1, data)
}

/// All-ones edge weights (GIN's plain sum aggregation).
pub fn ones_weights(ctx: &GnnContext) -> Tensor {
    Tensor::from_vec(ctx.nnz(), 1, vec![1.0; ctx.nnz()])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::systems::SystemKind;
    use gnnone_sim::GpuSpec;
    use gnnone_sparse::formats::{Coo, EdgeList};
    use gnnone_sparse::gen;
    use gnnone_sparse::reference;
    use gnnone_tensor::ops;

    fn ctx(system: SystemKind) -> Rc<GnnContext> {
        let el = gen::rmat(6, 300, gen::GRAPH500_PROBS, 9).symmetrize();
        Rc::new(GnnContext::new(
            system,
            Coo::from_edge_list(&el),
            GpuSpec::a100_40gb(),
        ))
    }

    #[test]
    fn spmm_forward_matches_reference() {
        for system in [SystemKind::GnnOne, SystemKind::Dgl] {
            let c = ctx(system);
            let f = 8;
            let mut tape = Tape::new();
            let x0 = Tensor::from_vec(
                c.num_vertices(),
                f,
                (0..c.num_vertices() * f)
                    .map(|i| (i % 7) as f32 * 0.3)
                    .collect(),
            );
            let x = tape.leaf(x0.clone(), true);
            let w = gcn_norm_weights(&c);
            let y = spmm_const(&c, &mut tape, &w, x);
            let expected = reference::spmm_csr(&c.graph.csr, w.data(), x0.data(), f);
            reference::assert_close(tape.value(y).data(), &expected, 1e-4);
        }
    }

    #[test]
    fn spmm_backward_dx_matches_transpose_reference() {
        let c = ctx(SystemKind::GnnOne);
        let f = 4;
        let mut tape = Tape::new();
        let x0 = Tensor::from_vec(
            c.num_vertices(),
            f,
            (0..c.num_vertices() * f)
                .map(|i| ((i % 5) as f32 - 2.0) * 0.5)
                .collect(),
        );
        let x = tape.leaf(x0, true);
        let w = ones_weights(&c);
        let y = spmm_const(&c, &mut tape, &w, x);
        let s = ops::sum(&mut tape, y);
        let grads = tape.backward(s);
        // d(sum A·x)/dx = Aᵀ · 1.
        let ones = vec![1.0f32; c.num_vertices() * f];
        let wt: Vec<f32> = c.t_perm.iter().map(|&i| w.data()[i as usize]).collect();
        let expected = reference::spmm_csr(&c.graph_t.csr, &wt, &ones, f);
        reference::assert_close(grads[x].as_ref().unwrap().data(), &expected, 1e-4);
    }

    #[test]
    fn spmm_weight_gradient_is_sddmm() {
        let c = ctx(SystemKind::GnnOne);
        let f = 4;
        let mut tape = Tape::new();
        let x0 = Tensor::from_vec(
            c.num_vertices(),
            f,
            (0..c.num_vertices() * f)
                .map(|i| (i % 3) as f32 * 0.7)
                .collect(),
        );
        let x = tape.leaf(x0.clone(), false);
        let w = tape.leaf(ones_weights(&c), true);
        let y = spmm(&c, &mut tape, w, x);
        let s = ops::sum(&mut tape, y);
        let grads = tape.backward(s);
        // dW[e] = grad_y[row]·x[col] with grad_y = 1.
        let ones = vec![1.0f32; c.num_vertices() * f];
        let expected = reference::sddmm_coo(&c.graph.coo, &ones, x0.data(), f);
        reference::assert_close(grads[w].as_ref().unwrap().data(), &expected, 1e-4);
    }

    #[test]
    fn edge_softmax_rows_sum_to_one() {
        let c = ctx(SystemKind::GnnOne);
        let mut tape = Tape::new();
        let logits = tape.leaf(
            Tensor::from_vec(
                c.nnz(),
                1,
                (0..c.nnz()).map(|e| (e % 11) as f32 * 0.2).collect(),
            ),
            true,
        );
        let alpha = edge_softmax(&c, &mut tape, logits);
        let av = tape.value(alpha);
        for r in 0..c.graph.csr.num_rows() {
            let range = c.graph.csr.row_range(r);
            if range.is_empty() {
                continue;
            }
            let sum: f32 = range.map(|e| av.data()[e]).sum();
            assert!((sum - 1.0).abs() < 1e-4, "row {r} sums to {sum}");
        }
    }

    #[test]
    fn edge_softmax_gradient_finite_difference() {
        // Small deterministic graph for a tight FD check.
        let el = EdgeList::new(4, vec![(0, 1), (0, 2), (0, 3), (1, 2)]);
        let c = Rc::new(GnnContext::new(
            SystemKind::GnnOne,
            Coo::from_edge_list(&el),
            GpuSpec::a100_40gb(),
        ));
        let l0 = Tensor::from_vec(4, 1, vec![0.3, -0.5, 0.9, 0.1]);
        let f = |l: &Tensor| {
            let mut tape = Tape::new();
            let lid = tape.leaf(l.clone(), false);
            let a = edge_softmax(&c, &mut tape, lid);
            let sq = ops::mul(&mut tape, a, a);
            let s = ops::sum(&mut tape, sq);
            tape.value(s).item()
        };
        let mut tape = Tape::new();
        let lid = tape.leaf(l0.clone(), true);
        let a = edge_softmax(&c, &mut tape, lid);
        let sq = ops::mul(&mut tape, a, a);
        let s = ops::sum(&mut tape, sq);
        let grads = tape.backward(s);
        let ana = grads[lid].as_ref().unwrap();
        let eps = 1e-3;
        for i in 0..4 {
            let mut lp = l0.clone();
            lp.data_mut()[i] += eps;
            let num = (f(&lp) - f(&l0)) / eps;
            assert!(
                (num - ana.data()[i]).abs() < 1e-2,
                "dlogit[{i}]: {num} vs {}",
                ana.data()[i]
            );
        }
    }

    #[test]
    fn u_add_v_forward_and_backward() {
        let el = EdgeList::new(3, vec![(0, 1), (1, 2), (2, 0)]);
        let c = Rc::new(GnnContext::new(
            SystemKind::GnnOne,
            Coo::from_edge_list(&el),
            GpuSpec::a100_40gb(),
        ));
        let mut tape = Tape::new();
        let elv = tape.leaf(Tensor::from_vec(3, 1, vec![1.0, 2.0, 3.0]), true);
        let erv = tape.leaf(Tensor::from_vec(3, 1, vec![10.0, 20.0, 30.0]), true);
        let logits = u_add_v(&c, &mut tape, elv, erv);
        // Edges in CSR order: (0,1), (1,2), (2,0).
        assert_eq!(tape.value(logits).data(), &[21.0, 32.0, 13.0]);
        let s = ops::sum(&mut tape, logits);
        let grads = tape.backward(s);
        // Each vertex is source of exactly 1 edge and dest of exactly 1.
        assert_eq!(grads[elv].as_ref().unwrap().data(), &[1.0, 1.0, 1.0]);
        assert_eq!(grads[erv].as_ref().unwrap().data(), &[1.0, 1.0, 1.0]);
    }

    #[test]
    fn clock_accumulates_kernel_launches() {
        let c = ctx(SystemKind::GnnOne);
        let mut tape = Tape::new();
        let x = tape.leaf(Tensor::zeros(c.num_vertices(), 4), true);
        let w = ones_weights(&c);
        let y = spmm_const(&c, &mut tape, &w, x);
        let s = ops::sum(&mut tape, y);
        assert_eq!(c.clock.borrow().launches, 1); // forward SpMM
        let _ = tape.backward(s);
        // Backward added the transposed SpMM.
        assert!(c.clock.borrow().launches >= 2);
        assert!(c.clock.borrow().kernel_cycles > 0);
        let _ = s;
    }

    #[test]
    fn gcn_norm_weights_are_symmetric_normalized() {
        let c = ctx(SystemKind::GnnOne);
        let w = gcn_norm_weights(&c);
        assert_eq!(w.rows(), c.nnz());
        assert!(w.data().iter().all(|&v| v > 0.0 && v <= 1.0));
    }
}

#[cfg(test)]
mod fused_tests {
    use super::*;
    use crate::systems::SystemKind;
    use gnnone_sim::GpuSpec;
    use gnnone_sparse::formats::Coo;
    use gnnone_sparse::gen;
    use gnnone_sparse::reference;
    use gnnone_tensor::ops;

    fn setup(system: SystemKind) -> Rc<GnnContext> {
        let el = gen::rmat(6, 300, gen::GRAPH500_PROBS, 77).symmetrize();
        Rc::new(GnnContext::new(
            system,
            Coo::from_edge_list(&el),
            GpuSpec::a100_40gb(),
        ))
    }

    fn run_attention(system: SystemKind) -> (Vec<f32>, Vec<f32>, Vec<f32>, Vec<f32>) {
        let c = setup(system);
        let n = c.num_vertices();
        let f = 8;
        let mut tape = Tape::new();
        let z = tape.leaf(
            Tensor::from_vec(
                n,
                f,
                (0..n * f).map(|i| ((i % 11) as f32 - 5.0) * 0.1).collect(),
            ),
            true,
        );
        let el = tape.leaf(
            Tensor::from_vec(n, 1, (0..n).map(|i| ((i % 7) as f32 - 3.0) * 0.2).collect()),
            true,
        );
        let er = tape.leaf(
            Tensor::from_vec(n, 1, (0..n).map(|i| ((i % 5) as f32 - 2.0) * 0.3).collect()),
            true,
        );
        let y = gat_attention(&c, &mut tape, el, er, z, 0.2);
        let out = tape.value(y).data().to_vec();
        let s = ops::sum(&mut tape, y);
        let grads = tape.backward(s);
        (
            out,
            grads[z].as_ref().unwrap().data().to_vec(),
            grads[el].as_ref().unwrap().data().to_vec(),
            grads[er].as_ref().unwrap().data().to_vec(),
        )
    }

    #[test]
    fn fused_and_unfused_attention_agree_forward_and_backward() {
        // dgNN's fused kernel must compute the same function — and the
        // same gradients — as the unfused GNNOne pipeline.
        let (y_u, dz_u, del_u, der_u) = run_attention(SystemKind::GnnOne);
        let (y_f, dz_f, del_f, der_f) = run_attention(SystemKind::DgNn);
        reference::assert_close(&y_f, &y_u, 1e-3);
        reference::assert_close(&dz_f, &dz_u, 1e-3);
        reference::assert_close(&del_f, &del_u, 1e-3);
        reference::assert_close(&der_f, &der_u, 1e-3);
    }

    #[test]
    fn fused_path_uses_fewer_launches() {
        let count_launches = |system: SystemKind| {
            let c = setup(system);
            let n = c.num_vertices();
            let f = 8;
            let mut tape = Tape::new();
            let z = tape.leaf(Tensor::zeros(n, f), true);
            let el = tape.leaf(Tensor::zeros(n, 1), true);
            let er = tape.leaf(Tensor::zeros(n, 1), true);
            let _ = gat_attention(&c, &mut tape, el, er, z, 0.2);
            let launches = c.clock.borrow().launches;
            launches
        };
        assert!(count_launches(SystemKind::DgNn) < count_launches(SystemKind::GnnOne));
    }
}
