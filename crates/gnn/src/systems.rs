//! System configurations for end-to-end training (paper §5.3).
//!
//! Each system is a choice of sparse kernels, storage formats (which the
//! memory model charges), and whether edge-level attention ops are fused:
//!
//! * **GNNOne** — COO-only; the proposed SpMM/SDDMM; no fusion ("without
//!   any kernel fusion", §5.3.2).
//! * **DGL** — cuSPARSE CSR SpMM + DGL's own COO edge-parallel SDDMM;
//!   keeps COO *and* CSR (and CSC for backward) alive.
//! * **dgNN** — vertex-parallel dgSparse kernels on CSR with the attention
//!   pipeline fused (fewer launches, less intermediate traffic); only
//!   supports attention GNNs like GAT, as in the paper.

use std::cell::RefCell;
use std::rc::Rc;
use std::sync::Arc;

use gnnone_kernels::baselines::{CusparseSpmm, DgSparseSddmm, DglSddmm};
use gnnone_kernels::gnnone::{GnnOneConfig, GnnOneSddmm, GnnOneSpmm};
use gnnone_kernels::graph::GraphData;
use gnnone_kernels::traits::{SddmmKernel, SpmmKernel};
use gnnone_sim::{Gpu, GpuSpec, MetricsRegistry, Sanitizer, TraceSession};
use gnnone_sparse::formats::Coo;

use crate::timing::SimClock;

/// The three systems of Figs. 5–7.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SystemKind {
    /// The proposed system (COO, unified kernels).
    GnnOne,
    /// DGL (cuSPARSE SpMM, own SDDMM, multiple formats).
    Dgl,
    /// dgNN (fused vertex-parallel kernels; GAT only).
    DgNn,
}

impl SystemKind {
    /// Figure label.
    pub fn name(&self) -> &'static str {
        match self {
            SystemKind::GnnOne => "GnnOne",
            SystemKind::Dgl => "DGL",
            SystemKind::DgNn => "dgNN",
        }
    }

    /// Storage formats the system keeps resident (for the memory model).
    pub fn formats(&self) -> &'static [&'static str] {
        match self {
            SystemKind::GnnOne => &["COO"],
            // DGL: COO for SDDMM, CSR for SpMM, CSC for the transposed
            // backward SpMM.
            SystemKind::Dgl => &["COO", "CSR", "CSC"],
            SystemKind::DgNn => &["CSR", "CSC"],
        }
    }
}

/// Everything a model needs to run on a (graph, system, device) triple.
pub struct GnnContext {
    /// The simulated device.
    pub gpu: Rc<Gpu>,
    /// Forward graph `A`.
    pub graph: Arc<GraphData>,
    /// Transposed graph `Aᵀ` (backward data flow).
    pub graph_t: Arc<GraphData>,
    /// For NZE `i` of `Aᵀ`, the index of the same edge in `A`'s order.
    pub t_perm: Rc<Vec<u32>>,
    /// SpMM kernel over `A`.
    pub spmm: Rc<dyn SpmmKernel>,
    /// SpMM kernel over `Aᵀ`.
    pub spmm_t: Rc<dyn SpmmKernel>,
    /// SDDMM kernel over `A`.
    pub sddmm: Rc<dyn SddmmKernel>,
    /// Simulated training clock.
    pub clock: Rc<RefCell<SimClock>>,
    /// Whether edge-level attention ops are fused (dgNN).
    pub fused_edge_ops: bool,
    /// Which system this context realizes.
    pub system: SystemKind,
}

impl GnnContext {
    /// Builds a context for `system` over `coo` on a device `spec`.
    pub fn new(system: SystemKind, coo: Coo, spec: GpuSpec) -> Self {
        let coo_t = coo.transpose();
        let t_perm = transpose_permutation(&coo);
        let graph = Arc::new(GraphData::new(coo));
        let graph_t = Arc::new(GraphData::new(coo_t));
        let gpu = Rc::new(Gpu::new(spec.clone()));
        let clock = Rc::new(RefCell::new(SimClock::new(spec)));

        let (spmm, spmm_t, sddmm): (Rc<dyn SpmmKernel>, Rc<dyn SpmmKernel>, Rc<dyn SddmmKernel>) =
            match system {
                SystemKind::GnnOne => (
                    Rc::new(GnnOneSpmm::new(Arc::clone(&graph), GnnOneConfig::default())),
                    Rc::new(GnnOneSpmm::new(
                        Arc::clone(&graph_t),
                        GnnOneConfig::default(),
                    )),
                    Rc::new(GnnOneSddmm::new(
                        Arc::clone(&graph),
                        GnnOneConfig::default(),
                    )),
                ),
                SystemKind::Dgl => (
                    Rc::new(CusparseSpmm::new(Arc::clone(&graph))),
                    Rc::new(CusparseSpmm::new(Arc::clone(&graph_t))),
                    Rc::new(DglSddmm::new(Arc::clone(&graph))),
                ),
                SystemKind::DgNn => (
                    // dgNN's aggregation is a vertex-parallel CSR SpMM; reuse
                    // the cuSPARSE-class row-split kernel as its aggregation
                    // engine and dgSparse for SDDMM, per §5.3's description.
                    Rc::new(CusparseSpmm::new(Arc::clone(&graph))),
                    Rc::new(CusparseSpmm::new(Arc::clone(&graph_t))),
                    Rc::new(DgSparseSddmm::new(Arc::clone(&graph))),
                ),
            };

        Self {
            gpu,
            graph,
            graph_t,
            t_perm: Rc::new(t_perm),
            spmm,
            spmm_t,
            sddmm,
            clock,
            fused_edge_ops: system == SystemKind::DgNn,
            system,
        }
    }

    /// Attaches a trace session to both the device (sparse kernel spans)
    /// and the training clock (dense-op spans), so one timeline covers the
    /// whole epoch. Returns `false` if the device already had a different
    /// session attached.
    pub fn attach_trace(&self, session: Arc<TraceSession>) -> bool {
        let ok = self.gpu.attach_trace(Arc::clone(&session));
        self.clock.borrow_mut().set_trace(session);
        ok
    }

    /// Attaches a metrics registry to the device; every sparse-kernel
    /// launch of the training run rolls up into it. Returns `false` if the
    /// device already had a different registry attached.
    pub fn attach_metrics(&self, registry: Arc<MetricsRegistry>) -> bool {
        self.gpu.attach_metrics(registry)
    }

    /// Attaches a sanitizer to the device; every sparse-kernel launch of
    /// the training run is then shadow-checked. Returns `false` if the
    /// device already had a different sanitizer attached.
    pub fn attach_sanitizer(&self, sanitizer: Arc<Sanitizer>) -> bool {
        self.gpu.attach_sanitizer(sanitizer)
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.graph.num_vertices()
    }

    /// Number of NZEs.
    pub fn nnz(&self) -> usize {
        self.graph.nnz()
    }
}

/// Computes, for each NZE of `Aᵀ` (in CSR order), the index of the same
/// edge in `A`'s CSR order — used to permute edge tensors for backward.
pub fn transpose_permutation(coo: &Coo) -> Vec<u32> {
    // Edge (r, c) at index i in A appears as (c, r) in Aᵀ. Sort A's edges
    // by (c, r) to obtain Aᵀ's order.
    let mut idx: Vec<u32> = (0..coo.nnz() as u32).collect();
    let rows = coo.rows();
    let cols = coo.cols();
    idx.sort_unstable_by_key(|&i| (cols[i as usize], rows[i as usize]));
    idx
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnnone_sparse::formats::EdgeList;

    fn coo() -> Coo {
        Coo::from_edge_list(&EdgeList::new(3, vec![(0, 1), (0, 2), (1, 0), (2, 1)]))
    }

    #[test]
    fn transpose_permutation_maps_edges() {
        let a = coo();
        let at = a.transpose();
        let perm = transpose_permutation(&a);
        for i in 0..at.nnz() {
            let j = perm[i] as usize;
            assert_eq!(at.rows()[i], a.cols()[j]);
            assert_eq!(at.cols()[i], a.rows()[j]);
        }
    }

    #[test]
    fn contexts_pick_the_right_kernels() {
        let spec = GpuSpec::a100_40gb();
        let one = GnnContext::new(SystemKind::GnnOne, coo(), spec.clone());
        assert_eq!(one.spmm.name(), "GnnOne");
        assert_eq!(one.sddmm.name(), "GnnOne");
        assert!(!one.fused_edge_ops);

        let dgl = GnnContext::new(SystemKind::Dgl, coo(), spec.clone());
        assert_eq!(dgl.spmm.name(), "CuSparse");
        assert_eq!(dgl.sddmm.name(), "DGL");

        let dgnn = GnnContext::new(SystemKind::DgNn, coo(), spec);
        assert_eq!(dgnn.sddmm.name(), "dgSparse");
        assert!(dgnn.fused_edge_ops);
    }

    #[test]
    fn formats_per_system() {
        assert_eq!(SystemKind::GnnOne.formats(), &["COO"]);
        assert_eq!(SystemKind::Dgl.formats().len(), 3);
    }
}

#[cfg(test)]
mod memory_interplay_tests {
    use super::*;
    use gnnone_sparse::formats::EdgeList;

    #[test]
    fn transpose_permutation_is_a_permutation() {
        let coo = Coo::from_edge_list(&EdgeList::new(
            5,
            vec![(0, 1), (0, 4), (1, 2), (2, 0), (3, 1), (4, 3)],
        ));
        let perm = transpose_permutation(&coo);
        let mut sorted = perm.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..coo.nnz() as u32).collect::<Vec<_>>());
    }

    #[test]
    fn symmetric_graph_transpose_permutation_roundtrips_edge_values() {
        // On a symmetric graph, permuting twice with the transpose map of
        // A then of Aᵀ must restore the original edge order.
        let coo = Coo::from_edge_list(
            &EdgeList::new(6, vec![(0, 1), (2, 3), (4, 5), (1, 3)]).symmetrize(),
        );
        let perm_a = transpose_permutation(&coo);
        let coo_t = coo.transpose();
        let perm_t = transpose_permutation(&coo_t);
        let vals: Vec<f32> = (0..coo.nnz()).map(|e| e as f32).collect();
        let once: Vec<f32> = perm_a.iter().map(|&i| vals[i as usize]).collect();
        let twice: Vec<f32> = perm_t.iter().map(|&i| once[i as usize]).collect();
        assert_eq!(twice, vals);
    }
}
