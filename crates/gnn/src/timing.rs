//! The simulated training clock.
//!
//! Sparse kernels run through `gnnone-sim` and report exact modelled
//! cycles. Everything else a GNN epoch executes — linear layers, ReLU,
//! softmax, dropout, loss — runs on PyTorch in every system the paper
//! compares (§5.3.2: "GNN models also include many other kernels … for
//! which both rely on PyTorch"), so those are charged through a common
//! roofline model: `launch overhead + max(compute-bound, bandwidth-bound)`.
//! This is what dilutes 6× kernel speedups into the paper's 1.3–4×
//! end-to-end numbers.

use gnnone_sim::{GpuSpec, KernelReport};

/// Accumulates simulated time over a training run.
#[derive(Debug, Clone)]
pub struct SimClock {
    spec: GpuSpec,
    /// Cycles spent in sparse kernels.
    pub kernel_cycles: u64,
    /// Cycles spent in dense (PyTorch-side) ops.
    pub dense_cycles: u64,
    /// Kernel launches issued (sparse + dense).
    pub launches: u64,
}

impl SimClock {
    /// New clock for a device spec.
    pub fn new(spec: GpuSpec) -> Self {
        Self {
            spec,
            kernel_cycles: 0,
            dense_cycles: 0,
            launches: 0,
        }
    }

    /// The device spec the clock converts against.
    pub fn spec(&self) -> &GpuSpec {
        &self.spec
    }

    /// Records a simulated sparse-kernel launch.
    pub fn add_kernel(&mut self, report: &KernelReport) {
        self.kernel_cycles += report.cycles;
        self.launches += 1;
    }

    /// Charges a dense op through the roofline model.
    /// `flops` = multiply-add count, `bytes` = global traffic.
    pub fn charge_dense(&mut self, flops: u64, bytes: u64) {
        self.dense_cycles += self.dense_cost(flops, bytes);
        self.launches += 1;
    }

    /// Charges a *fused* dense op: no launch overhead and reduced traffic —
    /// how dgNN's fused attention pipeline is modelled (§5.3.2).
    pub fn charge_fused(&mut self, flops: u64, bytes: u64) {
        let t = self.spec.timing;
        let cost = self
            .dense_cost(flops, bytes)
            .saturating_sub(t.kernel_launch_overhead_cycles);
        self.dense_cycles += cost;
    }

    fn dense_cost(&self, flops: u64, bytes: u64) -> u64 {
        let t = self.spec.timing;
        // FP32 roofline: each SM retires ~128 FLOPs/cycle (64 FMA lanes).
        let flops_per_cycle = (self.spec.num_sms as u64) * 128;
        let bytes_per_cycle =
            self.spec.bytes_per_cycle_per_sm() * self.spec.num_sms as f64;
        let compute = flops / flops_per_cycle.max(1);
        let memory = (bytes as f64 / bytes_per_cycle) as u64;
        t.kernel_launch_overhead_cycles + compute.max(memory)
    }

    /// Total simulated cycles.
    pub fn total_cycles(&self) -> u64 {
        self.kernel_cycles + self.dense_cycles
    }

    /// Total simulated milliseconds.
    pub fn total_ms(&self) -> f64 {
        self.spec.cycles_to_ms(self.total_cycles())
    }

    /// Resets all counters (e.g. between warm-up and timed epochs).
    pub fn reset(&mut self) {
        self.kernel_cycles = 0;
        self.dense_cycles = 0;
        self.launches = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_charge_is_at_least_launch_overhead() {
        let mut c = SimClock::new(GpuSpec::a100_40gb());
        c.charge_dense(0, 0);
        assert_eq!(
            c.dense_cycles,
            GpuSpec::a100_40gb().timing.kernel_launch_overhead_cycles
        );
        assert_eq!(c.launches, 1);
    }

    #[test]
    fn memory_bound_op_scales_with_bytes() {
        let mut c = SimClock::new(GpuSpec::a100_40gb());
        c.charge_dense(0, 1_000_000_000);
        let one_gb = c.dense_cycles;
        c.reset();
        c.charge_dense(0, 2_000_000_000);
        assert!(c.dense_cycles > one_gb * 3 / 2);
    }

    #[test]
    fn fused_charge_is_cheaper() {
        let mut a = SimClock::new(GpuSpec::a100_40gb());
        let mut b = SimClock::new(GpuSpec::a100_40gb());
        a.charge_dense(1000, 1000);
        b.charge_fused(1000, 1000);
        assert!(b.dense_cycles < a.dense_cycles);
        assert_eq!(b.launches, 0);
    }

    #[test]
    fn totals_combine() {
        let mut c = SimClock::new(GpuSpec::a100_40gb());
        c.charge_dense(1, 1);
        c.kernel_cycles += 100;
        assert_eq!(c.total_cycles(), c.dense_cycles + 100);
        assert!(c.total_ms() > 0.0);
        c.reset();
        assert_eq!(c.total_cycles(), 0);
    }
}
