//! The simulated training clock.
//!
//! Sparse kernels run through `gnnone-sim` and report exact modelled
//! cycles. Everything else a GNN epoch executes — linear layers, ReLU,
//! softmax, dropout, loss — runs on PyTorch in every system the paper
//! compares (§5.3.2: "GNN models also include many other kernels … for
//! which both rely on PyTorch"), so those are charged through a common
//! roofline model: `launch overhead + max(compute-bound, bandwidth-bound)`.
//! This is what dilutes 6× kernel speedups into the paper's 1.3–4×
//! end-to-end numbers.

use std::sync::Arc;

use gnnone_sim::jsonio::Json;
use gnnone_sim::{GpuSpec, KernelReport, TraceSession};

/// Accumulates simulated time over a training run.
#[derive(Debug, Clone)]
pub struct SimClock {
    spec: GpuSpec,
    /// Cycles spent in sparse kernels.
    pub kernel_cycles: u64,
    /// Cycles spent in dense (PyTorch-side) ops.
    pub dense_cycles: u64,
    /// Kernel launches issued (sparse + dense).
    pub launches: u64,
    /// Optional trace session dense-op charges are recorded into (sparse
    /// kernels are recorded by the [`gnnone_sim::Gpu`] they run on).
    trace: Option<Arc<TraceSession>>,
}

impl SimClock {
    /// New clock for a device spec.
    pub fn new(spec: GpuSpec) -> Self {
        Self {
            spec,
            kernel_cycles: 0,
            dense_cycles: 0,
            launches: 0,
            trace: None,
        }
    }

    /// The device spec the clock converts against.
    pub fn spec(&self) -> &GpuSpec {
        &self.spec
    }

    /// Attaches a trace session; subsequent dense-op charges appear as
    /// `host` spans on the kernel track. Attach the *same* session to the
    /// [`gnnone_sim::Gpu`] so sparse and dense ops share one timeline.
    pub fn set_trace(&mut self, session: Arc<TraceSession>) {
        self.trace = Some(session);
    }

    /// The attached trace session, if any.
    pub fn trace(&self) -> Option<&Arc<TraceSession>> {
        self.trace.as_ref()
    }

    fn trace_dense(&self, name: &str, cycles: u64, flops: u64, bytes: u64) {
        if let Some(session) = self.trace.as_ref().filter(|s| s.is_enabled()) {
            session.record_host_span(
                name,
                cycles,
                vec![
                    ("flops".to_string(), Json::U64(flops)),
                    ("bytes".to_string(), Json::U64(bytes)),
                ],
            );
        }
    }

    /// Records a simulated sparse-kernel launch.
    pub fn add_kernel(&mut self, report: &KernelReport) {
        self.kernel_cycles += report.cycles;
        self.launches += 1;
    }

    /// Charges a dense op through the roofline model.
    /// `flops` = multiply-add count, `bytes` = global traffic.
    pub fn charge_dense(&mut self, flops: u64, bytes: u64) {
        let cost = self.dense_cost(flops, bytes);
        self.dense_cycles += cost;
        self.launches += 1;
        self.trace_dense("dense op", cost, flops, bytes);
    }

    /// Charges a *fused* dense op: no launch overhead and reduced traffic —
    /// how dgNN's fused attention pipeline is modelled (§5.3.2).
    pub fn charge_fused(&mut self, flops: u64, bytes: u64) {
        let t = self.spec.timing;
        let cost = self
            .dense_cost(flops, bytes)
            .saturating_sub(t.kernel_launch_overhead_cycles);
        self.dense_cycles += cost;
        self.trace_dense("fused dense op", cost, flops, bytes);
    }

    fn dense_cost(&self, flops: u64, bytes: u64) -> u64 {
        let t = self.spec.timing;
        // FP32 roofline: each SM retires ~128 FLOPs/cycle (64 FMA lanes).
        let flops_per_cycle = (self.spec.num_sms as u64) * 128;
        let bytes_per_cycle = self.spec.bytes_per_cycle_per_sm() * self.spec.num_sms as f64;
        let compute = flops / flops_per_cycle.max(1);
        let memory = (bytes as f64 / bytes_per_cycle) as u64;
        t.kernel_launch_overhead_cycles + compute.max(memory)
    }

    /// Total simulated cycles.
    pub fn total_cycles(&self) -> u64 {
        self.kernel_cycles + self.dense_cycles
    }

    /// Total simulated milliseconds.
    pub fn total_ms(&self) -> f64 {
        self.spec.cycles_to_ms(self.total_cycles())
    }

    /// Resets all counters (e.g. between warm-up and timed epochs).
    pub fn reset(&mut self) {
        self.kernel_cycles = 0;
        self.dense_cycles = 0;
        self.launches = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_charge_is_at_least_launch_overhead() {
        let mut c = SimClock::new(GpuSpec::a100_40gb());
        c.charge_dense(0, 0);
        assert_eq!(
            c.dense_cycles,
            GpuSpec::a100_40gb().timing.kernel_launch_overhead_cycles
        );
        assert_eq!(c.launches, 1);
    }

    #[test]
    fn memory_bound_op_scales_with_bytes() {
        let mut c = SimClock::new(GpuSpec::a100_40gb());
        c.charge_dense(0, 1_000_000_000);
        let one_gb = c.dense_cycles;
        c.reset();
        c.charge_dense(0, 2_000_000_000);
        assert!(c.dense_cycles > one_gb * 3 / 2);
    }

    #[test]
    fn fused_charge_is_cheaper() {
        let mut a = SimClock::new(GpuSpec::a100_40gb());
        let mut b = SimClock::new(GpuSpec::a100_40gb());
        a.charge_dense(1000, 1000);
        b.charge_fused(1000, 1000);
        assert!(b.dense_cycles < a.dense_cycles);
        assert_eq!(b.launches, 0);
    }

    #[test]
    fn dense_charges_record_host_spans() {
        use gnnone_sim::TraceConfig;
        let mut c = SimClock::new(GpuSpec::tiny());
        let session = Arc::new(TraceSession::new(TraceConfig::on(), "tiny", 1.0));
        c.set_trace(Arc::clone(&session));
        c.charge_dense(1_000_000, 1_000_000);
        c.charge_fused(1_000_000, 1_000_000);
        let events = session.events();
        assert_eq!(events.len(), 2);
        assert!(events.iter().all(|e| e.cat == "host"));
        assert_eq!(events[0].name, "dense op");
        assert_eq!(events[1].name, "fused dense op");
        // Spans tile the timeline: second starts where the first ended.
        assert!((events[0].ts_us + events[0].dur_us - events[1].ts_us).abs() < 1e-9);
        assert_eq!(session.cursor_cycles(), c.dense_cycles);
    }

    #[test]
    fn disabled_trace_records_nothing() {
        use gnnone_sim::TraceConfig;
        let mut c = SimClock::new(GpuSpec::tiny());
        let session = Arc::new(TraceSession::new(TraceConfig::off(), "tiny", 1.0));
        c.set_trace(Arc::clone(&session));
        c.charge_dense(1000, 1000);
        assert_eq!(session.event_count(), 0);
    }

    #[test]
    fn totals_combine() {
        let mut c = SimClock::new(GpuSpec::a100_40gb());
        c.charge_dense(1, 1);
        c.kernel_cycles += 100;
        assert_eq!(c.total_cycles(), c.dense_cycles + 100);
        assert!(c.total_ms() > 0.0);
        c.reset();
        assert_eq!(c.total_cycles(), 0);
    }
}
