//! Sharded-aggregation parity for the GNN layer path.
//!
//! The model layers aggregate with `y = A · X` through
//! `graphops::spmm_const` (one simulated GNNOne SpMM launch on the
//! context's device). The same aggregation executed shard-by-shard
//! through [`ShardedExecutor`] — including with an injected shard fault
//! recovered from its checkpoint — must reproduce the layer's output
//! **bitwise**: a GNN trained over a sharded topology sees exactly the
//! bits an unsharded run would have produced. Integer-valued features
//! keep every partial sum exact in `f32`, so bit equality is the honest
//! acceptance bar, not a tolerance.

use std::rc::Rc;
use std::sync::Arc;

use gnnone_gnn::graphops;
use gnnone_gnn::{GnnContext, SystemKind};
use gnnone_kernels::registry;
use gnnone_kernels::shard::{ShardTopology, ShardedExecutor};
use gnnone_sim::{GpuSpec, ShardFaultKind};
use gnnone_sparse::datasets::{Dataset, Scale};
use gnnone_tensor::{Tape, Tensor};

/// Integer-valued features: exact `f32` arithmetic at any summation order.
fn int_features(len: usize, salt: usize) -> Vec<f32> {
    (0..len)
        .map(|i| ((i * 31 + salt * 17) % 7) as f32 - 3.0)
        .collect()
}

/// The layer-path aggregation `y = A · X` with all-ones edge weights,
/// read back off the tape.
fn layer_aggregate(ctx: &Rc<GnnContext>, x: &[f32], f: usize) -> Vec<f32> {
    let n = ctx.num_vertices();
    let mut tape = Tape::new();
    let xv = tape.leaf(Tensor::from_vec(n, f, x.to_vec()), false);
    let w = graphops::ones_weights(ctx);
    let y = graphops::spmm_const(ctx, &mut tape, &w, xv);
    tape.value(y).data().to_vec()
}

#[test]
fn sharded_aggregation_matches_the_gnn_layer_bitwise() {
    for id in ["G0", "G5"] {
        let ds = Dataset::by_id(id, Scale::Tiny).expect("Table 1 id");
        let ctx = Rc::new(GnnContext::new(
            SystemKind::GnnOne,
            ds.coo.clone(),
            GpuSpec::a100_40gb(),
        ));
        let f = 8;
        let n = ctx.num_vertices();
        let x = int_features(n * f, 1);
        let w = vec![1.0f32; ctx.nnz()];
        let unsharded = layer_aggregate(&ctx, &x, f);

        for k in [1usize, 2, 4] {
            let exec = ShardedExecutor::new(
                Arc::clone(&ctx.graph),
                k,
                ShardTopology::sim(GpuSpec::a100_40gb(), k.min(2)),
            )
            .expect("partition");
            let (sharded, report) = exec
                .run_spmm(
                    &|g| registry::spmm_by_name(g, "GnnOne").expect("registry kernel"),
                    &w,
                    &x,
                    f,
                )
                .expect("sharded aggregation");
            let want: Vec<u32> = unsharded.iter().map(|v| v.to_bits()).collect();
            let got: Vec<u32> = sharded.iter().map(|v| v.to_bits()).collect();
            assert_eq!(got, want, "{id}: K={k} aggregation must match bitwise");
            assert_eq!(report.retries, 0, "{id}: fault-free run must not retry");
        }
    }
}

#[test]
fn aggregation_recovers_bitwise_after_a_shard_kill() {
    let ds = Dataset::by_id("G0", Scale::Tiny).expect("Table 1 id");
    let ctx = Rc::new(GnnContext::new(
        SystemKind::GnnOne,
        ds.coo.clone(),
        GpuSpec::a100_40gb(),
    ));
    let f = 8;
    let n = ctx.num_vertices();
    let x = int_features(n * f, 2);
    let w = vec![1.0f32; ctx.nnz()];
    let unsharded = layer_aggregate(&ctx, &x, f);

    let mut exec = ShardedExecutor::new(
        Arc::clone(&ctx.graph),
        4,
        ShardTopology::sim(GpuSpec::a100_40gb(), 2),
    )
    .expect("partition");
    for (s, fault) in ShardFaultKind::lattice().into_iter().enumerate() {
        exec.arm_fault(fault, 0xC0FFEE + s as u64);
        let (sharded, report) = exec
            .run_spmm(
                &|g| registry::spmm_by_name(g, "GnnOne").expect("registry kernel"),
                &w,
                &x,
                f,
            )
            .expect("recovered sharded aggregation");
        let want: Vec<u32> = unsharded.iter().map(|v| v.to_bits()).collect();
        let got: Vec<u32> = sharded.iter().map(|v| v.to_bits()).collect();
        assert_eq!(got, want, "{fault:?}: recovery must be bitwise identical");
        assert!(
            report.retries >= 1,
            "{fault:?}: the armed fault must fire and be retried"
        );
    }
}
