//! Fused-vs-unfused gradient parity for the IR-lowered GAT chain.
//!
//! `graphops::gat_attention_plan` lowers the same IR graph twice — once
//! into the single fused `RowSoftmaxGat` launch, once into the unfused
//! pipeline (`u_add_v` launch → host LeakyReLU → host softmax → SpMM
//! launch) — and the two tapes must produce **bitwise identical**
//! gradients: the fused backward rematerializes the unfused
//! intermediates through the exact same shared host helpers. Checked on
//! Table 1 graphs (G0, G5) at tiny scale.

use std::rc::Rc;

use gnnone_gnn::graphops;
use gnnone_gnn::{GnnContext, SystemKind};
use gnnone_sim::GpuSpec;
use gnnone_sparse::datasets::{Dataset, Scale};
use gnnone_tensor::{ops, Tape, Tensor};

/// Deterministic, sign-varied inputs so gradients exercise both
/// LeakyReLU branches.
fn leaf_data(len: usize, salt: usize) -> Vec<f32> {
    (0..len)
        .map(|i| (((i * 7 + salt * 13) % 23) as f32 - 11.0) * 0.07)
        .collect()
}

/// Runs one GAT attention step with `loss = sum(y)` and returns
/// `(∂el, ∂er, ∂z)`.
fn grads(c: &Rc<GnnContext>, f: usize, fuse: bool) -> (Vec<f32>, Vec<f32>, Vec<f32>) {
    let n = c.num_vertices();
    let mut tape = Tape::new();
    let z = tape.leaf(Tensor::from_vec(n, f, leaf_data(n * f, 1)), true);
    let el = tape.leaf(Tensor::from_vec(n, 1, leaf_data(n, 2)), true);
    let er = tape.leaf(Tensor::from_vec(n, 1, leaf_data(n, 3)), true);
    let y = graphops::gat_attention_plan(c, &mut tape, el, er, z, 0.2, fuse);
    let s = ops::sum(&mut tape, y);
    let g = tape.backward(s);
    (
        g[el].as_ref().unwrap().data().to_vec(),
        g[er].as_ref().unwrap().data().to_vec(),
        g[z].as_ref().unwrap().data().to_vec(),
    )
}

#[test]
fn fused_gat_gradients_match_unfused_bitwise_on_table1_graphs() {
    for id in ["G0", "G5"] {
        let ds = Dataset::by_id(id, Scale::Tiny).expect("Table 1 id");
        let c = Rc::new(GnnContext::new(
            SystemKind::GnnOne,
            ds.coo.clone(),
            GpuSpec::a100_40gb(),
        ));
        let f = 8;
        let (del_u, der_u, dz_u) = grads(&c, f, false);
        let (del_f, der_f, dz_f) = grads(&c, f, true);
        assert_eq!(del_f, del_u, "{id}: ∂el must match bitwise");
        assert_eq!(der_f, der_u, "{id}: ∂er must match bitwise");
        assert_eq!(dz_f, dz_u, "{id}: ∂z must match bitwise");
    }
}

#[test]
fn fused_plan_issues_one_forward_launch() {
    let ds = Dataset::by_id("G0", Scale::Tiny).expect("Table 1 id");
    let launches = |fuse: bool| {
        let c = Rc::new(GnnContext::new(
            SystemKind::GnnOne,
            ds.coo.clone(),
            GpuSpec::a100_40gb(),
        ));
        let n = c.num_vertices();
        let mut tape = Tape::new();
        let z = tape.leaf(Tensor::zeros(n, 4), true);
        let el = tape.leaf(Tensor::zeros(n, 1), true);
        let er = tape.leaf(Tensor::zeros(n, 1), true);
        let _ = graphops::gat_attention_plan(&c, &mut tape, el, er, z, 0.2, fuse);
        let count = c.clock.borrow().launches;
        count
    };
    assert_eq!(launches(true), 1);
    // u_add_v launch + host-softmax dense charge + aggregation SpMM.
    assert_eq!(launches(false), 3);
}
