//! Integration tests across the three system configurations, including the
//! fused dgNN attention path inside a full training loop.

use std::rc::Rc;

use gnnone_gnn::models::Gat;
use gnnone_gnn::{train_model, GnnContext, SystemKind, TrainConfig};
use gnnone_sim::GpuSpec;
use gnnone_sparse::formats::Coo;
use gnnone_sparse::gen;
use gnnone_tensor::Tensor;

fn labeled() -> (Coo, Tensor, Vec<u32>) {
    let g = gen::planted_partition(110, 3, 8.0, 0.9, 8, 0.2, 31);
    let coo = Coo::from_edge_list(&g.edges.clone().symmetrize());
    let x = Tensor::from_vec(110, g.feature_dim, g.features.clone());
    (coo, x, g.labels)
}

#[test]
fn gat_trains_under_all_three_systems_with_accuracy_parity() {
    let (coo, x, labels) = labeled();
    let cfg = TrainConfig {
        epochs: 50,
        lr: 0.02,
        ..Default::default()
    };
    let mut results = Vec::new();
    for system in [SystemKind::GnnOne, SystemKind::Dgl, SystemKind::DgNn] {
        let ctx = Rc::new(GnnContext::new(
            system,
            coo.clone(),
            GpuSpec::a100_scaled(4),
        ));
        let mut model = Gat::new(8, 16, 3, 2, 5);
        let r = train_model(&mut model, &ctx, &x, &labels, &cfg);
        assert!(
            r.test_accuracy > 0.55,
            "{}: accuracy {}",
            system.name(),
            r.test_accuracy
        );
        results.push((system.name(), r.test_accuracy, r.launches));
    }
    // All three systems implement the same math: parity within noise.
    // (dgNN's fused kernel reorders float reductions, so allow a small gap.)
    for w in results.windows(2) {
        assert!(
            (w[0].1 - w[1].1).abs() < 0.1,
            "accuracy diverged: {results:?}"
        );
    }
    // dgNN's fused attention issues fewer launches than the unfused systems.
    let gnnone_launches = results[0].2;
    let dgnn_launches = results[2].2;
    assert!(
        dgnn_launches < gnnone_launches,
        "dgNN {dgnn_launches} !< GnnOne {gnnone_launches} launches"
    );
}

#[test]
fn training_is_deterministic_given_seeds() {
    let (coo, x, labels) = labeled();
    let cfg = TrainConfig {
        epochs: 10,
        ..Default::default()
    };
    let run = || {
        let ctx = Rc::new(GnnContext::new(
            SystemKind::GnnOne,
            coo.clone(),
            GpuSpec::a100_scaled(4),
        ));
        let mut model = Gat::new(8, 16, 3, 2, 7);
        train_model(&mut model, &ctx, &x, &labels, &cfg)
    };
    let a = run();
    let b = run();
    assert_eq!(a.losses, b.losses, "training must be reproducible");
    assert_eq!(a.test_accuracy, b.test_accuracy);
    assert_eq!(a.launches, b.launches);
}
