//! Property-based tests of format conversions and custom-format builders.

use gnnone_sparse::custom::{MergePath, NeighborGroups, RowSwizzle};
use gnnone_sparse::formats::{Coo, Csr, EdgeList, VertexId};
use gnnone_sparse::io;
use gnnone_sparse::reference;
use proptest::prelude::*;

/// Strategy: a random directed graph as (num_vertices, edges).
fn arb_graph() -> impl Strategy<Value = (usize, Vec<(VertexId, VertexId)>)> {
    (2usize..64).prop_flat_map(|n| {
        let edge = (0..n as VertexId, 0..n as VertexId);
        (Just(n), prop::collection::vec(edge, 0..256))
    })
}

proptest! {
    /// COO → CSR → COO is identity.
    #[test]
    fn coo_csr_roundtrip((n, edges) in arb_graph()) {
        let coo = Coo::from_edge_list(&EdgeList::new(n, edges));
        let csr = Csr::from_coo(&coo);
        prop_assert_eq!(csr.to_coo(), coo);
    }

    /// Transpose is an involution and preserves nnz.
    #[test]
    fn transpose_involution((n, edges) in arb_graph()) {
        let coo = Coo::from_edge_list(&EdgeList::new(n, edges));
        let t = coo.transpose();
        prop_assert_eq!(t.nnz(), coo.nnz());
        prop_assert_eq!(t.transpose(), coo);
    }

    /// Symmetrization produces a graph equal to its own transpose with no
    /// self-loops.
    #[test]
    fn symmetrize_is_symmetric((n, edges) in arb_graph()) {
        let el = EdgeList::new(n, edges).symmetrize();
        let coo = Coo::from_edge_list(&el);
        prop_assert_eq!(coo.transpose(), coo.clone());
        for e in 0..coo.nnz() {
            prop_assert_ne!(coo.rows()[e], coo.cols()[e]);
        }
    }

    /// Degrees sum to nnz; CSR offsets are monotone and end at nnz.
    #[test]
    fn degrees_and_offsets((n, edges) in arb_graph()) {
        let coo = Coo::from_edge_list(&EdgeList::new(n, edges));
        let csr = Csr::from_coo(&coo);
        let deg_sum: u64 = coo.degrees().iter().map(|&d| d as u64).sum();
        prop_assert_eq!(deg_sum, coo.nnz() as u64);
        prop_assert!(csr.offsets().windows(2).all(|w| w[0] <= w[1]));
        prop_assert_eq!(*csr.offsets().last().unwrap() as usize, csr.nnz());
    }

    /// Neighbor groups partition the NZEs exactly, each within one row.
    #[test]
    fn neighbor_groups_partition((n, edges) in arb_graph(), gsize in 1u32..64) {
        let coo = Coo::from_edge_list(&EdgeList::new(n, edges));
        let csr = Csr::from_coo(&coo);
        let ng = NeighborGroups::build(&csr, gsize);
        let covered: u64 = ng.groups.iter().map(|g| g.len as u64).sum();
        prop_assert_eq!(covered, csr.nnz() as u64);
        for g in &ng.groups {
            prop_assert!(g.len <= gsize);
            let range = csr.row_range(g.row as usize);
            prop_assert!(g.start as usize >= range.start);
            prop_assert!((g.start + g.len) as usize <= range.end);
        }
    }

    /// Merge-path spans cover the NZE range contiguously.
    #[test]
    fn merge_path_covers((n, edges) in arb_graph(), spans in 1usize..16) {
        let coo = Coo::from_edge_list(&EdgeList::new(n, edges));
        let csr = Csr::from_coo(&coo);
        let mp = MergePath::build(&csr, spans);
        if csr.nnz() + csr.num_rows() > 0 {
            prop_assert!(!mp.spans.is_empty());
            prop_assert_eq!(mp.spans[0].nze_start, 0);
            prop_assert_eq!(mp.spans.last().unwrap().nze_end as usize, csr.nnz());
            for w in mp.spans.windows(2) {
                prop_assert_eq!(w[0].nze_end, w[1].nze_start);
            }
        }
    }

    /// Row swizzling is a permutation sorted by non-increasing degree.
    #[test]
    fn row_swizzle_is_sorted_permutation((n, edges) in arb_graph()) {
        let coo = Coo::from_edge_list(&EdgeList::new(n, edges));
        let csr = Csr::from_coo(&coo);
        let sw = RowSwizzle::build(&csr);
        let mut sorted = sw.order.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, (0..n as VertexId).collect::<Vec<_>>());
        let degs: Vec<usize> = sw.order.iter().map(|&r| csr.degree(r as usize)).collect();
        prop_assert!(degs.windows(2).all(|w| w[0] >= w[1]));
    }

    /// Matrix Market write → read is identity on the topology.
    #[test]
    fn mtx_roundtrip((n, edges) in arb_graph()) {
        let coo = Coo::from_edge_list(&EdgeList::new(n, edges));
        let mut buf = Vec::new();
        io::write_mtx(&coo, &mut buf).unwrap();
        let back = io::read_mtx(std::io::Cursor::new(buf)).unwrap();
        let coo2 = Coo::from_edge_list(&back);
        prop_assert_eq!(coo2.rows(), coo.rows());
        prop_assert_eq!(coo2.cols(), coo.cols());
    }

    /// Reference SpMM is linear: A·(x + y) = A·x + A·y.
    #[test]
    fn reference_spmm_linearity((n, edges) in arb_graph(), f in 1usize..8) {
        let coo = Coo::from_edge_list(&EdgeList::new(n, edges));
        let csr = Csr::from_coo(&coo);
        let w: Vec<f32> = (0..csr.nnz()).map(|e| (e % 7) as f32 - 3.0).collect();
        let x: Vec<f32> = (0..n * f).map(|i| (i % 5) as f32).collect();
        let y: Vec<f32> = (0..n * f).map(|i| (i % 3) as f32 - 1.0).collect();
        let xy: Vec<f32> = x.iter().zip(&y).map(|(a, b)| a + b).collect();
        let lhs = reference::spmm_csr(&csr, &w, &xy, f);
        let ax = reference::spmm_csr(&csr, &w, &x, f);
        let ay = reference::spmm_csr(&csr, &w, &y, f);
        let rhs: Vec<f32> = ax.iter().zip(&ay).map(|(a, b)| a + b).collect();
        reference::assert_close(&lhs, &rhs, 1e-4);
    }

    /// SDDMM and SpMM satisfy the adjoint identity
    /// `⟨SDDMM(A,X,Y), w⟩ = ⟨X, SpMM(A∘w, Y)⟩` — the mathematical fact that
    /// makes SpMM's backward an SDDMM (paper §1).
    #[test]
    fn sddmm_spmm_adjoint((n, edges) in arb_graph(), f in 1usize..6) {
        let coo = Coo::from_edge_list(&EdgeList::new(n, edges));
        let csr = Csr::from_coo(&coo);
        let x: Vec<f32> = (0..n * f).map(|i| ((i % 7) as f32 - 3.0) * 0.5).collect();
        let y: Vec<f32> = (0..n * f).map(|i| ((i % 5) as f32 - 2.0) * 0.5).collect();
        let w: Vec<f32> = (0..coo.nnz()).map(|e| ((e % 3) as f32 - 1.0) * 0.5).collect();
        let sddmm = reference::sddmm_coo(&coo, &x, &y, f);
        let lhs: f32 = sddmm.iter().zip(&w).map(|(a, b)| a * b).sum();
        let spmm = reference::spmm_csr(&csr, &w, &y, f);
        let rhs: f32 = x.iter().zip(&spmm).map(|(a, b)| a * b).sum();
        prop_assert!((lhs - rhs).abs() <= 1e-2 * (1.0 + lhs.abs().max(rhs.abs())),
            "adjoint identity violated: {lhs} vs {rhs}");
    }
}
