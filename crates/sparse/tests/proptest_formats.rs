//! Property-based tests of format conversions and custom-format builders.

use gnnone_sparse::custom::{MergePath, NeighborGroups, RowSwizzle};
use gnnone_sparse::formats::{Coo, Csr, CsrRows, EdgeList, VertexId};
use gnnone_sparse::gen::adversarial;
use gnnone_sparse::io;
use gnnone_sparse::reference;
use gnnone_sparse::validate;
use proptest::prelude::*;

/// Strategy: a random directed graph as (num_vertices, edges).
fn arb_graph() -> impl Strategy<Value = (usize, Vec<(VertexId, VertexId)>)> {
    (2usize..64).prop_flat_map(|n| {
        let edge = (0..n as VertexId, 0..n as VertexId);
        (Just(n), prop::collection::vec(edge, 0..256))
    })
}

proptest! {
    /// COO → CSR → COO is identity.
    #[test]
    fn coo_csr_roundtrip((n, edges) in arb_graph()) {
        let coo = Coo::from_edge_list(&EdgeList::new(n, edges));
        let csr = Csr::from_coo(&coo);
        prop_assert_eq!(csr.to_coo(), coo);
    }

    /// Transpose is an involution and preserves nnz.
    #[test]
    fn transpose_involution((n, edges) in arb_graph()) {
        let coo = Coo::from_edge_list(&EdgeList::new(n, edges));
        let t = coo.transpose();
        prop_assert_eq!(t.nnz(), coo.nnz());
        prop_assert_eq!(t.transpose(), coo);
    }

    /// Symmetrization produces a graph equal to its own transpose with no
    /// self-loops.
    #[test]
    fn symmetrize_is_symmetric((n, edges) in arb_graph()) {
        let el = EdgeList::new(n, edges).symmetrize();
        let coo = Coo::from_edge_list(&el);
        prop_assert_eq!(coo.transpose(), coo.clone());
        for e in 0..coo.nnz() {
            prop_assert_ne!(coo.rows()[e], coo.cols()[e]);
        }
    }

    /// Degrees sum to nnz; CSR offsets are monotone and end at nnz.
    #[test]
    fn degrees_and_offsets((n, edges) in arb_graph()) {
        let coo = Coo::from_edge_list(&EdgeList::new(n, edges));
        let csr = Csr::from_coo(&coo);
        let deg_sum: u64 = coo.degrees().iter().map(|&d| d as u64).sum();
        prop_assert_eq!(deg_sum, coo.nnz() as u64);
        prop_assert!(csr.offsets().windows(2).all(|w| w[0] <= w[1]));
        prop_assert_eq!(*csr.offsets().last().unwrap() as usize, csr.nnz());
    }

    /// Neighbor groups partition the NZEs exactly, each within one row.
    #[test]
    fn neighbor_groups_partition((n, edges) in arb_graph(), gsize in 1u32..64) {
        let coo = Coo::from_edge_list(&EdgeList::new(n, edges));
        let csr = Csr::from_coo(&coo);
        let ng = NeighborGroups::build(&csr, gsize);
        let covered: u64 = ng.groups.iter().map(|g| g.len as u64).sum();
        prop_assert_eq!(covered, csr.nnz() as u64);
        for g in &ng.groups {
            prop_assert!(g.len <= gsize);
            let range = csr.row_range(g.row as usize);
            prop_assert!(g.start as usize >= range.start);
            prop_assert!((g.start + g.len) as usize <= range.end);
        }
    }

    /// Merge-path spans cover the NZE range contiguously.
    #[test]
    fn merge_path_covers((n, edges) in arb_graph(), spans in 1usize..16) {
        let coo = Coo::from_edge_list(&EdgeList::new(n, edges));
        let csr = Csr::from_coo(&coo);
        let mp = MergePath::build(&csr, spans);
        if csr.nnz() + csr.num_rows() > 0 {
            prop_assert!(!mp.spans.is_empty());
            prop_assert_eq!(mp.spans[0].nze_start, 0);
            prop_assert_eq!(mp.spans.last().unwrap().nze_end as usize, csr.nnz());
            for w in mp.spans.windows(2) {
                prop_assert_eq!(w[0].nze_end, w[1].nze_start);
            }
        }
    }

    /// Row swizzling is a permutation sorted by non-increasing degree.
    #[test]
    fn row_swizzle_is_sorted_permutation((n, edges) in arb_graph()) {
        let coo = Coo::from_edge_list(&EdgeList::new(n, edges));
        let csr = Csr::from_coo(&coo);
        let sw = RowSwizzle::build(&csr);
        let mut sorted = sw.order.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, (0..n as VertexId).collect::<Vec<_>>());
        let degs: Vec<usize> = sw.order.iter().map(|&r| csr.degree(r as usize)).collect();
        prop_assert!(degs.windows(2).all(|w| w[0] >= w[1]));
    }

    /// Matrix Market write → read is identity on the topology.
    #[test]
    fn mtx_roundtrip((n, edges) in arb_graph()) {
        let coo = Coo::from_edge_list(&EdgeList::new(n, edges));
        let mut buf = Vec::new();
        io::write_mtx(&coo, &mut buf).unwrap();
        let back = io::read_mtx(std::io::Cursor::new(buf)).unwrap();
        let coo2 = Coo::from_edge_list(&back);
        prop_assert_eq!(coo2.rows(), coo.rows());
        prop_assert_eq!(coo2.cols(), coo.cols());
    }

    /// Reference SpMM is linear: A·(x + y) = A·x + A·y.
    #[test]
    fn reference_spmm_linearity((n, edges) in arb_graph(), f in 1usize..8) {
        let coo = Coo::from_edge_list(&EdgeList::new(n, edges));
        let csr = Csr::from_coo(&coo);
        let w: Vec<f32> = (0..csr.nnz()).map(|e| (e % 7) as f32 - 3.0).collect();
        let x: Vec<f32> = (0..n * f).map(|i| (i % 5) as f32).collect();
        let y: Vec<f32> = (0..n * f).map(|i| (i % 3) as f32 - 1.0).collect();
        let xy: Vec<f32> = x.iter().zip(&y).map(|(a, b)| a + b).collect();
        let lhs = reference::spmm_csr(&csr, &w, &xy, f);
        let ax = reference::spmm_csr(&csr, &w, &x, f);
        let ay = reference::spmm_csr(&csr, &w, &y, f);
        let rhs: Vec<f32> = ax.iter().zip(&ay).map(|(a, b)| a + b).collect();
        reference::assert_close(&lhs, &rhs, 1e-4);
    }

    /// SDDMM and SpMM satisfy the adjoint identity
    /// `⟨SDDMM(A,X,Y), w⟩ = ⟨X, SpMM(A∘w, Y)⟩` — the mathematical fact that
    /// makes SpMM's backward an SDDMM (paper §1).
    #[test]
    fn sddmm_spmm_adjoint((n, edges) in arb_graph(), f in 1usize..6) {
        let coo = Coo::from_edge_list(&EdgeList::new(n, edges));
        let csr = Csr::from_coo(&coo);
        let x: Vec<f32> = (0..n * f).map(|i| ((i % 7) as f32 - 3.0) * 0.5).collect();
        let y: Vec<f32> = (0..n * f).map(|i| ((i % 5) as f32 - 2.0) * 0.5).collect();
        let w: Vec<f32> = (0..coo.nnz()).map(|e| ((e % 3) as f32 - 1.0) * 0.5).collect();
        let sddmm = reference::sddmm_coo(&coo, &x, &y, f);
        let lhs: f32 = sddmm.iter().zip(&w).map(|(a, b)| a * b).sum();
        let spmm = reference::spmm_csr(&csr, &w, &y, f);
        let rhs: f32 = x.iter().zip(&spmm).map(|(a, b)| a * b).sum();
        prop_assert!((lhs - rhs).abs() <= 1e-2 * (1.0 + lhs.abs().max(rhs.abs())),
            "adjoint identity violated: {lhs} vs {rhs}");
    }

    /// Coo ↔ Csr ↔ CsrRows conversions round-trip and every intermediate
    /// passes the strict validators.
    #[test]
    fn csr_rows_roundtrip((n, edges) in arb_graph()) {
        check_csr_rows_roundtrip(n, edges);
    }

    /// The CSR validator is total on arbitrary raw parts — it never panics,
    /// and `Csr::try_from_parts` accepts exactly what it accepts.
    #[test]
    fn csr_validator_total_on_raw_parts(
        num_rows in 0usize..12,
        num_cols in 0usize..12,
        offsets in prop::collection::vec(0u32..24, 0..14),
        cols in prop::collection::vec(0u32..16, 0..24),
    ) {
        check_csr_validator_agreement(num_rows, num_cols, offsets, cols);
    }

    /// The COO validator is total on arbitrary raw parts and agrees with
    /// `Coo::try_from_sorted`.
    #[test]
    fn coo_validator_total_on_raw_parts(
        num_rows in 0usize..12,
        num_cols in 0usize..12,
        rows in prop::collection::vec(0u32..16, 0..24),
        cols in prop::collection::vec(0u32..16, 0..24),
    ) {
        check_coo_validator_agreement(num_rows, num_cols, rows, cols);
    }

    /// Every adversarial-corpus case — at any seed — either resolves to a
    /// graph that passes all validators and survives the Coo↔Csr↔CsrRows
    /// conversion cycle, or is rejected with a typed `ValidationError`;
    /// it never panics and never crosses its expect-valid label.
    #[test]
    fn adversarial_corpus_resolves_or_rejects_typed(seed in any::<u64>()) {
        check_adversarial_corpus(seed);
    }
}

/// Shared body of `csr_rows_roundtrip`: asserts the conversion cycle is
/// lossless and every intermediate representation validates.
fn check_csr_rows_roundtrip(n: usize, edges: Vec<(VertexId, VertexId)>) {
    let coo = Coo::from_edge_list(&EdgeList::new(n, edges));
    let csr = Csr::from_coo(&coo);
    assert!(validate::coo(&coo).is_ok());
    assert!(validate::csr(&csr).is_ok());
    let rows = csr.to_rows();
    assert!(validate::csr_rows(&rows).is_ok());
    assert_eq!(rows.to_csr(), csr);
    assert_eq!(rows.to_coo(), coo);
    assert_eq!(CsrRows::from_coo(&coo).to_coo(), coo);
    assert_eq!(CsrRows::from_csr(&csr).to_csr(), csr);
}

/// Shared body of `csr_validator_total_on_raw_parts`.
fn check_csr_validator_agreement(
    num_rows: usize,
    num_cols: usize,
    offsets: Vec<u32>,
    cols: Vec<VertexId>,
) {
    let verdict = validate::csr_parts(num_rows, num_cols, &offsets, &cols);
    let built = Csr::try_from_parts(num_rows, num_cols, offsets, cols);
    assert_eq!(verdict.is_ok(), built.is_ok());
    if let Err(e) = built {
        assert!(!e.to_string().is_empty());
    }
}

/// Shared body of `coo_validator_total_on_raw_parts`.
fn check_coo_validator_agreement(
    num_rows: usize,
    num_cols: usize,
    rows: Vec<VertexId>,
    cols: Vec<VertexId>,
) {
    let verdict = validate::coo_parts(num_rows, num_cols, &rows, &cols);
    let built = Coo::try_from_sorted(num_rows, num_cols, rows, cols);
    assert_eq!(verdict.is_ok(), built.is_ok());
}

/// Shared body of `adversarial_corpus_resolves_or_rejects_typed`.
fn check_adversarial_corpus(seed: u64) {
    for case in adversarial::corpus(seed) {
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| case.resolve()));
        let resolved = outcome.unwrap_or_else(|_| {
            panic!(
                "adversarial case `{}` panicked instead of returning a typed error",
                case.name
            )
        });
        match resolved {
            Ok(g) => {
                assert!(
                    case.expect_valid,
                    "malformed case `{}` was accepted by validation",
                    case.name
                );
                assert!(validate::csr(&g.csr).is_ok());
                assert!(validate::coo(&g.coo).is_ok());
                assert!(validate::features(&g.features, g.csr.num_rows(), g.f).is_ok());
                let rows = g.csr.to_rows();
                assert!(validate::csr_rows(&rows).is_ok());
                assert_eq!(rows.to_csr(), g.csr);
                assert_eq!(g.coo, Csr::from_coo(&g.coo).to_coo());
            }
            Err(e) => {
                assert!(
                    !case.expect_valid,
                    "valid case `{}` was rejected: {e}",
                    case.name
                );
                assert!(!e.to_string().is_empty());
            }
        }
    }
}

/// Deterministic instantiations of the properties above — these run even
/// where the real `proptest` crate is unavailable (the offline build stubs
/// the `proptest!` macro out), so the robustness invariants always have
/// executed coverage.
mod deterministic {
    use super::*;

    #[test]
    fn csr_rows_roundtrip_fixed_graphs() {
        check_csr_rows_roundtrip(1, vec![]);
        check_csr_rows_roundtrip(1, vec![(0, 0)]);
        check_csr_rows_roundtrip(4, vec![(0, 1), (0, 3), (2, 0), (3, 3)]);
        // Duplicates and unsorted input: from_edge_list sorts + dedups.
        check_csr_rows_roundtrip(5, vec![(4, 0), (1, 2), (1, 2), (0, 4), (4, 0)]);
    }

    #[test]
    fn csr_validator_agreement_fixed_parts() {
        // Valid 3×3.
        check_csr_validator_agreement(3, 3, vec![0, 1, 1, 3], vec![2, 0, 1]);
        // Truncated offsets, non-monotone offsets, OOB column, dup column.
        check_csr_validator_agreement(3, 3, vec![0, 1, 3], vec![2, 0, 1]);
        check_csr_validator_agreement(3, 3, vec![0, 2, 1, 3], vec![2, 0, 1]);
        check_csr_validator_agreement(3, 3, vec![0, 1, 1, 3], vec![2, 0, 9]);
        check_csr_validator_agreement(3, 3, vec![0, 1, 1, 3], vec![2, 1, 1]);
        check_csr_validator_agreement(0, 0, vec![], vec![]);
    }

    #[test]
    fn coo_validator_agreement_fixed_parts() {
        check_coo_validator_agreement(3, 3, vec![0, 0, 2], vec![1, 2, 0]);
        // Misaligned, OOB, unsorted, duplicate.
        check_coo_validator_agreement(3, 3, vec![0, 0], vec![1, 2, 0]);
        check_coo_validator_agreement(3, 3, vec![0, 5, 2], vec![1, 2, 0]);
        check_coo_validator_agreement(3, 3, vec![2, 0, 0], vec![0, 1, 2]);
        check_coo_validator_agreement(3, 3, vec![0, 0, 2], vec![1, 1, 0]);
    }

    #[test]
    fn adversarial_corpus_fixed_seeds() {
        for seed in [0u64, 1, 0xC0FFEE, u64::MAX] {
            check_adversarial_corpus(seed);
        }
    }
}
