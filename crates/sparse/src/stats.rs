//! Degree-distribution statistics — the graph property sparse-kernel
//! performance actually responds to (workload imbalance comes from degree
//! skew; paper §2, *Vertex-Parallel and Edge-Parallel*).
//!
//! Used by the `table1` binary to demonstrate that each synthetic analogue
//! matches the *character* of its Table 1 original, and handy for users
//! deciding which kernel strategy fits their matrix.

use crate::formats::Csr;
use serde::{Deserialize, Serialize};

/// Summary of a graph's (out-)degree distribution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DegreeStats {
    /// Number of rows (vertices).
    pub num_rows: usize,
    /// Number of NZEs.
    pub nnz: usize,
    /// Mean degree.
    pub mean: f64,
    /// Maximum degree.
    pub max: usize,
    /// 99th-percentile degree.
    pub p99: usize,
    /// Gini coefficient of the degree distribution: 0 = perfectly uniform
    /// (road networks), → 1 = extremely skewed (web crawls, social hubs).
    pub gini: f64,
    /// Fraction of rows with zero NZEs.
    pub empty_fraction: f64,
}

impl DegreeStats {
    /// Computes the summary for `csr`.
    pub fn compute(csr: &Csr) -> Self {
        let n = csr.num_rows();
        let mut degrees: Vec<usize> = (0..n).map(|r| csr.degree(r)).collect();
        degrees.sort_unstable();
        let nnz = csr.nnz();
        let mean = if n == 0 { 0.0 } else { nnz as f64 / n as f64 };
        let max = degrees.last().copied().unwrap_or(0);
        let p99 = if n == 0 {
            0
        } else {
            degrees[((n - 1) as f64 * 0.99) as usize]
        };
        let empty = degrees.iter().filter(|&&d| d == 0).count();

        // Gini over the sorted degrees: G = (2 Σ i·x_i) / (n Σ x_i) − (n+1)/n.
        let gini = if nnz == 0 || n == 0 {
            0.0
        } else {
            let weighted: f64 = degrees
                .iter()
                .enumerate()
                .map(|(i, &d)| (i as f64 + 1.0) * d as f64)
                .sum();
            (2.0 * weighted) / (n as f64 * nnz as f64) - (n as f64 + 1.0) / n as f64
        };
        Self {
            num_rows: n,
            nnz,
            mean,
            max,
            p99,
            gini,
            empty_fraction: if n == 0 { 0.0 } else { empty as f64 / n as f64 },
        }
    }

    /// Skew ratio `max / mean` — a quick straggler-risk indicator for
    /// vertex-parallel kernels.
    pub fn skew(&self) -> f64 {
        if self.mean == 0.0 {
            0.0
        } else {
            self.max as f64 / self.mean
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::formats::{Coo, EdgeList};
    use crate::gen;

    fn stats_of(el: EdgeList) -> DegreeStats {
        DegreeStats::compute(&Csr::from_coo(&Coo::from_edge_list(&el)))
    }

    #[test]
    fn uniform_graph_has_low_gini() {
        let s = stats_of(gen::grid2d(32, 32, 0, 0).symmetrize());
        assert!(s.gini < 0.15, "grid gini {}", s.gini);
        assert_eq!(s.max, 4);
        assert!(s.skew() < 1.5);
    }

    #[test]
    fn powerlaw_graph_has_high_gini() {
        let s = stats_of(gen::rmat(10, 8192, gen::GRAPH500_PROBS, 3).symmetrize());
        assert!(s.gini > 0.4, "rmat gini {}", s.gini);
        assert!(s.skew() > 5.0);
    }

    #[test]
    fn hand_checked_small_graph() {
        // Degrees: 2, 1, 1, 0.
        let s = stats_of(EdgeList::new(4, vec![(0, 1), (0, 2), (1, 0), (2, 3)]));
        assert_eq!(s.nnz, 4);
        assert_eq!(s.max, 2);
        assert_eq!(s.mean, 1.0);
        assert!((s.empty_fraction - 0.25).abs() < 1e-12);
    }

    #[test]
    fn gini_bounds() {
        // All mass on one row: Gini → (n-1)/n.
        let s = stats_of(EdgeList::new(10, (1..10u32).map(|c| (0, c)).collect()));
        assert!(s.gini > 0.85, "gini {}", s.gini);
        // Perfectly even: Gini = 0.
        let s = stats_of(EdgeList::new(4, vec![(0, 1), (1, 2), (2, 3), (3, 0)]));
        assert!(s.gini.abs() < 1e-9);
    }

    #[test]
    fn empty_graph() {
        let s = stats_of(EdgeList::new(3, vec![]));
        assert_eq!(s.gini, 0.0);
        assert_eq!(s.skew(), 0.0);
        assert_eq!(s.empty_fraction, 1.0);
    }

    #[test]
    fn analogue_character_matches_originals() {
        use crate::datasets::{by_id, Dataset, Scale};
        // Road analogue near-uniform, hollywood analogue heavily skewed.
        let road = Dataset::generate(&by_id("G5").unwrap(), Scale::Tiny);
        let holly = Dataset::generate(&by_id("G11").unwrap(), Scale::Tiny);
        let sr = DegreeStats::compute(&road.csr);
        let sh = DegreeStats::compute(&holly.csr);
        assert!(sr.gini < 0.2, "road gini {}", sr.gini);
        assert!(sh.gini > 0.4, "hollywood gini {}", sh.gini);
    }
}
