//! Adversarial graph corpus for the fuzz sweep.
//!
//! Each case is either a *valid-extreme* graph (legal by every CSR
//! invariant but pathological for the kernels: empty rows, one mega-row,
//! dense diagonals of self-loops) or a *malformed* input (duplicate edges,
//! truncated offset arrays, out-of-range columns, non-finite features,
//! unusable feature widths). The contract the fuzz driver enforces:
//!
//! * valid-extreme cases must resolve cleanly and then survive every
//!   registry kernel without a panic, sanitizer finding, or watchdog abort;
//! * malformed cases must be rejected by [`AdversarialCase::resolve`] with a
//!   typed [`ValidationError`] — acceptance is a validation hole, a panic is
//!   a robustness bug. Either way, no process ever dies.
//!
//! The corpus is deterministic in its seed (sizes and random payloads come
//! from `ChaCha8Rng`), so failures reproduce from the seed printed by
//! `gnnone-prof fuzz`.

use crate::formats::{Coo, Csr, VertexId};
use gnnone_sim::ValidationError;
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;

/// Feature-width ceiling for corpus cases. Legal widths go far higher
/// (`validate::MAX_FEATURE_DIM`), but fuzz runs every kernel on every case —
/// this keeps the "huge f" probe meaningful without unbounded runtime.
pub const MAX_CORPUS_F: usize = 512;

/// Raw, unvalidated parts of one corpus case.
#[derive(Debug, Clone)]
enum CaseKind {
    /// CSR parts, possibly violating the format invariants.
    RawCsr {
        num_rows: usize,
        num_cols: usize,
        offsets: Vec<u32>,
        cols: Vec<VertexId>,
    },
    /// COO parts, possibly unsorted or duplicated.
    RawCoo {
        num_rows: usize,
        num_cols: usize,
        rows: Vec<VertexId>,
        cols: Vec<VertexId>,
    },
}

/// One adversarial input: raw topology parts + a raw feature buffer.
#[derive(Debug, Clone)]
pub struct AdversarialCase {
    /// Stable case name, printed in fuzz findings.
    pub name: &'static str,
    /// `true` for valid-extreme cases (must resolve and run clean); `false`
    /// for malformed ones (must be rejected with a typed error).
    pub expect_valid: bool,
    /// Feature width the case claims.
    pub f: usize,
    /// Raw feature buffer (`num_rows * f` when well-formed).
    pub features: Vec<f32>,
    kind: CaseKind,
}

/// A corpus case that passed validation, ready to launch kernels on.
#[derive(Debug, Clone)]
pub struct ResolvedGraph {
    /// Validated CSR topology.
    pub csr: Csr,
    /// The same topology in COO (kernels are format-split).
    pub coo: Coo,
    /// Validated finite features, row-major `num_rows x f`.
    pub features: Vec<f32>,
    /// Feature width.
    pub f: usize,
}

impl AdversarialCase {
    /// Runs the full validation preflight: non-empty graph, usable feature
    /// width, format invariants, finite features. Malformed cases come back
    /// as typed errors — never panics.
    pub fn resolve(&self) -> Result<ResolvedGraph, ValidationError> {
        let (num_rows, structure) = match &self.kind {
            CaseKind::RawCsr { num_rows, .. } => (*num_rows, "Csr"),
            CaseKind::RawCoo { num_rows, .. } => (*num_rows, "Coo"),
        };
        if num_rows == 0 {
            return Err(ValidationError::new(
                structure,
                "num_rows",
                None,
                "empty graph: kernels need at least one row".to_string(),
            ));
        }
        crate::validate::feature_dim(self.f)?;
        let csr = match &self.kind {
            CaseKind::RawCsr {
                num_rows,
                num_cols,
                offsets,
                cols,
            } => Csr::try_from_parts(*num_rows, *num_cols, offsets.clone(), cols.clone())?,
            CaseKind::RawCoo {
                num_rows,
                num_cols,
                rows,
                cols,
            } => {
                let coo = Coo::try_from_sorted(*num_rows, *num_cols, rows.clone(), cols.clone())?;
                Csr::from_coo(&coo)
            }
        };
        crate::validate::features(&self.features, csr.num_rows(), self.f)?;
        let coo = csr.to_coo();
        Ok(ResolvedGraph {
            coo,
            features: self.features.clone(),
            f: self.f,
            csr,
        })
    }
}

fn finite_features(rng: &mut ChaCha8Rng, rows: usize, f: usize) -> Vec<f32> {
    (0..rows * f).map(|_| rng.gen_range(-1.0..1.0)).collect()
}

#[allow(clippy::too_many_arguments)]
fn csr_case(
    name: &'static str,
    expect_valid: bool,
    num_rows: usize,
    num_cols: usize,
    offsets: Vec<u32>,
    cols: Vec<VertexId>,
    f: usize,
    features: Vec<f32>,
) -> AdversarialCase {
    AdversarialCase {
        name,
        expect_valid,
        f,
        features,
        kind: CaseKind::RawCsr {
            num_rows,
            num_cols,
            offsets,
            cols,
        },
    }
}

/// Builds the full adversarial corpus, deterministic in `seed`.
pub fn corpus(seed: u64) -> Vec<AdversarialCase> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut cases = Vec::new();

    // --- valid-extreme topologies ---------------------------------------

    // Control: an ordinary small random graph. If this fails, the harness
    // itself is broken, not the kernels.
    {
        let n = 64;
        let (offsets, cols) = random_csr(&mut rng, n, 4);
        let feats = finite_features(&mut rng, n, 16);
        cases.push(csr_case(
            "random-sparse",
            true,
            n,
            n,
            offsets,
            cols,
            16,
            feats,
        ));
    }

    // Every row empty: nnz = 0. Exercises zero-work launches and guards
    // against divide-by-degree assumptions.
    {
        let n = 32;
        let feats = finite_features(&mut rng, n, 8);
        cases.push(csr_case(
            "all-empty-rows",
            true,
            n,
            n,
            vec![0; n + 1],
            vec![],
            8,
            feats,
        ));
    }

    // One mega-row owning every nonzero; all other rows empty. The skew
    // extreme that row-splitting exists for — also the case that routes all
    // work through few warps, probing the watchdog's derived budget.
    {
        let n = 96;
        let mut offsets = vec![0u32; n + 1];
        for o in offsets.iter_mut().skip(1) {
            *o = n as u32;
        }
        let cols: Vec<VertexId> = (0..n as VertexId).collect();
        let feats = finite_features(&mut rng, n, 16);
        cases.push(csr_case(
            "single-mega-row",
            true,
            n,
            n,
            offsets,
            cols,
            16,
            feats,
        ));
    }

    // Pure diagonal of self-loops: legal CSR, degenerate aggregation.
    {
        let n = 48;
        let offsets: Vec<u32> = (0..=n as u32).collect();
        let cols: Vec<VertexId> = (0..n as VertexId).collect();
        let feats = finite_features(&mut rng, n, 8);
        cases.push(csr_case(
            "diagonal-self-loops",
            true,
            n,
            n,
            offsets,
            cols,
            8,
            feats,
        ));
    }

    // Single vertex with a self loop: the smallest legal graph.
    {
        let feats = finite_features(&mut rng, 1, 4);
        cases.push(csr_case(
            "one-vertex-self-loop",
            true,
            1,
            1,
            vec![0, 1],
            vec![0],
            4,
            feats,
        ));
    }

    // Fully dense tiny graph: every row touches every column.
    {
        let n = 16;
        let offsets: Vec<u32> = (0..=n as u32).map(|i| i * n as u32).collect();
        let cols: Vec<VertexId> = (0..n)
            .flat_map(|_| (0..n as VertexId).collect::<Vec<_>>())
            .collect();
        let feats = finite_features(&mut rng, n, 8);
        cases.push(csr_case("dense-tiny", true, n, n, offsets, cols, 8, feats));
    }

    // Huge (but capped) feature width on a small graph.
    {
        let n = 8;
        let (offsets, cols) = random_csr(&mut rng, n, 3);
        let feats = finite_features(&mut rng, n, MAX_CORPUS_F);
        cases.push(csr_case(
            "huge-f",
            true,
            n,
            n,
            offsets,
            cols,
            MAX_CORPUS_F,
            feats,
        ));
    }

    // --- malformed inputs: must be rejected with a typed error ----------

    // Zero-vertex graph.
    cases.push(csr_case(
        "empty-graph",
        false,
        0,
        0,
        vec![0],
        vec![],
        8,
        vec![],
    ));

    // Duplicate edge in COO (strict CSR ordering rejects).
    {
        let feats = finite_features(&mut rng, 4, 4);
        cases.push(AdversarialCase {
            name: "duplicate-edges",
            expect_valid: false,
            f: 4,
            features: feats,
            kind: CaseKind::RawCoo {
                num_rows: 4,
                num_cols: 4,
                rows: vec![0, 1, 1, 2],
                cols: vec![1, 2, 2, 3],
            },
        });
    }

    // Unsorted COO.
    {
        let feats = finite_features(&mut rng, 4, 4);
        cases.push(AdversarialCase {
            name: "unsorted-coo",
            expect_valid: false,
            f: 4,
            features: feats,
            kind: CaseKind::RawCoo {
                num_rows: 4,
                num_cols: 4,
                rows: vec![2, 0, 1, 1],
                cols: vec![3, 1, 2, 0],
            },
        });
    }

    // Truncated offsets: final offset overruns the column array.
    {
        let feats = finite_features(&mut rng, 4, 4);
        cases.push(csr_case(
            "truncated-offsets",
            false,
            4,
            4,
            vec![0, 2, 4, 6, 9],
            vec![0, 1, 1, 2, 2, 3],
            4,
            feats,
        ));
    }

    // Offset array of the wrong length for num_rows.
    {
        let feats = finite_features(&mut rng, 4, 4);
        cases.push(csr_case(
            "offsets-wrong-length",
            false,
            4,
            4,
            vec![0, 1, 2],
            vec![0, 1],
            4,
            feats,
        ));
    }

    // Non-monotone offsets.
    {
        let feats = finite_features(&mut rng, 3, 4);
        cases.push(csr_case(
            "non-monotone-offsets",
            false,
            3,
            3,
            vec![0, 2, 1, 3],
            vec![0, 1, 2],
            4,
            feats,
        ));
    }

    // Out-of-range column id.
    {
        let feats = finite_features(&mut rng, 3, 4);
        cases.push(csr_case(
            "oob-column",
            false,
            3,
            3,
            vec![0, 1, 2, 3],
            vec![0, 7, 2],
            4,
            feats,
        ));
    }

    // NaN poisoning one feature of a well-formed graph.
    {
        let n = 16;
        let (offsets, cols) = random_csr(&mut rng, n, 3);
        let mut feats = finite_features(&mut rng, n, 8);
        let idx = rng.gen_range(0..feats.len());
        feats[idx] = f32::NAN;
        cases.push(csr_case(
            "nan-features",
            false,
            n,
            n,
            offsets,
            cols,
            8,
            feats,
        ));
    }

    // Infinity in features.
    {
        let n = 16;
        let (offsets, cols) = random_csr(&mut rng, n, 3);
        let mut feats = finite_features(&mut rng, n, 8);
        let idx = rng.gen_range(0..feats.len());
        feats[idx] = f32::NEG_INFINITY;
        cases.push(csr_case(
            "inf-features",
            false,
            n,
            n,
            offsets,
            cols,
            8,
            feats,
        ));
    }

    // Feature buffer of the wrong length.
    {
        let n = 8;
        let (offsets, cols) = random_csr(&mut rng, n, 2);
        let feats = finite_features(&mut rng, n, 4);
        cases.push(csr_case(
            "short-feature-buffer",
            false,
            n,
            n,
            offsets,
            cols,
            8, // claims f = 8 but the buffer holds n * 4
            feats,
        ));
    }

    // Unusable feature widths.
    {
        let n = 8;
        let (offsets, cols) = random_csr(&mut rng, n, 2);
        cases.push(csr_case(
            "zero-f",
            false,
            n,
            n,
            offsets.clone(),
            cols.clone(),
            0,
            vec![],
        ));
        cases.push(csr_case(
            "absurd-f",
            false,
            n,
            n,
            offsets,
            cols,
            crate::validate::MAX_FEATURE_DIM + 1,
            vec![],
        ));
    }

    cases
}

/// One adversarial Matrix Market text: a byte stream the `.mtx` importer
/// must either parse cleanly or reject with a typed [`crate::io::MtxError`].
/// Panics on any of these are import-robustness bugs.
#[derive(Debug, Clone)]
pub struct MtxCase {
    /// Stable case name, printed in fuzz findings.
    pub name: &'static str,
    /// `true` when the text must parse; `false` when it must be rejected.
    pub expect_valid: bool,
    /// The raw `.mtx` stream.
    pub text: &'static str,
}

/// Malformed (and one control) `.mtx` streams for the import path: headers
/// that are not Matrix Market, entry records arriving before the size line,
/// and files that end without ever declaring dimensions.
pub fn mtx_corpus() -> Vec<MtxCase> {
    vec![
        MtxCase {
            name: "mtx-control",
            expect_valid: true,
            text: "%%MatrixMarket matrix coordinate pattern general\n2 2 1\n1 2\n",
        },
        MtxCase {
            name: "mtx-malformed-header",
            expect_valid: false,
            text: "%%NotMatrixMarket graph something\n2 2 1\n1 2\n",
        },
        MtxCase {
            name: "mtx-dense-header",
            expect_valid: false,
            text: "%%MatrixMarket matrix array real general\n2 2\n1.0\n",
        },
        MtxCase {
            name: "mtx-entries-before-size-line",
            expect_valid: false,
            text: "%%MatrixMarket matrix coordinate pattern general\n1 2\n2 1\n",
        },
        MtxCase {
            name: "mtx-missing-size-line",
            expect_valid: false,
            text: "%%MatrixMarket matrix coordinate pattern general\n% nothing else\n",
        },
        MtxCase {
            name: "mtx-empty-file",
            expect_valid: false,
            text: "",
        },
    ]
}

/// One adversarial partition spec: proposed row splits over a fixed CSR
/// offsets array. Malformed specs (overlaps, ownership gaps, truncated or
/// excess coverage) must come back as typed
/// [`gnnone_sim::ValidationError`]s from
/// [`crate::partition::RowPartition::try_from_row_splits`] — never panics,
/// and never a partition that could drop or double-merge shard output.
#[derive(Debug, Clone)]
pub struct PartitionCase {
    /// Stable case name, printed in fuzz findings.
    pub name: &'static str,
    /// `true` when the split must validate; `false` when it must be
    /// rejected.
    pub expect_valid: bool,
    /// CSR offsets of the graph being partitioned.
    pub offsets: Vec<u32>,
    /// Proposed `(row_start, row_end)` ranges, one per shard.
    pub splits: Vec<(usize, usize)>,
}

/// Malformed (and control) partition specs for the sharding path. The
/// offsets describe a 6-row graph with row degrees `[2, 0, 3, 1, 0, 2]`.
pub fn partition_corpus() -> Vec<PartitionCase> {
    let offsets = vec![0u32, 2, 2, 5, 6, 6, 8];
    vec![
        PartitionCase {
            name: "partition-control-even",
            expect_valid: true,
            offsets: offsets.clone(),
            splits: vec![(0, 2), (2, 4), (4, 6)],
        },
        PartitionCase {
            name: "partition-control-empty-shards",
            expect_valid: true,
            offsets: offsets.clone(),
            splits: vec![(0, 1), (1, 1), (1, 1), (1, 6)],
        },
        PartitionCase {
            name: "partition-overlapping-rows",
            expect_valid: false,
            offsets: offsets.clone(),
            splits: vec![(0, 3), (2, 6)],
        },
        PartitionCase {
            name: "partition-ownership-gap",
            expect_valid: false,
            offsets: offsets.clone(),
            splits: vec![(0, 2), (3, 6)],
        },
        PartitionCase {
            name: "partition-truncated-coverage",
            expect_valid: false,
            offsets: offsets.clone(),
            splits: vec![(0, 2), (2, 5)],
        },
        PartitionCase {
            name: "partition-beyond-last-row",
            expect_valid: false,
            offsets: offsets.clone(),
            splits: vec![(0, 2), (2, 7)],
        },
        PartitionCase {
            name: "partition-inverted-range",
            expect_valid: false,
            offsets: offsets.clone(),
            splits: vec![(0, 4), (4, 2), (2, 6)],
        },
        PartitionCase {
            name: "partition-no-shards",
            expect_valid: false,
            offsets,
            splits: vec![],
        },
        PartitionCase {
            name: "partition-nonzero-first-start",
            expect_valid: false,
            offsets: vec![0, 1, 2],
            splits: vec![(1, 2)],
        },
    ]
}

/// Well-formed random CSR parts: `n x n`, about `avg_degree` nonzeros per
/// row, strictly increasing columns.
fn random_csr(rng: &mut ChaCha8Rng, n: usize, avg_degree: usize) -> (Vec<u32>, Vec<VertexId>) {
    let mut offsets = Vec::with_capacity(n + 1);
    offsets.push(0u32);
    let mut cols: Vec<VertexId> = Vec::new();
    for _ in 0..n {
        let deg = rng.gen_range(0..=(2 * avg_degree).min(n));
        let mut row: Vec<VertexId> = (0..n as VertexId).collect();
        // Partial Fisher–Yates: first `deg` entries become a random sample.
        for k in 0..deg {
            let j = rng.gen_range(k..n);
            row.swap(k, j);
        }
        let mut picked: Vec<VertexId> = row[..deg].to_vec();
        picked.sort_unstable();
        cols.extend_from_slice(&picked);
        offsets.push(cols.len() as u32);
    }
    (offsets, cols)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_is_deterministic_in_seed() {
        let a = corpus(0xC0FFEE);
        let b = corpus(0xC0FFEE);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.name, y.name);
            // Bitwise feature comparison: the nan-features case would fail
            // a float compare (NaN != NaN) despite identical payloads.
            let xb: Vec<u32> = x.features.iter().map(|v| v.to_bits()).collect();
            let yb: Vec<u32> = y.features.iter().map(|v| v.to_bits()).collect();
            assert_eq!(xb, yb, "case `{}` differs between runs", x.name);
        }
    }

    #[test]
    fn corpus_covers_both_expectations() {
        let c = corpus(1);
        assert!(c.iter().filter(|k| k.expect_valid).count() >= 5);
        assert!(c.iter().filter(|k| !k.expect_valid).count() >= 8);
        let mut names: Vec<_> = c.iter().map(|k| k.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), c.len(), "case names must be unique");
    }

    #[test]
    fn mtx_corpus_parses_or_rejects_as_expected() {
        for case in mtx_corpus() {
            let got = crate::io::read_mtx(std::io::Cursor::new(case.text));
            match got {
                Ok(_) => assert!(case.expect_valid, "malformed `{}` accepted", case.name),
                Err(e) => assert!(
                    !case.expect_valid,
                    "valid mtx case `{}` rejected: {e}",
                    case.name
                ),
            }
        }
    }

    #[test]
    fn every_case_resolves_or_rejects_as_expected() {
        for case in corpus(42) {
            match case.resolve() {
                Ok(g) => {
                    assert!(case.expect_valid, "malformed case `{}` accepted", case.name);
                    assert_eq!(g.features.len(), g.csr.num_rows() * g.f);
                    assert_eq!(g.coo.nnz(), g.csr.nnz());
                }
                Err(e) => {
                    assert!(
                        !case.expect_valid,
                        "valid case `{}` rejected: {e}",
                        case.name
                    );
                }
            }
        }
    }
}
