//! CPU reference kernels — the correctness oracle.
//!
//! Every simulated kernel in `gnnone-kernels` is checked against these
//! straightforward implementations. Dense tensors are row-major `Vec<f32>`
//! slices; the semantics match the paper's §2 definitions:
//!
//! * **SpMM**: `Y ← A·X` where `A` carries one edge feature per NZE —
//!   `y[r][k] = Σ_{(r,c) ∈ A} w[(r,c)] · x[c][k]`;
//! * **SDDMM**: `W ← A ⊙ (X·Yᵀ)` — `w[(r,c)] = Σ_k x[r][k] · y[c][k]`;
//! * **SpMV**: SpMM with feature length 1.
//!
//! Both sequential and rayon-parallel variants are provided; the parallel
//! ones partition by output row / NZE so they are race-free by construction.

use crate::formats::{Coo, Csr};
use rayon::prelude::*;

/// Sequential reference SpMM over CSR: `y = A · x`, `x` is `num_cols × f`,
/// `edge_vals[e]` is the edge feature of NZE `e` (pass all-ones for an
/// unweighted adjacency).
pub fn spmm_csr(csr: &Csr, edge_vals: &[f32], x: &[f32], f: usize) -> Vec<f32> {
    assert_eq!(edge_vals.len(), csr.nnz());
    assert_eq!(x.len(), csr.num_cols() * f);
    let mut y = vec![0.0f32; csr.num_rows() * f];
    for r in 0..csr.num_rows() {
        let range = csr.row_range(r);
        let out = &mut y[r * f..(r + 1) * f];
        for e in range {
            let c = csr.cols()[e] as usize;
            let w = edge_vals[e];
            let xr = &x[c * f..(c + 1) * f];
            for k in 0..f {
                out[k] += w * xr[k];
            }
        }
    }
    y
}

/// Rayon-parallel reference SpMM (partitioned by output row).
pub fn spmm_csr_par(csr: &Csr, edge_vals: &[f32], x: &[f32], f: usize) -> Vec<f32> {
    assert_eq!(edge_vals.len(), csr.nnz());
    assert_eq!(x.len(), csr.num_cols() * f);
    let mut y = vec![0.0f32; csr.num_rows() * f];
    y.par_chunks_mut(f).enumerate().for_each(|(r, out)| {
        for e in csr.row_range(r) {
            let c = csr.cols()[e] as usize;
            let w = edge_vals[e];
            let xr = &x[c * f..(c + 1) * f];
            for k in 0..f {
                out[k] += w * xr[k];
            }
        }
    });
    y
}

/// Sequential reference SDDMM over COO: `w[e] = Σ_k x[row(e)][k] · y[col(e)][k]`.
pub fn sddmm_coo(coo: &Coo, x: &[f32], y: &[f32], f: usize) -> Vec<f32> {
    assert_eq!(x.len(), coo.num_rows() * f);
    assert_eq!(y.len(), coo.num_cols() * f);
    let mut w = vec![0.0f32; coo.nnz()];
    for e in 0..coo.nnz() {
        let r = coo.rows()[e] as usize;
        let c = coo.cols()[e] as usize;
        let mut acc = 0.0f32;
        for k in 0..f {
            acc += x[r * f + k] * y[c * f + k];
        }
        w[e] = acc;
    }
    w
}

/// Rayon-parallel reference SDDMM (partitioned by NZE).
pub fn sddmm_coo_par(coo: &Coo, x: &[f32], y: &[f32], f: usize) -> Vec<f32> {
    assert_eq!(x.len(), coo.num_rows() * f);
    assert_eq!(y.len(), coo.num_cols() * f);
    let rows = coo.rows();
    let cols = coo.cols();
    (0..coo.nnz())
        .into_par_iter()
        .map(|e| {
            let r = rows[e] as usize;
            let c = cols[e] as usize;
            (0..f).map(|k| x[r * f + k] * y[c * f + k]).sum()
        })
        .collect()
}

/// Reference SpMV: `y = A · x` with scalar features.
pub fn spmv_csr(csr: &Csr, edge_vals: &[f32], x: &[f32]) -> Vec<f32> {
    spmm_csr(csr, edge_vals, x, 1)
}

/// Reference u-add-v edge apply: `w[e] = el[row(e)] + er[col(e)]` — the
/// GAT attention-logit pattern (edge score from source and destination
/// scalar projections). The chaos harness cross-checks the edge-apply
/// kernel against this.
pub fn u_add_v_coo(coo: &Coo, el: &[f32], er: &[f32]) -> Vec<f32> {
    assert_eq!(el.len(), coo.num_rows());
    assert_eq!(er.len(), coo.num_cols());
    (0..coo.nnz())
        .map(|e| el[coo.rows()[e] as usize] + er[coo.cols()[e] as usize])
        .collect()
}

/// Maximum relative error between two tensors (for tolerant comparison of
/// float reductions whose association order differs). The denominator is
/// floored at 1e-2 so that near-zero sums — where different association
/// orders legitimately produce ±ε results — are compared absolutely.
pub fn max_rel_error(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "length mismatch");
    a.iter()
        .zip(b)
        .map(|(&x, &y)| {
            let denom = x.abs().max(y.abs()).max(1e-2);
            (x - y).abs() / denom
        })
        .fold(0.0, f32::max)
}

/// Asserts two tensors match within `tol` relative error.
pub fn assert_close(a: &[f32], b: &[f32], tol: f32) {
    let err = max_rel_error(a, b);
    assert!(
        err <= tol,
        "tensors differ: max relative error {err} > {tol}"
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::formats::EdgeList;

    fn fixture() -> (Coo, Csr) {
        // 0→{1,2}, 1→{0,2}, 2→{1}
        let coo = Coo::from_edge_list(&EdgeList::new(
            3,
            vec![(0, 1), (0, 2), (1, 0), (1, 2), (2, 1)],
        ));
        let csr = Csr::from_coo(&coo);
        (coo, csr)
    }

    #[test]
    fn spmm_hand_computed() {
        let (_, csr) = fixture();
        let x = vec![
            1.0, 2.0, // v0
            3.0, 4.0, // v1
            5.0, 6.0, // v2
        ];
        let w = vec![1.0; 5];
        let y = spmm_csr(&csr, &w, &x, 2);
        // y0 = x1 + x2 = (8, 10); y1 = x0 + x2 = (6, 8); y2 = x1 = (3, 4).
        assert_eq!(y, vec![8.0, 10.0, 6.0, 8.0, 3.0, 4.0]);
    }

    #[test]
    fn spmm_weighted() {
        let (_, csr) = fixture();
        let x = vec![1.0, 1.0, 1.0]; // f = 1
        let w = vec![0.5, 0.25, 1.0, 2.0, 3.0];
        let y = spmm_csr(&csr, &w, &x, 1);
        assert_eq!(y, vec![0.75, 3.0, 3.0]);
    }

    #[test]
    fn sddmm_hand_computed() {
        let (coo, _) = fixture();
        let x = vec![1.0, 0.0, 0.0, 1.0, 1.0, 1.0];
        let y = vec![2.0, 3.0, 4.0, 5.0, 6.0, 7.0];
        let w = sddmm_coo(&coo, &x, &y, 2);
        // e0 = (0,1): x0·y1 = 1*4 + 0*5 = 4
        // e1 = (0,2): x0·y2 = 6
        // e2 = (1,0): x1·y0 = 3
        // e3 = (1,2): x1·y2 = 7
        // e4 = (2,1): x2·y1 = 9
        assert_eq!(w, vec![4.0, 6.0, 3.0, 7.0, 9.0]);
    }

    #[test]
    fn parallel_matches_sequential() {
        use crate::gen;
        let el = gen::rmat(8, 2000, gen::GRAPH500_PROBS, 42).symmetrize();
        let coo = Coo::from_edge_list(&el);
        let csr = Csr::from_coo(&coo);
        let f = 7;
        let x: Vec<f32> = (0..coo.num_cols() * f)
            .map(|i| (i % 13) as f32 * 0.5)
            .collect();
        let yv: Vec<f32> = (0..coo.num_rows() * f)
            .map(|i| (i % 7) as f32 - 3.0)
            .collect();
        let w: Vec<f32> = (0..coo.nnz()).map(|e| (e % 5) as f32 * 0.1).collect();
        assert_close(
            &spmm_csr(&csr, &w, &x, f),
            &spmm_csr_par(&csr, &w, &x, f),
            1e-5,
        );
        assert_close(
            &sddmm_coo(&coo, &x, &yv, f),
            &sddmm_coo_par(&coo, &x, &yv, f),
            1e-5,
        );
    }

    #[test]
    fn u_add_v_hand_computed() {
        let (coo, _) = fixture();
        let el = vec![1.0, 2.0, 3.0];
        let er = vec![10.0, 20.0, 30.0];
        let w = u_add_v_coo(&coo, &el, &er);
        // e0 = (0,1): 1+20; e1 = (0,2): 1+30; e2 = (1,0): 2+10;
        // e3 = (1,2): 2+30; e4 = (2,1): 3+20.
        assert_eq!(w, vec![21.0, 31.0, 12.0, 32.0, 23.0]);
    }

    #[test]
    fn spmv_is_f1_spmm() {
        let (_, csr) = fixture();
        let x = vec![1.0, 2.0, 3.0];
        let w = vec![1.0; 5];
        assert_eq!(spmv_csr(&csr, &w, &x), spmm_csr(&csr, &w, &x, 1));
    }

    #[test]
    fn max_rel_error_detects_difference() {
        assert_eq!(max_rel_error(&[1.0, 2.0], &[1.0, 2.0]), 0.0);
        assert!(max_rel_error(&[1.0], &[1.1]) > 0.05);
    }

    #[test]
    #[should_panic(expected = "tensors differ")]
    fn assert_close_panics_on_mismatch() {
        assert_close(&[1.0], &[2.0], 1e-3);
    }
}
