//! Minimal Matrix Market (`.mtx`) import/export.
//!
//! Lets users substitute real SNAP/UFL downloads (the paper's actual
//! datasets) for the synthetic analogues: `coordinate pattern` and
//! `coordinate real` matrices are supported, with the `symmetric` qualifier
//! expanded to both triangles as the paper's undirected treatment requires.

use crate::formats::{Coo, EdgeList, VertexId};
use std::io::{BufRead, Write};

/// Errors from Matrix Market parsing.
#[derive(Debug)]
pub enum MtxError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Structural problem with the file.
    Parse(String),
}

impl std::fmt::Display for MtxError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MtxError::Io(e) => write!(f, "mtx io error: {e}"),
            MtxError::Parse(m) => write!(f, "mtx parse error: {m}"),
        }
    }
}

impl std::error::Error for MtxError {}

impl From<std::io::Error> for MtxError {
    fn from(e: std::io::Error) -> Self {
        MtxError::Io(e)
    }
}

/// Reads a `matrix coordinate {pattern|real|integer} {general|symmetric}`
/// Matrix Market stream into an edge list (values are discarded — sparse
/// kernel topology only). Indices are converted from 1-based to 0-based.
pub fn read_mtx(reader: impl BufRead) -> Result<EdgeList, MtxError> {
    let mut lines = reader.lines();
    let header = lines
        .next()
        .ok_or_else(|| MtxError::Parse("empty file".into()))??;
    let head = header.to_ascii_lowercase();
    if !head.starts_with("%%matrixmarket matrix coordinate") {
        return Err(MtxError::Parse(format!("unsupported header: {header}")));
    }
    let symmetric = head.contains("symmetric");

    let mut dims: Option<(usize, usize, usize)> = None;
    let mut edges: Vec<(VertexId, VertexId)> = Vec::new();
    for line in lines {
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        let mut it = t.split_ascii_whitespace();
        if dims.is_none() {
            let r: usize = parse(it.next(), "rows")?;
            let c: usize = parse(it.next(), "cols")?;
            let nnz: usize = parse(it.next(), "nnz")?;
            dims = Some((r, c, nnz));
            edges.reserve(if symmetric { nnz * 2 } else { nnz });
            continue;
        }
        let r: usize = parse(it.next(), "row index")?;
        let c: usize = parse(it.next(), "col index")?;
        let (dims_r, dims_c, _) = dims.expect("dims parsed before entries");
        if r == 0 || c == 0 || r > dims_r || c > dims_c {
            return Err(MtxError::Parse(format!("index ({r},{c}) out of bounds")));
        }
        edges.push(((r - 1) as VertexId, (c - 1) as VertexId));
        if symmetric && r != c {
            edges.push(((c - 1) as VertexId, (r - 1) as VertexId));
        }
    }
    let (r, c, _) = dims.ok_or_else(|| MtxError::Parse("missing size line".into()))?;
    Ok(EdgeList::new(r.max(c), edges))
}

fn parse<T: std::str::FromStr>(tok: Option<&str>, what: &str) -> Result<T, MtxError> {
    tok.ok_or_else(|| MtxError::Parse(format!("missing {what}")))?
        .parse()
        .map_err(|_| MtxError::Parse(format!("bad {what}")))
}

/// Writes a COO as `matrix coordinate pattern general`.
pub fn write_mtx(coo: &Coo, mut writer: impl Write) -> std::io::Result<()> {
    writeln!(writer, "%%MatrixMarket matrix coordinate pattern general")?;
    writeln!(
        writer,
        "{} {} {}",
        coo.num_rows(),
        coo.num_cols(),
        coo.nnz()
    )?;
    for e in 0..coo.nnz() {
        writeln!(writer, "{} {}", coo.rows()[e] + 1, coo.cols()[e] + 1)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn roundtrip() {
        let coo = Coo::from_edge_list(&EdgeList::new(3, vec![(0, 1), (1, 2), (2, 0)]));
        let mut buf = Vec::new();
        write_mtx(&coo, &mut buf).unwrap();
        let back = read_mtx(Cursor::new(buf)).unwrap();
        assert_eq!(Coo::from_edge_list(&back), coo);
    }

    #[test]
    fn symmetric_is_expanded() {
        let text = "%%MatrixMarket matrix coordinate pattern symmetric\n\
                    3 3 2\n1 2\n2 3\n";
        let el = read_mtx(Cursor::new(text)).unwrap();
        assert_eq!(el.num_edges(), 4);
    }

    #[test]
    fn comments_and_blanks_skipped() {
        let text = "%%MatrixMarket matrix coordinate real general\n\
                    % a comment\n\n2 2 1\n1 1 3.5\n";
        let el = read_mtx(Cursor::new(text)).unwrap();
        assert_eq!(el.num_edges(), 1);
        assert_eq!(el.edges[0], (0, 0));
    }

    #[test]
    fn rejects_dense_format() {
        let text = "%%MatrixMarket matrix array real general\n2 2\n";
        assert!(read_mtx(Cursor::new(text)).is_err());
    }

    #[test]
    fn rejects_out_of_bounds() {
        let text = "%%MatrixMarket matrix coordinate pattern general\n2 2 1\n3 1\n";
        assert!(read_mtx(Cursor::new(text)).is_err());
    }

    #[test]
    fn one_based_conversion() {
        let text = "%%MatrixMarket matrix coordinate pattern general\n2 2 1\n2 1\n";
        let el = read_mtx(Cursor::new(text)).unwrap();
        assert_eq!(el.edges[0], (1, 0));
    }
}
