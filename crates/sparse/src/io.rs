//! Minimal Matrix Market (`.mtx`) import/export.
//!
//! Lets users substitute real SNAP/UFL downloads (the paper's actual
//! datasets) for the synthetic analogues: `coordinate pattern` and
//! `coordinate real` matrices are supported, with the `symmetric` qualifier
//! expanded to both triangles as the paper's undirected treatment requires.

use crate::formats::{Coo, EdgeList, VertexId};
use gnnone_sim::GnnOneError;
use std::io::{BufRead, Write};

/// Errors from Matrix Market parsing. Parse failures carry the 1-based line
/// number and the offending field so a bad download is diagnosable without
/// opening the file.
#[derive(Debug)]
pub enum MtxError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Structural problem with the file at `line` (1-based; 0 when the
    /// problem is not tied to a single line, e.g. a missing size header).
    Parse {
        /// 1-based line number of the offending record.
        line: u64,
        /// What went wrong, naming the offending field.
        detail: String,
    },
}

impl MtxError {
    fn parse(line: u64, detail: impl Into<String>) -> Self {
        MtxError::Parse {
            line,
            detail: detail.into(),
        }
    }
}

impl std::fmt::Display for MtxError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MtxError::Io(e) => write!(f, "mtx io error: {e}"),
            MtxError::Parse { line, detail } => {
                write!(f, "mtx parse error at line {line}: {detail}")
            }
        }
    }
}

impl std::error::Error for MtxError {}

impl From<std::io::Error> for MtxError {
    fn from(e: std::io::Error) -> Self {
        MtxError::Io(e)
    }
}

/// Attaches a source name (path or stream label) to an [`MtxError`],
/// producing the workspace-wide [`GnnOneError`].
pub fn with_source(err: MtxError, source: &str) -> GnnOneError {
    match err {
        MtxError::Io(e) => GnnOneError::Io {
            path: source.to_string(),
            detail: e.to_string(),
        },
        MtxError::Parse { line, detail } => GnnOneError::Parse {
            source: source.to_string(),
            line,
            detail,
        },
    }
}

/// Reads a `matrix coordinate {pattern|real|integer} {general|symmetric}`
/// Matrix Market stream into an edge list (values are discarded — sparse
/// kernel topology only). Indices are converted from 1-based to 0-based.
pub fn read_mtx(reader: impl BufRead) -> Result<EdgeList, MtxError> {
    let mut lineno: u64 = 0;
    let mut lines = reader.lines();
    let header = lines
        .next()
        .ok_or_else(|| MtxError::parse(0, "empty file"))??;
    lineno += 1;
    let head = header.to_ascii_lowercase();
    if !head.starts_with("%%matrixmarket matrix coordinate") {
        return Err(MtxError::parse(
            lineno,
            format!("unsupported header: {header}"),
        ));
    }
    let symmetric = head.contains("symmetric");

    let mut dims: Option<(usize, usize, usize)> = None;
    let mut edges: Vec<(VertexId, VertexId)> = Vec::new();
    for line in lines {
        let line = line?;
        lineno += 1;
        let t = line.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        let mut it = t.split_ascii_whitespace();
        let (dims_r, dims_c) = match dims {
            None => {
                // The size line must carry exactly three integer fields
                // (`rows cols nnz`). An entry record here — a pattern
                // entry's two fields, or a real entry's non-integer value
                // field — means the size line is missing, which must be a
                // diagnosable parse error, never a panic downstream.
                let fields: Vec<&str> = t.split_ascii_whitespace().collect();
                if fields.len() != 3 {
                    return Err(MtxError::parse(
                        lineno,
                        format!(
                            "expected size line `rows cols nnz` but found {} field(s) \
                             (`{t}`) — entry records before the size line?",
                            fields.len()
                        ),
                    ));
                }
                let r: usize = parse(it.next(), lineno, "rows")?;
                let c: usize = parse(it.next(), lineno, "cols")?;
                let nnz: usize = parse(it.next(), lineno, "nnz")?;
                dims = Some((r, c, nnz));
                edges.reserve(if symmetric { nnz * 2 } else { nnz });
                continue;
            }
            Some((r, c, _)) => (r, c),
        };
        let r: usize = parse(it.next(), lineno, "row index")?;
        let c: usize = parse(it.next(), lineno, "col index")?;
        if r == 0 || c == 0 || r > dims_r || c > dims_c {
            return Err(MtxError::parse(
                lineno,
                format!("index ({r},{c}) out of bounds for {dims_r}x{dims_c}"),
            ));
        }
        edges.push(((r - 1) as VertexId, (c - 1) as VertexId));
        if symmetric && r != c {
            edges.push(((c - 1) as VertexId, (r - 1) as VertexId));
        }
    }
    let (r, c, declared_nnz) = dims.ok_or_else(|| MtxError::parse(lineno, "missing size line"))?;
    // Symmetric expansion makes an exact nnz check ambiguous (diagonal
    // entries expand to one edge, off-diagonal to two), so only the
    // non-symmetric case is held to the declared count.
    let parsed = edges.len();
    if !symmetric && parsed != declared_nnz {
        return Err(MtxError::parse(
            lineno,
            format!("size line declared {declared_nnz} entries but file has {parsed}"),
        ));
    }
    EdgeList::try_new(r.max(c), edges)
        .map_err(|e| MtxError::parse(lineno, format!("invalid edge list: {}", e.detail)))
}

/// Reads a Matrix Market file from `path`, attaching the path to any
/// failure as a [`GnnOneError`].
pub fn read_mtx_path(path: impl AsRef<std::path::Path>) -> Result<EdgeList, GnnOneError> {
    let path = path.as_ref();
    let source = path.display().to_string();
    let file = std::fs::File::open(path).map_err(|e| GnnOneError::Io {
        path: source.clone(),
        detail: e.to_string(),
    })?;
    read_mtx(std::io::BufReader::new(file)).map_err(|e| with_source(e, &source))
}

fn parse<T: std::str::FromStr>(tok: Option<&str>, line: u64, what: &str) -> Result<T, MtxError> {
    let tok = tok.ok_or_else(|| MtxError::parse(line, format!("missing {what}")))?;
    tok.parse()
        .map_err(|_| MtxError::parse(line, format!("bad {what}: `{tok}`")))
}

/// Writes a COO as `matrix coordinate pattern general`.
pub fn write_mtx(coo: &Coo, mut writer: impl Write) -> std::io::Result<()> {
    writeln!(writer, "%%MatrixMarket matrix coordinate pattern general")?;
    writeln!(
        writer,
        "{} {} {}",
        coo.num_rows(),
        coo.num_cols(),
        coo.nnz()
    )?;
    for e in 0..coo.nnz() {
        writeln!(writer, "{} {}", coo.rows()[e] + 1, coo.cols()[e] + 1)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn roundtrip() {
        let coo = Coo::from_edge_list(&EdgeList::new(3, vec![(0, 1), (1, 2), (2, 0)]));
        let mut buf = Vec::new();
        write_mtx(&coo, &mut buf).unwrap();
        let back = read_mtx(Cursor::new(buf)).unwrap();
        assert_eq!(Coo::from_edge_list(&back), coo);
    }

    #[test]
    fn symmetric_is_expanded() {
        let text = "%%MatrixMarket matrix coordinate pattern symmetric\n\
                    3 3 2\n1 2\n2 3\n";
        let el = read_mtx(Cursor::new(text)).unwrap();
        assert_eq!(el.num_edges(), 4);
    }

    #[test]
    fn comments_and_blanks_skipped() {
        let text = "%%MatrixMarket matrix coordinate real general\n\
                    % a comment\n\n2 2 1\n1 1 3.5\n";
        let el = read_mtx(Cursor::new(text)).unwrap();
        assert_eq!(el.num_edges(), 1);
        assert_eq!(el.edges[0], (0, 0));
    }

    #[test]
    fn rejects_dense_format() {
        let text = "%%MatrixMarket matrix array real general\n2 2\n";
        assert!(read_mtx(Cursor::new(text)).is_err());
    }

    #[test]
    fn rejects_out_of_bounds() {
        let text = "%%MatrixMarket matrix coordinate pattern general\n2 2 1\n3 1\n";
        assert!(read_mtx(Cursor::new(text)).is_err());
    }

    #[test]
    fn one_based_conversion() {
        let text = "%%MatrixMarket matrix coordinate pattern general\n2 2 1\n2 1\n";
        let el = read_mtx(Cursor::new(text)).unwrap();
        assert_eq!(el.edges[0], (1, 0));
    }

    #[test]
    fn parse_errors_carry_line_and_field() {
        // Bad col index on the 4th line (header, size, good entry, bad entry).
        let text = "%%MatrixMarket matrix coordinate pattern general\n3 3 2\n1 2\n2 x\n";
        match read_mtx(Cursor::new(text)).unwrap_err() {
            MtxError::Parse { line, detail } => {
                assert_eq!(line, 4);
                assert!(detail.contains("col index"), "{detail}");
                assert!(detail.contains('x'), "{detail}");
            }
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn truncated_entry_count_rejected() {
        let text = "%%MatrixMarket matrix coordinate pattern general\n3 3 5\n1 2\n2 3\n";
        match read_mtx(Cursor::new(text)).unwrap_err() {
            MtxError::Parse { detail, .. } => {
                assert!(detail.contains("declared 5"), "{detail}");
            }
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn entry_before_size_line_is_a_parse_error() {
        // A pattern entry (two fields) where the size line should be.
        let text = "%%MatrixMarket matrix coordinate pattern general\n1 2\n2 3\n";
        match read_mtx(Cursor::new(text)).unwrap_err() {
            MtxError::Parse { line, detail } => {
                assert_eq!(line, 2);
                assert!(detail.contains("size line"), "{detail}");
            }
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn real_entry_before_size_line_is_a_parse_error() {
        // A real entry (three fields, non-integer value) where the size
        // line should be: caught as a bad nnz field, not misread as dims.
        let text = "%%MatrixMarket matrix coordinate real general\n1 2 3.5\n";
        match read_mtx(Cursor::new(text)).unwrap_err() {
            MtxError::Parse { line, detail } => {
                assert_eq!(line, 2);
                assert!(detail.contains("nnz"), "{detail}");
            }
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn missing_size_line_is_a_parse_error() {
        let text = "%%MatrixMarket matrix coordinate pattern general\n% only comments\n";
        match read_mtx(Cursor::new(text)).unwrap_err() {
            MtxError::Parse { detail, .. } => {
                assert!(detail.contains("missing size line"), "{detail}");
            }
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn path_reader_attaches_source_context() {
        let err = read_mtx_path("/nonexistent/graph.mtx").unwrap_err();
        match &err {
            gnnone_sim::GnnOneError::Io { path, .. } => {
                assert!(path.contains("graph.mtx"), "{path}");
            }
            other => panic!("expected io error, got {other:?}"),
        }
        assert_eq!(err.kind(), "io");
    }

    #[test]
    fn with_source_maps_parse_line() {
        let e = with_source(MtxError::parse(7, "bad nnz: `q`"), "g.mtx");
        match e {
            gnnone_sim::GnnOneError::Parse {
                source,
                line,
                detail,
            } => {
                assert_eq!(source, "g.mtx");
                assert_eq!(line, 7);
                assert!(detail.contains("nnz"));
            }
            other => panic!("expected parse, got {other:?}"),
        }
    }
}
