//! Structural validation for sparse formats and feature tensors.
//!
//! Every loader and format conversion in the workspace funnels through these
//! checks so malformed graphs surface as typed [`ValidationError`]s instead
//! of panics (or worse, silent out-of-bounds launches on the simulator).
//! The invariants enforced here are exactly the ones the GNNOne kernels
//! assume:
//!
//! * CSR offsets are monotone non-decreasing, start at 0, and the final
//!   offset equals `nnz`.
//! * Column IDs are in `[0, num_cols)` and strictly increasing within a row
//!   (strictness rejects duplicate edges, which would double-count in SpMM).
//! * COO is stored in strict CSR order, matching the cuSPARSE convention the
//!   paper standardizes on.
//! * Feature matrices are finite (no NaN/Inf poisoning reductions) and have
//!   a usable width `0 < f <= MAX_FEATURE_DIM`.

use crate::formats::{Coo, Csr, CsrRows, EdgeList, VertexId};
use gnnone_sim::ValidationError;

/// Upper bound on the feature dimension `f` accepted by validation. Wide
/// enough for every configuration in the paper (max 512) with head-room, but
/// small enough to catch corrupted widths before they drive an allocation.
pub const MAX_FEATURE_DIM: usize = 65_536;

/// Validates raw edge-list parts: every endpoint in `[0, num_vertices)`.
pub fn edge_list_parts(
    num_vertices: usize,
    edges: &[(VertexId, VertexId)],
) -> Result<(), ValidationError> {
    for (i, &(u, v)) in edges.iter().enumerate() {
        if (u as usize) >= num_vertices || (v as usize) >= num_vertices {
            return Err(ValidationError::new(
                "EdgeList",
                "edges",
                Some(i as u64),
                format!("edge ({u},{v}) out of bounds for {num_vertices} vertices"),
            ));
        }
    }
    Ok(())
}

/// Validates raw COO parts: aligned lengths, in-range indices, and strict
/// CSR ordering (row-major, strictly increasing columns within a row — so
/// duplicate edges are rejected too).
pub fn coo_parts(
    num_rows: usize,
    num_cols: usize,
    rows: &[VertexId],
    cols: &[VertexId],
) -> Result<(), ValidationError> {
    if rows.len() != cols.len() {
        return Err(ValidationError::new(
            "Coo",
            "cols",
            None,
            format!(
                "row/col arrays misaligned: {} rows vs {} cols",
                rows.len(),
                cols.len()
            ),
        ));
    }
    for i in 0..rows.len() {
        let (r, c) = (rows[i], cols[i]);
        if (r as usize) >= num_rows {
            return Err(ValidationError::new(
                "Coo",
                "rows",
                Some(i as u64),
                format!("row {r} out of bounds for {num_rows} rows"),
            ));
        }
        if (c as usize) >= num_cols {
            return Err(ValidationError::new(
                "Coo",
                "cols",
                Some(i as u64),
                format!("col {c} out of bounds for {num_cols} columns"),
            ));
        }
        if i > 0 {
            let (pr, pc) = (rows[i - 1], cols[i - 1]);
            if pr > r || (pr == r && pc >= c) {
                return Err(ValidationError::new(
                    "Coo",
                    "rows",
                    Some(i as u64),
                    format!(
                        "edges not strictly CSR-ordered at position {i}: \
                         ({pr},{pc}) then ({r},{c})"
                    ),
                ));
            }
        }
    }
    Ok(())
}

/// Validates raw CSR parts: offset-array shape, monotone offsets consistent
/// with `nnz`, in-range column IDs strictly increasing within each row.
pub fn csr_parts(
    num_rows: usize,
    num_cols: usize,
    offsets: &[u32],
    cols: &[VertexId],
) -> Result<(), ValidationError> {
    if offsets.len() != num_rows + 1 {
        return Err(ValidationError::new(
            "Csr",
            "offsets",
            None,
            format!(
                "offsets length {} does not match num_rows + 1 = {}",
                offsets.len(),
                num_rows + 1
            ),
        ));
    }
    if offsets[0] != 0 {
        return Err(ValidationError::new(
            "Csr",
            "offsets",
            Some(0),
            format!("first offset is {}, expected 0", offsets[0]),
        ));
    }
    for i in 1..offsets.len() {
        if offsets[i] < offsets[i - 1] {
            return Err(ValidationError::new(
                "Csr",
                "offsets",
                Some(i as u64),
                format!(
                    "offsets not monotone: offsets[{}] = {} < offsets[{}] = {}",
                    i,
                    offsets[i],
                    i - 1,
                    offsets[i - 1]
                ),
            ));
        }
    }
    let last = offsets[num_rows] as usize;
    if last != cols.len() {
        return Err(ValidationError::new(
            "Csr",
            "offsets",
            Some(num_rows as u64),
            format!(
                "final offset {} does not match nnz = {} (truncated or padded cols)",
                last,
                cols.len()
            ),
        ));
    }
    for r in 0..num_rows {
        let (lo, hi) = (offsets[r] as usize, offsets[r + 1] as usize);
        for k in lo..hi {
            let c = cols[k];
            if (c as usize) >= num_cols {
                return Err(ValidationError::new(
                    "Csr",
                    "cols",
                    Some(k as u64),
                    format!("col {c} out of bounds for {num_cols} columns in row {r}"),
                ));
            }
            if k > lo && cols[k - 1] >= c {
                return Err(ValidationError::new(
                    "Csr",
                    "cols",
                    Some(k as u64),
                    format!(
                        "columns of row {r} not strictly increasing at nnz {k}: \
                         {} then {c}",
                        cols[k - 1]
                    ),
                ));
            }
        }
    }
    Ok(())
}

/// Validates a built [`EdgeList`] (re-checks the construction invariants —
/// cheap insurance after deserialization or external construction).
pub fn edge_list(el: &EdgeList) -> Result<(), ValidationError> {
    edge_list_parts(el.num_vertices, &el.edges)
}

/// Validates a built [`Coo`].
pub fn coo(m: &Coo) -> Result<(), ValidationError> {
    coo_parts(m.num_rows(), m.num_cols(), m.rows(), m.cols())
}

/// Validates a built [`Csr`].
pub fn csr(m: &Csr) -> Result<(), ValidationError> {
    csr_parts(m.num_rows(), m.num_cols(), m.offsets(), m.cols())
}

/// Validates a built [`CsrRows`].
pub fn csr_rows(m: &CsrRows) -> Result<(), ValidationError> {
    for r in 0..m.num_rows() {
        let adj = m.row(r);
        for (k, &c) in adj.iter().enumerate() {
            if (c as usize) >= m.num_cols() {
                return Err(ValidationError::new(
                    "CsrRows",
                    "rows",
                    Some(r as u64),
                    format!("col {c} out of bounds for {} columns", m.num_cols()),
                ));
            }
            if k > 0 && adj[k - 1] >= c {
                return Err(ValidationError::new(
                    "CsrRows",
                    "rows",
                    Some(r as u64),
                    format!("columns of row {r} not strictly increasing at slot {k}"),
                ));
            }
        }
    }
    Ok(())
}

/// Validates a feature dimension: `0 < f <= MAX_FEATURE_DIM`.
pub fn feature_dim(f: usize) -> Result<(), ValidationError> {
    if f == 0 {
        return Err(ValidationError::new(
            "Features",
            "f",
            None,
            "feature dimension f = 0: kernels require at least one feature".to_string(),
        ));
    }
    if f > MAX_FEATURE_DIM {
        return Err(ValidationError::new(
            "Features",
            "f",
            None,
            format!("feature dimension f = {f} exceeds MAX_FEATURE_DIM = {MAX_FEATURE_DIM}"),
        ));
    }
    Ok(())
}

/// Validates a dense feature matrix of logical shape `rows × f`: dimension
/// bounds, exact length, and finiteness of every entry (NaN or Inf would
/// silently poison every downstream reduction).
pub fn features(data: &[f32], rows: usize, f: usize) -> Result<(), ValidationError> {
    feature_dim(f)?;
    let expect = rows.checked_mul(f).ok_or_else(|| {
        ValidationError::new(
            "Features",
            "shape",
            None,
            format!("feature shape {rows} x {f} overflows usize"),
        )
    })?;
    if data.len() != expect {
        return Err(ValidationError::new(
            "Features",
            "data",
            None,
            format!(
                "feature buffer length {} does not match {rows} x {f} = {expect}",
                data.len()
            ),
        ));
    }
    for (i, &x) in data.iter().enumerate() {
        if !x.is_finite() {
            return Err(ValidationError::new(
                "Features",
                "data",
                Some(i as u64),
                format!("non-finite feature value {x} at flat index {i}"),
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coo_rejects_duplicate_edges() {
        // Same (row, col) twice — strict ordering must refuse it.
        let err = coo_parts(2, 2, &[0, 0], &[1, 1]).unwrap_err();
        assert!(err.detail.contains("strictly CSR-ordered"), "{err}");
        assert_eq!(err.index, Some(1));
    }

    #[test]
    fn coo_rejects_misaligned_arrays() {
        let err = coo_parts(2, 2, &[0, 1], &[1]).unwrap_err();
        assert!(err.detail.contains("misaligned"), "{err}");
    }

    #[test]
    fn csr_rejects_truncated_offsets() {
        // offsets claims 3 nnz but cols only has 2.
        let err = csr_parts(2, 4, &[0, 1, 3], [1, 2][..].as_ref()).unwrap_err();
        assert!(err.detail.contains("truncated"), "{err}");
    }

    #[test]
    fn csr_rejects_non_monotone_offsets() {
        let err = csr_parts(2, 4, &[0, 3, 1], &[1, 2, 3]).unwrap_err();
        assert!(err.detail.contains("monotone"), "{err}");
        assert_eq!(err.field, "offsets");
    }

    #[test]
    fn csr_rejects_oob_columns() {
        let err = csr_parts(1, 2, &[0, 1], &[5]).unwrap_err();
        assert!(err.detail.contains("out of bounds"), "{err}");
    }

    #[test]
    fn csr_accepts_empty_rows() {
        csr_parts(3, 3, &[0, 0, 2, 2], &[0, 2]).unwrap();
    }

    #[test]
    fn features_rejects_nan_inf_and_bad_shape() {
        assert!(features(&[0.0, f32::NAN], 1, 2).is_err());
        assert!(features(&[0.0, f32::INFINITY], 1, 2).is_err());
        assert!(features(&[0.0], 1, 2).is_err());
        assert!(feature_dim(0).is_err());
        assert!(feature_dim(MAX_FEATURE_DIM + 1).is_err());
        features(&[1.0, -2.0], 1, 2).unwrap();
    }
}
