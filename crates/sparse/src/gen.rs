//! Deterministic synthetic graph generators.
//!
//! These stand in for the paper's downloaded datasets (Table 1): each
//! generator reproduces the *degree-distribution character* that drives
//! sparse-kernel behaviour — power-law skew for social/web graphs
//! (workload imbalance), near-uniform low degree for road networks, dense
//! hubs for Reddit/hollywood. All generators take an explicit seed and use
//! `ChaCha8Rng`, so every experiment is reproducible bit-for-bit.
//!
//! The [`adversarial`] submodule generates the hostile corpus for the fuzz
//! sweep: valid-but-pathological topologies plus malformed inputs that must
//! be rejected with typed errors.

pub mod adversarial;

use crate::formats::{EdgeList, VertexId};
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;

/// RMAT / Kronecker generator (Graph500 style) — the paper's Kron-21 (G10)
/// and a good analogue for heavy-tailed social/web graphs.
///
/// Generates `num_edges` directed edges over `2^scale` vertices with
/// partition probabilities `(a, b, c, d)`, `a + b + c + d = 1`.
pub fn rmat(scale: u32, num_edges: usize, probs: (f64, f64, f64, f64), seed: u64) -> EdgeList {
    let (a, b, c, d) = probs;
    assert!(
        (a + b + c + d - 1.0).abs() < 1e-9,
        "RMAT probs must sum to 1"
    );
    let n = 1usize << scale;
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut edges = Vec::with_capacity(num_edges);
    for _ in 0..num_edges {
        let (mut u, mut v) = (0usize, 0usize);
        for _ in 0..scale {
            let r: f64 = rng.gen();
            let (du, dv) = if r < a {
                (0, 0)
            } else if r < a + b {
                (0, 1)
            } else if r < a + b + c {
                (1, 0)
            } else {
                (1, 1)
            };
            u = (u << 1) | du;
            v = (v << 1) | dv;
        }
        edges.push((u as VertexId, v as VertexId));
    }
    EdgeList::new(n, edges)
}

/// Graph500 default RMAT parameters.
pub const GRAPH500_PROBS: (f64, f64, f64, f64) = (0.57, 0.19, 0.19, 0.05);

/// Erdős–Rényi G(n, m): `num_edges` uniformly random directed edges.
pub fn erdos_renyi(num_vertices: usize, num_edges: usize, seed: u64) -> EdgeList {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let edges = (0..num_edges)
        .map(|_| {
            (
                rng.gen_range(0..num_vertices) as VertexId,
                rng.gen_range(0..num_vertices) as VertexId,
            )
        })
        .collect();
    EdgeList::new(num_vertices, edges)
}

/// Barabási–Albert preferential attachment: each new vertex attaches to
/// `m` existing vertices with probability proportional to degree. Produces
/// the power-law tails of citation / social graphs.
pub fn preferential_attachment(num_vertices: usize, m: usize, seed: u64) -> EdgeList {
    assert!(m >= 1 && num_vertices > m);
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    // `targets` holds one entry per edge endpoint: sampling uniformly from
    // it is sampling proportional to degree.
    let mut targets: Vec<VertexId> = (0..=m as VertexId).collect();
    let mut edges = Vec::with_capacity(num_vertices * m);
    // Seed clique over the first m+1 vertices.
    for u in 0..=m as VertexId {
        for v in 0..u {
            edges.push((u, v));
        }
    }
    for u in (m + 1)..num_vertices {
        let mut chosen = Vec::with_capacity(m);
        while chosen.len() < m {
            let t = targets[rng.gen_range(0..targets.len())];
            if t != u as VertexId && !chosen.contains(&t) {
                chosen.push(t);
            }
        }
        for &v in &chosen {
            edges.push((u as VertexId, v));
            targets.push(v);
            targets.push(u as VertexId);
        }
    }
    EdgeList::new(num_vertices, edges)
}

/// 2-D grid with a sprinkle of shortcut edges — the roadNet-CA analogue:
/// near-uniform degree ≈ 4, enormous diameter, no hubs.
pub fn grid2d(width: usize, height: usize, shortcuts: usize, seed: u64) -> EdgeList {
    let n = width * height;
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let idx = |x: usize, y: usize| (y * width + x) as VertexId;
    let mut edges = Vec::with_capacity(2 * n + shortcuts);
    for y in 0..height {
        for x in 0..width {
            if x + 1 < width {
                edges.push((idx(x, y), idx(x + 1, y)));
            }
            if y + 1 < height {
                edges.push((idx(x, y), idx(x, y + 1)));
            }
        }
    }
    for _ in 0..shortcuts {
        edges.push((
            rng.gen_range(0..n) as VertexId,
            rng.gen_range(0..n) as VertexId,
        ));
    }
    EdgeList::new(n, edges)
}

/// A labelled planted-partition graph plus class-informative features — the
/// Cora/Citeseer/PubMed/ogbn-products analogue for the accuracy experiment
/// (paper Fig. 5). Intra-class edges are `homophily`-times more likely than
/// inter-class ones, and features are noisy class centroids, so a GCN/GAT
/// can genuinely learn the labels.
#[derive(Debug, Clone)]
pub struct LabeledGraph {
    /// The (directed) edges; symmetrize before building formats.
    pub edges: EdgeList,
    /// Class label per vertex, in `0..num_classes`.
    pub labels: Vec<u32>,
    /// Number of classes.
    pub num_classes: usize,
    /// Row-major `num_vertices × feature_dim` features.
    pub features: Vec<f32>,
    /// Feature dimensionality.
    pub feature_dim: usize,
}

/// Generates a planted-partition labelled graph.
///
/// * `avg_degree` — expected out-degree per vertex;
/// * `homophily` — fraction of edges that stay within the class (0.5 =
///   uninformative, 0.9 = strongly clustered);
/// * `noise` — standard deviation of the feature noise around the class
///   centroid.
pub fn planted_partition(
    num_vertices: usize,
    num_classes: usize,
    avg_degree: f64,
    homophily: f64,
    feature_dim: usize,
    noise: f64,
    seed: u64,
) -> LabeledGraph {
    assert!(num_classes >= 2);
    assert!((0.0..=1.0).contains(&homophily));
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let labels: Vec<u32> = (0..num_vertices)
        .map(|_| rng.gen_range(0..num_classes as u32))
        .collect();
    // Bucket vertices by class for intra-class sampling.
    let mut by_class: Vec<Vec<VertexId>> = vec![Vec::new(); num_classes];
    for (v, &c) in labels.iter().enumerate() {
        by_class[c as usize].push(v as VertexId);
    }
    let num_edges = (num_vertices as f64 * avg_degree) as usize;
    let mut edges = Vec::with_capacity(num_edges);
    for _ in 0..num_edges {
        let u = rng.gen_range(0..num_vertices);
        let v = if rng.gen_bool(homophily) {
            let peers = &by_class[labels[u] as usize];
            peers[rng.gen_range(0..peers.len())]
        } else {
            rng.gen_range(0..num_vertices) as VertexId
        };
        edges.push((u as VertexId, v));
    }
    // Class centroids: random ±1 patterns; features = centroid + noise.
    let centroids: Vec<f32> = (0..num_classes * feature_dim)
        .map(|_| if rng.gen_bool(0.5) { 1.0 } else { -1.0 })
        .collect();
    let mut features = Vec::with_capacity(num_vertices * feature_dim);
    for &label in &labels {
        let base = label as usize * feature_dim;
        for k in 0..feature_dim {
            let eps: f64 = rng.sample::<f64, _>(rand::distributions::Open01) - 0.5;
            features.push(centroids[base + k] + (2.0 * eps * noise) as f32);
        }
    }
    LabeledGraph {
        edges: EdgeList::new(num_vertices, edges),
        labels,
        num_classes,
        features,
        feature_dim,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::formats::{Coo, Csr};

    #[test]
    fn rmat_is_deterministic() {
        let a = rmat(8, 1000, GRAPH500_PROBS, 7);
        let b = rmat(8, 1000, GRAPH500_PROBS, 7);
        assert_eq!(a, b);
        let c = rmat(8, 1000, GRAPH500_PROBS, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn rmat_is_skewed() {
        let el = rmat(10, 8 * 1024, GRAPH500_PROBS, 1).symmetrize();
        let csr = Csr::from_coo(&Coo::from_edge_list(&el));
        let avg = csr.nnz() as f64 / csr.num_rows() as f64;
        assert!(
            csr.max_degree() as f64 > 8.0 * avg,
            "max {} vs avg {avg}",
            csr.max_degree()
        );
    }

    #[test]
    fn grid_is_uniform_degree() {
        let el = grid2d(32, 32, 0, 0).symmetrize();
        let csr = Csr::from_coo(&Coo::from_edge_list(&el));
        assert_eq!(csr.max_degree(), 4);
        assert_eq!(csr.num_rows(), 1024);
    }

    #[test]
    fn erdos_renyi_counts() {
        let el = erdos_renyi(100, 500, 3);
        assert_eq!(el.num_edges(), 500);
        assert_eq!(el.num_vertices, 100);
    }

    #[test]
    fn preferential_attachment_has_hubs() {
        let el = preferential_attachment(2000, 4, 5).symmetrize();
        let csr = Csr::from_coo(&Coo::from_edge_list(&el));
        let avg = csr.nnz() as f64 / csr.num_rows() as f64;
        assert!(csr.max_degree() as f64 > 5.0 * avg);
    }

    #[test]
    fn planted_partition_is_homophilous() {
        let g = planted_partition(500, 4, 10.0, 0.9, 16, 0.1, 11);
        let intra = g
            .edges
            .edges
            .iter()
            .filter(|&&(u, v)| g.labels[u as usize] == g.labels[v as usize])
            .count();
        let frac = intra as f64 / g.edges.num_edges() as f64;
        assert!(frac > 0.8, "intra-class fraction {frac}");
        assert_eq!(g.features.len(), 500 * 16);
    }

    #[test]
    fn planted_features_separate_classes() {
        let g = planted_partition(200, 2, 5.0, 0.8, 8, 0.1, 13);
        // Mean feature vectors of the two classes should differ markedly.
        let mut means = vec![vec![0.0f64; 8]; 2];
        let mut counts = [0usize; 2];
        for (v, &c) in g.labels.iter().enumerate() {
            counts[c as usize] += 1;
            for k in 0..8 {
                means[c as usize][k] += g.features[v * 8 + k] as f64;
            }
        }
        let dist: f64 = (0..8)
            .map(|k| {
                let d = means[0][k] / counts[0] as f64 - means[1][k] / counts[1] as f64;
                d * d
            })
            .sum::<f64>()
            .sqrt();
        assert!(dist > 1.0, "class centroid distance {dist}");
    }

    #[test]
    fn generators_are_seed_stable() {
        assert_eq!(erdos_renyi(50, 100, 9), erdos_renyi(50, 100, 9));
        assert_eq!(grid2d(8, 8, 4, 2), grid2d(8, 8, 4, 2));
        let a = planted_partition(100, 3, 4.0, 0.7, 4, 0.2, 21);
        let b = planted_partition(100, 3, 4.0, 0.7, 4, 0.2, 21);
        assert_eq!(a.labels, b.labels);
        assert_eq!(a.features, b.features);
    }
}
