//! Custom storage formats used by the baselines (paper §2, §6).
//!
//! The paper's position is that these formats buy workload balance at the
//! cost of a pre-processing step, extra metadata, and incompatibility with
//! GNN frameworks. They are implemented here so the corresponding baseline
//! kernels are faithful — including their pre-processing cost, which is
//! tracked but (as in §5.4.5) excluded from kernel timings as a one-time
//! cost.

use crate::formats::{Csr, VertexId};
use serde::{Deserialize, Serialize};

/// One neighbor group: up to `group_size` NZEs from a *single* row.
///
/// GNNAdvisor and Huang et al. split every row into groups of ≤ 32 non-zero
/// columns; each group carries explicit metadata (row ID, start, length).
/// Rows whose length is not a multiple of 32 yield a ragged final group —
/// the residual imbalance the paper calls out (§6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct NeighborGroup {
    /// Row this group belongs to.
    pub row: VertexId,
    /// First NZE index (into the CSR `cols` array).
    pub start: u32,
    /// Number of NZEs in the group (1..=group_size).
    pub len: u32,
}

/// Neighbor-group decomposition of a CSR matrix.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct NeighborGroups {
    /// Group size used (32 in GNNAdvisor / Huang et al.).
    pub group_size: u32,
    /// All groups, row-major.
    pub groups: Vec<NeighborGroup>,
}

impl NeighborGroups {
    /// Pre-processing step: split every row of `csr` into groups.
    pub fn build(csr: &Csr, group_size: u32) -> Self {
        assert!(group_size > 0);
        let mut groups = Vec::new();
        for row in 0..csr.num_rows() {
            let range = csr.row_range(row);
            let mut start = range.start as u32;
            let end = range.end as u32;
            while start < end {
                let len = group_size.min(end - start);
                groups.push(NeighborGroup {
                    row: row as VertexId,
                    start,
                    len,
                });
                start += len;
            }
        }
        Self { group_size, groups }
    }

    /// Metadata bytes this format adds on top of CSR (the "less than 4
    /// bytes per NZE" §5.4.5 discusses — row + start + len per group).
    pub fn metadata_bytes(&self) -> u64 {
        self.groups.len() as u64 * 12
    }

    /// Fraction of group slots left idle by ragged final groups — a direct
    /// measure of the residual imbalance.
    pub fn slot_waste(&self) -> f64 {
        if self.groups.is_empty() {
            return 0.0;
        }
        let capacity = self.groups.len() as f64 * self.group_size as f64;
        let used: u64 = self.groups.iter().map(|g| g.len as u64).sum();
        1.0 - used as f64 / capacity
    }
}

/// Sputnik-style row swizzle: row indices sorted by decreasing row length,
/// so the warp scheduler processes long rows first (§6). The extra array of
/// row IDs is the custom metadata.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RowSwizzle {
    /// Row IDs in decreasing-length order.
    pub order: Vec<VertexId>,
}

impl RowSwizzle {
    /// Pre-processing step: sort rows by decreasing length (stable on ties
    /// so the result is deterministic).
    pub fn build(csr: &Csr) -> Self {
        let mut order: Vec<VertexId> = (0..csr.num_rows() as VertexId).collect();
        order.sort_by_key(|&r| std::cmp::Reverse(csr.degree(r as usize)));
        Self { order }
    }

    /// Metadata bytes (4 per row).
    pub fn metadata_bytes(&self) -> u64 {
        self.order.len() as u64 * 4
    }
}

/// One merge-path work item: a contiguous span of the merge of row offsets
/// and NZE indices, as in Merrill & Garland's Merge-SpMV (§4.4, §5.4.5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MergeSpan {
    /// First row touched (inclusive).
    pub row_start: VertexId,
    /// Last row touched (inclusive).
    pub row_end: VertexId,
    /// First NZE index (inclusive).
    pub nze_start: u32,
    /// Last NZE index (exclusive).
    pub nze_end: u32,
}

/// Merge-path decomposition: the total work `num_rows + nnz` is divided into
/// equal spans; each span's start is located by a 2-D binary search on the
/// (row offsets × NZE indices) merge grid.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MergePath {
    /// Spans, one per worker (warp).
    pub spans: Vec<MergeSpan>,
}

impl MergePath {
    /// Splits the merge of `csr`'s offsets and NZEs into `num_spans` equal
    /// diagonal chunks.
    pub fn build(csr: &Csr, num_spans: usize) -> Self {
        assert!(num_spans > 0);
        let num_rows = csr.num_rows();
        let nnz = csr.nnz();
        let total = num_rows + nnz;
        let per_span = total.div_ceil(num_spans);
        let offsets = csr.offsets();

        // merge_point(d) = (row, nze) reached after consuming d merge items.
        let merge_point = |diag: usize| -> (usize, usize) {
            // Find the largest row r such that r + offsets[r] <= diag.
            let (mut lo, mut hi) = (0usize, num_rows);
            while lo < hi {
                let mid = (lo + hi).div_ceil(2);
                if mid + (offsets[mid] as usize) <= diag {
                    lo = mid;
                } else {
                    hi = mid - 1;
                }
            }
            (lo, diag - lo)
        };

        let mut spans = Vec::with_capacity(num_spans);
        for s in 0..num_spans {
            let d0 = (s * per_span).min(total);
            let d1 = ((s + 1) * per_span).min(total);
            if d0 >= d1 {
                break;
            }
            let (r0, e0) = merge_point(d0);
            let (r1, e1) = merge_point(d1);
            spans.push(MergeSpan {
                row_start: r0 as VertexId,
                row_end: r1.min(num_rows.saturating_sub(1)) as VertexId,
                nze_start: e0 as u32,
                nze_end: e1 as u32,
            });
        }
        Self { spans }
    }

    /// Metadata bytes: the per-span descriptors.
    pub fn metadata_bytes(&self) -> u64 {
        self.spans.len() as u64 * 16
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::formats::{Coo, EdgeList};

    fn skewed_csr() -> Csr {
        // Row 0 has 70 neighbors, rows 1..=70 have 1 each.
        let mut edges = Vec::new();
        for v in 1..=70u32 {
            edges.push((0, v));
            edges.push((v, 0));
        }
        Csr::from_coo(&Coo::from_edge_list(&EdgeList::new(71, edges)))
    }

    #[test]
    fn neighbor_groups_split_long_rows() {
        let csr = skewed_csr();
        let ng = NeighborGroups::build(&csr, 32);
        // Row 0: 70 NZE → groups of 32, 32, 6.
        let row0: Vec<_> = ng.groups.iter().filter(|g| g.row == 0).collect();
        assert_eq!(row0.len(), 3);
        assert_eq!(row0[0].len, 32);
        assert_eq!(row0[2].len, 6);
        // Every NZE covered exactly once.
        let covered: u64 = ng.groups.iter().map(|g| g.len as u64).sum();
        assert_eq!(covered, csr.nnz() as u64);
    }

    #[test]
    fn neighbor_groups_waste_on_short_rows() {
        let csr = skewed_csr();
        let ng = NeighborGroups::build(&csr, 32);
        // 70 single-NZE rows waste 31/32 of their slots.
        assert!(ng.slot_waste() > 0.5, "waste = {}", ng.slot_waste());
        assert!(ng.metadata_bytes() > 0);
    }

    #[test]
    fn row_swizzle_sorts_by_decreasing_degree() {
        let csr = skewed_csr();
        let sw = RowSwizzle::build(&csr);
        assert_eq!(sw.order[0], 0); // the hub row first
        assert_eq!(sw.order.len(), 71);
        let degs: Vec<usize> = sw.order.iter().map(|&r| csr.degree(r as usize)).collect();
        assert!(degs.windows(2).all(|w| w[0] >= w[1]));
    }

    #[test]
    fn merge_path_covers_all_nzes_contiguously() {
        let csr = skewed_csr();
        let mp = MergePath::build(&csr, 8);
        assert!(!mp.spans.is_empty());
        assert_eq!(mp.spans[0].nze_start, 0);
        assert_eq!(mp.spans.last().unwrap().nze_end as usize, csr.nnz());
        for w in mp.spans.windows(2) {
            assert_eq!(w[0].nze_end, w[1].nze_start, "spans must be contiguous");
        }
    }

    #[test]
    fn merge_path_balances_total_work() {
        let csr = skewed_csr();
        let mp = MergePath::build(&csr, 8);
        let total = csr.num_rows() + csr.nnz();
        let per = total.div_ceil(8);
        for s in &mp.spans {
            let rows = s.row_end as usize + 1 - s.row_start as usize;
            let work = rows + (s.nze_end - s.nze_start) as usize;
            // Each span's work (rows + NZEs) is within one merge-item slack
            // of the target.
            assert!(work <= per + 1, "span work {work} > {per}+1");
        }
    }

    #[test]
    fn merge_path_single_span_is_everything() {
        let csr = skewed_csr();
        let mp = MergePath::build(&csr, 1);
        assert_eq!(mp.spans.len(), 1);
        assert_eq!(mp.spans[0].nze_start, 0);
        assert_eq!(mp.spans[0].nze_end as usize, csr.nnz());
    }

    #[test]
    fn neighbor_groups_empty_graph() {
        let csr = Csr::from_coo(&Coo::from_edge_list(&EdgeList::new(4, vec![])));
        let ng = NeighborGroups::build(&csr, 32);
        assert!(ng.groups.is_empty());
        assert_eq!(ng.slot_waste(), 0.0);
    }
}
