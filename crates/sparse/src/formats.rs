//! Standard sparse storage formats (paper Fig. 1).
//!
//! The paper standardizes on **COO stored in CSR order** — NZEs sorted by
//! row, then column, exactly the layout cuSPARSE documents for its COO —
//! because every NZE then knows its row ID with a single 4-byte load while
//! remaining compatible with standard libraries (§4.3, *Format Selection*).
//! [`Csr`] is provided for the vertex-parallel baselines and for GNN
//! systems that, like DGL, keep *both* formats alive (the memory cost the
//! paper calls out).

use gnnone_sim::ValidationError;
use serde::{Deserialize, Serialize};

/// Vertex identifier. 32-bit, as in the paper's 4-bytes-per-row-ID
/// trade-off discussion (§5.4.5).
pub type VertexId = u32;

/// An unordered edge list — the raw output of generators and I/O.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EdgeList {
    /// Number of vertices (rows == cols; the paper treats graphs as square
    /// adjacency matrices).
    pub num_vertices: usize,
    /// Directed edges `(src, dst)`.
    pub edges: Vec<(VertexId, VertexId)>,
}

impl EdgeList {
    /// Creates an edge list, checking vertex bounds.
    ///
    /// # Panics
    /// If any edge references an out-of-bounds vertex. Use
    /// [`EdgeList::try_new`] when the edges come from external input.
    pub fn new(num_vertices: usize, edges: Vec<(VertexId, VertexId)>) -> Self {
        Self::try_new(num_vertices, edges).unwrap_or_else(|e| panic!("{}", e.detail))
    }

    /// Creates an edge list, returning a typed [`ValidationError`] when an
    /// edge references an out-of-bounds vertex.
    pub fn try_new(
        num_vertices: usize,
        edges: Vec<(VertexId, VertexId)>,
    ) -> Result<Self, ValidationError> {
        crate::validate::edge_list_parts(num_vertices, &edges)?;
        Ok(Self {
            num_vertices,
            edges,
        })
    }

    /// Adds the reverse of every edge, removes self-loops and duplicates —
    /// the "edges are doubled" undirected treatment of Table 1.
    pub fn symmetrize(mut self) -> Self {
        let mut sym = Vec::with_capacity(self.edges.len() * 2);
        for &(u, v) in &self.edges {
            if u != v {
                sym.push((u, v));
                sym.push((v, u));
            }
        }
        sym.sort_unstable();
        sym.dedup();
        self.edges = sym;
        self
    }

    /// Number of directed edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }
}

/// Coordinate format, stored in CSR (row-major) order.
///
/// Two parallel arrays of row and column IDs. Edge-level tensors (the `W` of
/// Fig. 1) are *not* stored here — they are separate `|E|`-length tensors
/// indexed by NZE position, as in the paper where edge features are dynamic
/// while topology is static.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Coo {
    num_rows: usize,
    num_cols: usize,
    rows: Vec<VertexId>,
    cols: Vec<VertexId>,
}

impl Coo {
    /// Builds a COO from an edge list, sorting into CSR order.
    pub fn from_edge_list(list: &EdgeList) -> Self {
        let mut pairs: Vec<(VertexId, VertexId)> = list.edges.clone();
        pairs.sort_unstable();
        pairs.dedup();
        let (rows, cols) = pairs.into_iter().unzip();
        Self {
            num_rows: list.num_vertices,
            num_cols: list.num_vertices,
            rows,
            cols,
        }
    }

    /// Builds directly from sorted, deduplicated row/col arrays.
    ///
    /// # Panics
    /// If the arrays differ in length, are not CSR-ordered, or reference
    /// out-of-bounds vertices. Use [`Coo::try_from_sorted`] when the
    /// arrays come from external input.
    pub fn from_sorted(
        num_rows: usize,
        num_cols: usize,
        rows: Vec<VertexId>,
        cols: Vec<VertexId>,
    ) -> Self {
        Self::try_from_sorted(num_rows, num_cols, rows, cols)
            .unwrap_or_else(|e| panic!("{}", e.detail))
    }

    /// Builds from sorted, deduplicated row/col arrays, returning a typed
    /// [`ValidationError`] on misaligned arrays, out-of-bounds vertices, or
    /// ordering violations (which include duplicate edges: strict CSR order
    /// admits no repeats).
    pub fn try_from_sorted(
        num_rows: usize,
        num_cols: usize,
        rows: Vec<VertexId>,
        cols: Vec<VertexId>,
    ) -> Result<Self, ValidationError> {
        crate::validate::coo_parts(num_rows, num_cols, &rows, &cols)?;
        Ok(Self {
            num_rows,
            num_cols,
            rows,
            cols,
        })
    }

    /// Number of rows (vertices).
    pub fn num_rows(&self) -> usize {
        self.num_rows
    }

    /// Number of columns (vertices).
    pub fn num_cols(&self) -> usize {
        self.num_cols
    }

    /// Number of non-zero elements (directed edges).
    pub fn nnz(&self) -> usize {
        self.rows.len()
    }

    /// Row IDs of every NZE, CSR-ordered.
    pub fn rows(&self) -> &[VertexId] {
        &self.rows
    }

    /// Column IDs of every NZE, CSR-ordered.
    pub fn cols(&self) -> &[VertexId] {
        &self.cols
    }

    /// Storage bytes of the topology (2 × 4 bytes per NZE) — the quantity
    /// the paper's single-format argument saves (§3.2, *Advantages*).
    pub fn topology_bytes(&self) -> u64 {
        self.nnz() as u64 * 8
    }

    /// Out-degree (row length) of every row.
    pub fn degrees(&self) -> Vec<u32> {
        let mut deg = vec![0u32; self.num_rows];
        for &r in &self.rows {
            deg[r as usize] += 1;
        }
        deg
    }

    /// Transposed copy (CSR-ordered). Used by backward passes: `∂(A·X)`
    /// needs `Aᵀ`.
    pub fn transpose(&self) -> Coo {
        let mut pairs: Vec<(VertexId, VertexId)> = self
            .cols
            .iter()
            .copied()
            .zip(self.rows.iter().copied())
            .collect();
        pairs.sort_unstable();
        let (rows, cols) = pairs.into_iter().unzip();
        Coo {
            num_rows: self.num_cols,
            num_cols: self.num_rows,
            rows,
            cols,
        }
    }
}

/// Compressed sparse row format: offsets + column IDs.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Csr {
    num_rows: usize,
    num_cols: usize,
    offsets: Vec<u32>,
    cols: Vec<VertexId>,
}

impl Csr {
    /// Builds from raw offset/column arrays, returning a typed
    /// [`ValidationError`] on truncated or non-monotone offsets, an
    /// nnz/offsets mismatch, out-of-bounds columns, or unsorted/duplicate
    /// columns within a row. This is the entry point for externally
    /// supplied CSR data (the panicking constructors are reserved for
    /// internally generated topology).
    pub fn try_from_parts(
        num_rows: usize,
        num_cols: usize,
        offsets: Vec<u32>,
        cols: Vec<VertexId>,
    ) -> Result<Self, ValidationError> {
        crate::validate::csr_parts(num_rows, num_cols, &offsets, &cols)?;
        Ok(Self {
            num_rows,
            num_cols,
            offsets,
            cols,
        })
    }

    /// Converts from CSR-ordered COO.
    pub fn from_coo(coo: &Coo) -> Self {
        let mut offsets = vec![0u32; coo.num_rows() + 1];
        for &r in coo.rows() {
            offsets[r as usize + 1] += 1;
        }
        for i in 0..coo.num_rows() {
            offsets[i + 1] += offsets[i];
        }
        Self {
            num_rows: coo.num_rows(),
            num_cols: coo.num_cols(),
            offsets,
            cols: coo.cols().to_vec(),
        }
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.num_rows
    }

    /// Number of columns.
    pub fn num_cols(&self) -> usize {
        self.num_cols
    }

    /// Number of non-zero elements.
    pub fn nnz(&self) -> usize {
        self.cols.len()
    }

    /// Row offset array (`num_rows + 1` entries).
    pub fn offsets(&self) -> &[u32] {
        &self.offsets
    }

    /// Column IDs, row-major.
    pub fn cols(&self) -> &[VertexId] {
        &self.cols
    }

    /// NZE index range of `row`.
    pub fn row_range(&self, row: usize) -> std::ops::Range<usize> {
        self.offsets[row] as usize..self.offsets[row + 1] as usize
    }

    /// Column IDs of `row`.
    pub fn row_cols(&self, row: usize) -> &[VertexId] {
        &self.cols[self.row_range(row)]
    }

    /// Out-degree of `row`.
    pub fn degree(&self, row: usize) -> usize {
        (self.offsets[row + 1] - self.offsets[row]) as usize
    }

    /// Storage bytes of the topology (offsets + columns).
    pub fn topology_bytes(&self) -> u64 {
        (self.offsets.len() as u64 + self.cols.len() as u64) * 4
    }

    /// Converts back to CSR-ordered COO.
    pub fn to_coo(&self) -> Coo {
        let mut rows = Vec::with_capacity(self.nnz());
        for r in 0..self.num_rows {
            rows.extend(std::iter::repeat_n(r as VertexId, self.degree(r)));
        }
        Coo {
            num_rows: self.num_rows,
            num_cols: self.num_cols,
            rows,
            cols: self.cols.clone(),
        }
    }

    /// Maximum row length — drives worst-case imbalance in vertex-parallel
    /// kernels.
    pub fn max_degree(&self) -> usize {
        (0..self.num_rows)
            .map(|r| self.degree(r))
            .max()
            .unwrap_or(0)
    }

    /// Converts to per-row adjacency lists.
    pub fn to_rows(&self) -> CsrRows {
        CsrRows::from_csr(self)
    }
}

/// Per-row adjacency lists — the host-side mirror of the `CsrRows`
/// nonzero source the GNNOne pipeline can be re-hosted on (§5.4.5 format
/// study). One `Vec` of sorted column IDs per row; no offset array.
///
/// This is the third corner of the `Coo ↔ Csr ↔ CsrRows` conversion
/// triangle the validation property tests walk: every conversion into or
/// out of it preserves the strict CSR ordering invariant.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CsrRows {
    num_cols: usize,
    rows: Vec<Vec<VertexId>>,
}

impl CsrRows {
    /// Builds from raw per-row adjacency, returning a typed
    /// [`ValidationError`] on out-of-bounds or unsorted/duplicate columns.
    pub fn try_from_rows(
        num_cols: usize,
        rows: Vec<Vec<VertexId>>,
    ) -> Result<Self, ValidationError> {
        for (r, adj) in rows.iter().enumerate() {
            for (k, &c) in adj.iter().enumerate() {
                if (c as usize) >= num_cols {
                    return Err(ValidationError::new(
                        "CsrRows",
                        "rows",
                        Some(r as u64),
                        format!("col {c} out of bounds for {num_cols} columns"),
                    ));
                }
                if k > 0 && adj[k - 1] >= c {
                    return Err(ValidationError::new(
                        "CsrRows",
                        "rows",
                        Some(r as u64),
                        format!("columns of row {r} not strictly increasing at slot {k}"),
                    ));
                }
            }
        }
        Ok(Self { num_cols, rows })
    }

    /// Converts from CSR (infallible: the invariants carry over).
    pub fn from_csr(csr: &Csr) -> Self {
        Self {
            num_cols: csr.num_cols(),
            rows: (0..csr.num_rows())
                .map(|r| csr.row_cols(r).to_vec())
                .collect(),
        }
    }

    /// Converts from CSR-ordered COO.
    pub fn from_coo(coo: &Coo) -> Self {
        Self::from_csr(&Csr::from_coo(coo))
    }

    /// Converts back to CSR.
    pub fn to_csr(&self) -> Csr {
        let mut offsets = Vec::with_capacity(self.rows.len() + 1);
        offsets.push(0u32);
        let mut cols = Vec::new();
        for adj in &self.rows {
            cols.extend_from_slice(adj);
            offsets.push(cols.len() as u32);
        }
        Csr {
            num_rows: self.rows.len(),
            num_cols: self.num_cols,
            offsets,
            cols,
        }
    }

    /// Converts back to CSR-ordered COO.
    pub fn to_coo(&self) -> Coo {
        self.to_csr().to_coo()
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Number of columns.
    pub fn num_cols(&self) -> usize {
        self.num_cols
    }

    /// Number of non-zero elements.
    pub fn nnz(&self) -> usize {
        self.rows.iter().map(Vec::len).sum()
    }

    /// Column IDs of `row`.
    pub fn row(&self, row: usize) -> &[VertexId] {
        &self.rows[row]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Coo {
        // 4 vertices: 0→{1,2}, 1→{0}, 2→{3}, 3→{}
        Coo::from_edge_list(&EdgeList::new(4, vec![(0, 1), (0, 2), (1, 0), (2, 3)]))
    }

    #[test]
    fn coo_is_csr_ordered() {
        let coo = small();
        assert_eq!(coo.rows(), &[0, 0, 1, 2]);
        assert_eq!(coo.cols(), &[1, 2, 0, 3]);
        assert_eq!(coo.nnz(), 4);
    }

    #[test]
    fn from_edge_list_dedups_and_sorts() {
        let coo = Coo::from_edge_list(&EdgeList::new(3, vec![(2, 1), (0, 1), (2, 1), (0, 1)]));
        assert_eq!(coo.nnz(), 2);
        assert_eq!(coo.rows(), &[0, 2]);
    }

    #[test]
    fn symmetrize_doubles_and_removes_self_loops() {
        let el = EdgeList::new(3, vec![(0, 1), (1, 1), (1, 2)]).symmetrize();
        let mut expected = vec![(0, 1), (1, 0), (1, 2), (2, 1)];
        expected.sort_unstable();
        assert_eq!(el.edges, expected);
    }

    #[test]
    fn csr_roundtrip() {
        let coo = small();
        let csr = Csr::from_coo(&coo);
        assert_eq!(csr.offsets(), &[0, 2, 3, 4, 4]);
        assert_eq!(csr.row_cols(0), &[1, 2]);
        assert_eq!(csr.degree(3), 0);
        assert_eq!(csr.to_coo(), coo);
    }

    #[test]
    fn transpose_involutive() {
        let coo = small();
        assert_eq!(coo.transpose().transpose(), coo);
    }

    #[test]
    fn transpose_swaps_degrees() {
        let coo = small();
        let t = coo.transpose();
        // In-degree of vertex 0 is 1 (from 1).
        assert_eq!(Csr::from_coo(&t).degree(0), 1);
        // In-degree of vertex 3 is 1 (from 2).
        assert_eq!(Csr::from_coo(&t).degree(3), 1);
    }

    #[test]
    fn degrees_match_csr() {
        let coo = small();
        let csr = Csr::from_coo(&coo);
        let deg = coo.degrees();
        for r in 0..4 {
            assert_eq!(deg[r] as usize, csr.degree(r));
        }
    }

    #[test]
    fn topology_bytes() {
        let coo = small();
        let csr = Csr::from_coo(&coo);
        assert_eq!(coo.topology_bytes(), 32); // 4 NZE × 8 B
        assert_eq!(csr.topology_bytes(), (5 + 4) * 4);
    }

    #[test]
    #[should_panic(expected = "strictly CSR-ordered")]
    fn from_sorted_rejects_unsorted() {
        Coo::from_sorted(2, 2, vec![1, 0], vec![0, 0]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn edge_list_rejects_oob() {
        EdgeList::new(2, vec![(0, 5)]);
    }

    #[test]
    fn max_degree() {
        let csr = Csr::from_coo(&small());
        assert_eq!(csr.max_degree(), 2);
    }

    #[test]
    fn empty_graph() {
        let coo = Coo::from_edge_list(&EdgeList::new(3, vec![]));
        assert_eq!(coo.nnz(), 0);
        let csr = Csr::from_coo(&coo);
        assert_eq!(csr.offsets(), &[0, 0, 0, 0]);
        assert_eq!(csr.max_degree(), 0);
    }
}
