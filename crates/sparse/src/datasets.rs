//! The Table 1 dataset registry.
//!
//! Every graph of the paper's evaluation (G0–G18) is mapped to a synthetic
//! analogue whose generator reproduces the degree-distribution character of
//! the original — the property sparse-kernel performance actually responds
//! to — at a scale that simulates in reasonable time on a host CPU. The
//! *paper-scale* vertex/edge counts are kept alongside and drive the memory
//! (OOM) model, so experiments like "DGL runs out of memory on uk-2002 while
//! GNNOne trains" (Fig. 7) reproduce with the real sizes.

use crate::formats::{Coo, Csr};
use crate::gen;
use gnnone_sim::GnnOneError;
use serde::{Deserialize, Serialize};

/// Scale profile for the synthetic analogues.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Scale {
    /// ~1/64 of `Medium`: unit tests.
    Tiny,
    /// ~1/8 of `Medium`: quick figure runs.
    Small,
    /// Default for figure reproduction (≈ 0.1–1 M directed edges each).
    Medium,
}

impl Scale {
    /// Divisors applied to the Medium (vertex, edge) targets.
    fn divisors(self) -> (usize, usize) {
        match self {
            Scale::Tiny => (16, 64),
            Scale::Small => (4, 8),
            Scale::Medium => (1, 1),
        }
    }
}

/// Which generator family reproduces the dataset's character.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Recipe {
    /// Heavy-tailed social/collaboration graph (RMAT, Graph500 probs).
    PowerLaw,
    /// Web crawl: even heavier skew (RMAT with sharper corner).
    Web,
    /// Road network: 2-D grid + shortcuts, uniform low degree.
    Road,
    /// Citation graph: preferential attachment.
    Citation,
    /// Near-uniform degree ≈ 2 with a huge vertex set (kmer).
    LowDegree,
    /// Kronecker (Graph500), the synthetic Kron-21 of the paper.
    Kron,
    /// Labelled planted-partition graph (learnable features).
    Planted,
}

/// Static description of one Table 1 row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetSpec {
    /// Table 1 short ID ("G0" … "G18").
    pub id: &'static str,
    /// Dataset name as in the paper.
    pub name: &'static str,
    /// Paper-scale vertex count (drives the OOM model).
    pub paper_vertices: u64,
    /// Paper-scale directed edge count (after undirected doubling).
    pub paper_edges: u64,
    /// Input feature length `F` from Table 1.
    pub feature_len: usize,
    /// Prediction categories `C` from Table 1.
    pub classes: usize,
    /// Whether the original dataset is labelled (starred in Table 1).
    pub labeled: bool,
    /// Generator family for the analogue.
    pub recipe: Recipe,
    /// Analogue vertex target at `Scale::Medium`.
    pub v_medium: usize,
    /// Analogue directed-edge target at `Scale::Medium`.
    pub e_medium: usize,
}

impl DatasetSpec {
    /// Analogue (vertex, edge) targets at `scale`.
    pub fn targets(&self, scale: Scale) -> (usize, usize) {
        let (dv, de) = scale.divisors();
        ((self.v_medium / dv).max(64), (self.e_medium / de).max(256))
    }

    /// Average directed degree of the analogue.
    pub fn avg_degree(&self, scale: Scale) -> f64 {
        let (v, e) = self.targets(scale);
        e as f64 / v as f64
    }
}

/// All 19 datasets of Table 1.
///
/// Medium-scale targets keep the paper's *relative* density: e.g. Reddit
/// (G14) stays two orders denser than roadNet (G5), and kmer (G16) keeps
/// its enormous vertex-to-edge ratio.
pub fn table1() -> Vec<DatasetSpec> {
    use Recipe::*;
    let s = |id,
             name,
             paper_vertices,
             paper_edges,
             feature_len,
             classes,
             labeled,
             recipe,
             v_medium,
             e_medium| DatasetSpec {
        id,
        name,
        paper_vertices,
        paper_edges,
        feature_len,
        classes,
        labeled,
        recipe,
        v_medium,
        e_medium,
    };
    vec![
        s(
            "G0", "Cora", 2_708, 10_858, 1433, 7, true, Planted, 2_708, 10_858,
        ),
        s(
            "G1", "Citeseer", 3_327, 9_104, 3703, 6, true, Planted, 3_327, 9_104,
        ),
        s(
            "G2", "PubMed", 19_717, 88_648, 500, 3, true, Planted, 19_717, 88_648,
        ),
        s(
            "G3", "Amazon", 400_727, 6_400_880, 150, 6, false, PowerLaw, 25_000, 400_000,
        ),
        s(
            "G4",
            "wiki-Talk",
            2_394_385,
            10_042_820,
            150,
            6,
            false,
            PowerLaw,
            60_000,
            250_000,
        ),
        s(
            "G5",
            "roadNet-CA",
            1_971_279,
            11_066_420,
            150,
            6,
            false,
            Road,
            62_500,
            250_000,
        ),
        s(
            "G6",
            "Web-BerkStand",
            685_230,
            15_201_173,
            150,
            6,
            false,
            Web,
            20_000,
            440_000,
        ),
        s(
            "G7",
            "as-Skitter",
            1_696_415,
            22_190_596,
            150,
            6,
            false,
            PowerLaw,
            26_000,
            350_000,
        ),
        s(
            "G8",
            "cit-Patent",
            3_774_768,
            33_037_894,
            150,
            6,
            false,
            Citation,
            59_000,
            520_000,
        ),
        s(
            "G9",
            "sx-stackoverflow",
            2_601_977,
            95_806_532,
            150,
            6,
            false,
            PowerLaw,
            16_000,
            590_000,
        ),
        s(
            "G10", "Kron-21", 2_097_152, 67_108_864, 150, 6, false, Kron, 16_384, 524_288,
        ),
        s(
            "G11",
            "hollywood09",
            1_069_127,
            112_613_308,
            150,
            6,
            false,
            PowerLaw,
            8_000,
            840_000,
        ),
        s(
            "G12",
            "Ogb-product",
            2_449_029,
            123_718_280,
            100,
            47,
            true,
            Planted,
            16_000,
            800_000,
        ),
        s(
            "G13",
            "LiveJournal",
            4_847_571,
            137_987_546,
            150,
            6,
            false,
            PowerLaw,
            19_000,
            540_000,
        ),
        s(
            "G14",
            "Reddit",
            232_965,
            229_231_784,
            602,
            41,
            true,
            Planted,
            6_000,
            900_000,
        ),
        s(
            "G15",
            "orkut",
            3_072_627,
            234_370_166,
            150,
            6,
            false,
            PowerLaw,
            12_000,
            900_000,
        ),
        s(
            "G16",
            "kmer_P1a",
            139_353_211,
            297_829_982,
            150,
            6,
            false,
            LowDegree,
            280_000,
            600_000,
        ),
        s(
            "G17",
            "uk-2002",
            18_520_486,
            596_227_524,
            150,
            6,
            false,
            Web,
            18_000,
            580_000,
        ),
        s(
            "G18",
            "uk-2005",
            39_459_925,
            1_872_728_564,
            150,
            6,
            false,
            Web,
            10_000,
            460_000,
        ),
    ]
}

/// Looks a spec up by its Table 1 ID (`"G7"`), case-insensitive.
pub fn by_id(id: &str) -> Option<DatasetSpec> {
    table1().into_iter().find(|s| s.id.eq_ignore_ascii_case(id))
}

/// A realized dataset: the generated analogue in both standard formats.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// The Table 1 row this realizes.
    pub spec: DatasetSpec,
    /// Scale it was generated at.
    pub scale: Scale,
    /// COO topology (CSR-ordered).
    pub coo: Coo,
    /// CSR topology.
    pub csr: Csr,
    /// Labels, when `spec.labeled` (planted partitions).
    pub labels: Option<Vec<u32>>,
    /// Learnable features (row-major `|V| × feature_dim`), when labelled.
    pub features: Option<Vec<f32>>,
    /// Feature dimensionality of `features` (0 when unlabelled — callers
    /// generate random features, as the GNNBench platform does, §5.3).
    pub feature_dim: usize,
}

impl Dataset {
    /// Generates the analogue for `spec` at `scale`. Deterministic in
    /// (`spec.id`, `scale`).
    ///
    /// Panics if the generated graph fails validation — that would be a bug
    /// in a generator, not user input; fallible callers should use
    /// [`Dataset::try_generate`].
    pub fn generate(spec: &DatasetSpec, scale: Scale) -> Dataset {
        Self::try_generate(spec, scale)
            .unwrap_or_else(|e| panic!("generator produced invalid dataset {}: {e}", spec.id))
    }

    /// Generates the analogue for `spec` at `scale`, validating the
    /// resulting topology and features before returning.
    pub fn try_generate(spec: &DatasetSpec, scale: Scale) -> Result<Dataset, GnnOneError> {
        let (v, e) = spec.targets(scale);
        let seed = fxhash_seed(spec.id, scale);
        let mut labels = None;
        let mut features = None;
        let mut feature_dim = 0;
        let edge_list = match spec.recipe {
            Recipe::PowerLaw => {
                gen::rmat(log2_ceil(v), e / 2, gen::GRAPH500_PROBS, seed).symmetrize()
            }
            Recipe::Web => {
                gen::rmat(log2_ceil(v), e / 2, (0.65, 0.15, 0.15, 0.05), seed).symmetrize()
            }
            Recipe::Kron => gen::rmat(log2_ceil(v), e / 2, GRAPH500_KRON, seed).symmetrize(),
            Recipe::Road => {
                let side = (v as f64).sqrt() as usize;
                gen::grid2d(side, side, v / 20, seed).symmetrize()
            }
            Recipe::Citation => {
                let m = (e / (2 * v)).max(1);
                gen::preferential_attachment(v, m, seed).symmetrize()
            }
            Recipe::LowDegree => gen::erdos_renyi(v, e / 2, seed).symmetrize(),
            Recipe::Planted => {
                // Learnable features at a compact dimensionality (the paper's
                // input F is projected down by the first layer anyway).
                let dim = 16;
                let g = gen::planted_partition(
                    v,
                    spec.classes,
                    e as f64 / v as f64 / 2.0,
                    0.85,
                    dim,
                    0.3,
                    seed,
                );
                labels = Some(g.labels);
                features = Some(g.features);
                feature_dim = dim;
                g.edges.symmetrize()
            }
        };
        let coo = Coo::from_edge_list(&edge_list);
        let csr = Csr::from_coo(&coo);
        crate::validate::coo(&coo)?;
        crate::validate::csr(&csr)?;
        if let Some(feats) = &features {
            crate::validate::features(feats, coo.num_rows(), feature_dim)?;
        }
        Ok(Dataset {
            spec: spec.clone(),
            scale,
            coo,
            csr,
            labels,
            features,
            feature_dim,
        })
    }

    /// Convenience: generate by Table 1 ID.
    pub fn by_id(id: &str, scale: Scale) -> Option<Dataset> {
        by_id(id).map(|spec| Dataset::generate(&spec, scale))
    }

    /// Fallible lookup-and-generate: unknown IDs are a typed
    /// [`GnnOneError::Config`], generation failures propagate.
    pub fn try_by_id(id: &str, scale: Scale) -> Result<Dataset, GnnOneError> {
        let spec = by_id(id).ok_or_else(|| GnnOneError::Config {
            detail: format!("unknown Table 1 dataset id `{id}` (expected G0..G18)"),
        })?;
        Dataset::try_generate(&spec, scale)
    }
}

/// Kron probabilities as in Graph500 reference.
const GRAPH500_KRON: (f64, f64, f64, f64) = (0.57, 0.19, 0.19, 0.05);

fn log2_ceil(v: usize) -> u32 {
    usize::BITS - (v.saturating_sub(1)).leading_zeros()
}

/// Small deterministic seed from dataset id + scale (not security-relevant).
fn fxhash_seed(id: &str, scale: Scale) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in id.bytes() {
        h = (h ^ b as u64).wrapping_mul(0x100_0000_01b3);
    }
    h ^ match scale {
        Scale::Tiny => 1,
        Scale::Small => 2,
        Scale::Medium => 3,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_has_19_rows_matching_paper_totals() {
        let t = table1();
        assert_eq!(t.len(), 19);
        assert_eq!(t[0].name, "Cora");
        assert_eq!(t[18].paper_edges, 1_872_728_564);
        // Starred rows in Table 1.
        let labeled: Vec<_> = t.iter().filter(|s| s.labeled).map(|s| s.id).collect();
        assert_eq!(labeled, vec!["G0", "G1", "G2", "G12", "G14"]);
    }

    #[test]
    fn by_id_is_case_insensitive() {
        assert_eq!(by_id("g10").unwrap().name, "Kron-21");
        assert!(by_id("G99").is_none());
    }

    #[test]
    fn generate_tiny_dataset() {
        let d = Dataset::by_id("G3", Scale::Tiny).unwrap();
        assert!(d.coo.nnz() > 0);
        assert_eq!(d.coo.nnz(), d.csr.nnz());
        assert!(d.labels.is_none());
    }

    #[test]
    fn planted_datasets_carry_labels() {
        let d = Dataset::by_id("G0", Scale::Tiny).unwrap();
        let labels = d.labels.as_ref().unwrap();
        assert_eq!(labels.len(), d.coo.num_rows());
        assert!(labels.iter().all(|&c| (c as usize) < d.spec.classes));
    }

    #[test]
    fn generation_is_deterministic() {
        let a = Dataset::by_id("G5", Scale::Tiny).unwrap();
        let b = Dataset::by_id("G5", Scale::Tiny).unwrap();
        assert_eq!(a.coo, b.coo);
    }

    #[test]
    fn scales_are_ordered() {
        let spec = by_id("G7").unwrap();
        let (_, et) = spec.targets(Scale::Tiny);
        let (_, es) = spec.targets(Scale::Small);
        let (_, em) = spec.targets(Scale::Medium);
        assert!(et < es && es < em);
    }

    #[test]
    fn density_ordering_is_preserved() {
        // Reddit analogue much denser than roadNet analogue.
        let reddit = by_id("G14").unwrap();
        let road = by_id("G5").unwrap();
        assert!(reddit.avg_degree(Scale::Medium) > 20.0 * road.avg_degree(Scale::Medium));
    }

    #[test]
    fn road_analogue_is_uniform() {
        let d = Dataset::by_id("G5", Scale::Tiny).unwrap();
        // Grid degree is 4; a sprinkle of shortcuts may add a few more.
        assert!(d.csr.max_degree() <= 10, "max {}", d.csr.max_degree());
        let avg = d.csr.nnz() as f64 / d.csr.num_rows() as f64;
        assert!((3.0..5.0).contains(&avg), "avg degree {avg}");
    }

    #[test]
    fn try_by_id_rejects_unknown_dataset() {
        let err = Dataset::try_by_id("G99", Scale::Tiny).unwrap_err();
        assert_eq!(err.kind(), "config");
        assert!(err.to_string().contains("G99"), "{err}");
    }

    #[test]
    fn try_generate_validates_cleanly() {
        // A labelled dataset exercises topology + feature validation.
        let d = Dataset::try_by_id("G0", Scale::Tiny).unwrap();
        assert!(d.features.is_some());
    }

    #[test]
    fn powerlaw_analogue_is_skewed() {
        let d = Dataset::by_id("G11", Scale::Tiny).unwrap();
        let avg = d.csr.nnz() as f64 / d.csr.num_rows() as f64;
        assert!(d.csr.max_degree() as f64 > 4.0 * avg);
    }
}
