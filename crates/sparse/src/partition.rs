//! Row-aligned graph partitions for sharded execution.
//!
//! A [`RowPartition`] splits a CSR-ordered graph into K contiguous,
//! row-aligned shards: shard `s` owns the half-open row range
//! `[row_start, row_end)` and, because the edge arrays are stored in CSR
//! order, exactly the contiguous edge range `[edge_start, edge_end)`.
//! Row alignment is the invariant everything downstream leans on:
//!
//! * every row's full adjacency lives in exactly one shard, so
//!   row-reduction kernels (SpMM, SpMV, fused GAT softmax) are exact per
//!   shard with no cross-shard combining;
//! * shard outputs merge by disjoint row/edge ranges — a pure copy that
//!   the static verifier can prove disjoint and covering;
//! * edge-indexed operands and outputs (SDDMM scores, edge weights) slice
//!   by `[edge_start, edge_end)` with no reindexing.
//!
//! Construction funnels through [`RowPartition::try_from_row_splits`], which
//! rejects malformed specs (overlapping ranges, ownership gaps, truncated
//! coverage) as structured [`ValidationError`]s — the same taxonomy the
//! format validators use, so a hostile partition spec can never reach a
//! kernel launch.

use gnnone_sim::jsonio::Json;
use gnnone_sim::ValidationError;

/// One shard of a [`RowPartition`]: an owned row range and the edge range
/// it implies under CSR order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardSpec {
    /// Shard index in `[0, num_shards)`.
    pub shard: usize,
    /// First owned row (inclusive).
    pub row_start: usize,
    /// One past the last owned row.
    pub row_end: usize,
    /// First owned edge (inclusive), in CSR order.
    pub edge_start: usize,
    /// One past the last owned edge.
    pub edge_end: usize,
}

impl ShardSpec {
    /// Number of rows this shard owns.
    pub fn num_rows(&self) -> usize {
        self.row_end - self.row_start
    }

    /// Number of edges this shard owns.
    pub fn nnz(&self) -> usize {
        self.edge_end - self.edge_start
    }

    /// Serializes through the dependency-free jsonio path.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("shard", Json::U64(self.shard as u64)),
            ("row_start", Json::U64(self.row_start as u64)),
            ("row_end", Json::U64(self.row_end as u64)),
            ("edge_start", Json::U64(self.edge_start as u64)),
            ("edge_end", Json::U64(self.edge_end as u64)),
        ])
    }
}

/// Load-balance summary of a partition, reported by `gnnone-prof shard`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PartitionStats {
    /// Shard count K.
    pub shards: usize,
    /// Largest per-shard edge count.
    pub max_nnz: usize,
    /// Smallest per-shard edge count.
    pub min_nnz: usize,
    /// Mean per-shard edge count.
    pub avg_nnz: f64,
    /// `max_nnz / avg_nnz`; 1.0 is perfect balance. 0 for empty graphs.
    pub imbalance: f64,
    /// Shards owning zero edges (K exceeded the nonempty row count).
    pub empty_shards: usize,
}

impl PartitionStats {
    /// Serializes through the dependency-free jsonio path.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("shards", Json::U64(self.shards as u64)),
            ("max_nnz", Json::U64(self.max_nnz as u64)),
            ("min_nnz", Json::U64(self.min_nnz as u64)),
            ("avg_nnz", Json::F64(self.avg_nnz)),
            ("imbalance", Json::F64(self.imbalance)),
            ("empty_shards", Json::U64(self.empty_shards as u64)),
        ])
    }
}

/// A validated row-aligned K-way partition of a CSR-ordered graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RowPartition {
    num_rows: usize,
    nnz: usize,
    shards: Vec<ShardSpec>,
}

impl RowPartition {
    /// Builds a partition from proposed row splits, validating against the
    /// graph's CSR `offsets` (length `num_rows + 1`). Each `(start, end)`
    /// pair is one shard's owned row range; the ranges must be in order,
    /// contiguous (no ownership gaps, no overlaps), and cover exactly
    /// `[0, num_rows)`. Edge ranges are derived from `offsets`, so they
    /// cannot be forged independently of the rows.
    pub fn try_from_row_splits(
        offsets: &[u32],
        splits: &[(usize, usize)],
    ) -> Result<Self, ValidationError> {
        if offsets.is_empty() {
            return Err(ValidationError::new(
                "RowPartition",
                "offsets",
                None,
                "CSR offsets must have at least one entry",
            ));
        }
        let num_rows = offsets.len() - 1;
        let nnz = offsets[num_rows] as usize;
        if splits.is_empty() {
            return Err(ValidationError::new(
                "RowPartition",
                "row_ranges",
                None,
                "empty partition: need at least one shard",
            ));
        }
        let mut shards = Vec::with_capacity(splits.len());
        let mut cursor = 0usize;
        for (i, &(start, end)) in splits.iter().enumerate() {
            if start != cursor {
                let detail = if start < cursor {
                    format!(
                        "shard {i} row range [{start}, {end}) overlaps shard {}: \
                         rows below {cursor} are already owned",
                        i.saturating_sub(1)
                    )
                } else {
                    format!(
                        "ownership gap before shard {i}: rows [{cursor}, {start}) \
                         are owned by no shard"
                    )
                };
                return Err(ValidationError::new(
                    "RowPartition",
                    "row_ranges",
                    Some(i as u64),
                    detail,
                ));
            }
            if end < start {
                return Err(ValidationError::new(
                    "RowPartition",
                    "row_ranges",
                    Some(i as u64),
                    format!("shard {i} row range [{start}, {end}) is inverted"),
                ));
            }
            if end > num_rows {
                return Err(ValidationError::new(
                    "RowPartition",
                    "row_ranges",
                    Some(i as u64),
                    format!("shard {i} row range [{start}, {end}) exceeds {num_rows} rows"),
                ));
            }
            shards.push(ShardSpec {
                shard: i,
                row_start: start,
                row_end: end,
                edge_start: offsets[start] as usize,
                edge_end: offsets[end] as usize,
            });
            cursor = end;
        }
        if cursor != num_rows {
            return Err(ValidationError::new(
                "RowPartition",
                "row_ranges",
                Some(splits.len() as u64 - 1),
                format!(
                    "partition covers rows [0, {cursor}) but the graph has {num_rows} rows: \
                     rows [{cursor}, {num_rows}) are owned by no shard"
                ),
            ));
        }
        Ok(Self {
            num_rows,
            nnz,
            shards,
        })
    }

    /// The trivial single-shard partition (K = 1): one shard owning every
    /// row and edge. Sharded execution over it is byte-identical to the
    /// unsharded kernel.
    pub fn single(offsets: &[u32]) -> Self {
        let num_rows = offsets.len().saturating_sub(1);
        Self::try_from_row_splits(offsets, &[(0, num_rows)])
            .expect("the full-range split is always valid")
    }

    /// Total rows across all shards.
    pub fn num_rows(&self) -> usize {
        self.num_rows
    }

    /// Total edges across all shards.
    pub fn nnz(&self) -> usize {
        self.nnz
    }

    /// Shard count K.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The validated shard specs, in shard order.
    pub fn shards(&self) -> &[ShardSpec] {
        &self.shards
    }

    /// The shard owning row `row` (panics when `row >= num_rows`). Used by
    /// halo exchange to route remote-vertex requests to their owner.
    pub fn owner_of_row(&self, row: usize) -> usize {
        assert!(row < self.num_rows, "row {row} out of range");
        // Shards are contiguous and sorted, so binary-search the starts.
        let mut lo = 0usize;
        let mut hi = self.shards.len() - 1;
        while lo < hi {
            let mid = (lo + hi).div_ceil(2);
            if self.shards[mid].row_start <= row {
                lo = mid;
            } else {
                hi = mid - 1;
            }
        }
        lo
    }

    /// Load-balance summary.
    pub fn stats(&self) -> PartitionStats {
        let nnzs: Vec<usize> = self.shards.iter().map(ShardSpec::nnz).collect();
        let max_nnz = nnzs.iter().copied().max().unwrap_or(0);
        let min_nnz = nnzs.iter().copied().min().unwrap_or(0);
        let avg_nnz = self.nnz as f64 / self.shards.len() as f64;
        PartitionStats {
            shards: self.shards.len(),
            max_nnz,
            min_nnz,
            avg_nnz,
            imbalance: if avg_nnz > 0.0 {
                max_nnz as f64 / avg_nnz
            } else {
                0.0
            },
            empty_shards: nnzs.iter().filter(|&&n| n == 0).count(),
        }
    }

    /// Serializes through the dependency-free jsonio path.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("num_rows", Json::U64(self.num_rows as u64)),
            ("nnz", Json::U64(self.nnz as u64)),
            (
                "shards",
                Json::Arr(self.shards.iter().map(ShardSpec::to_json).collect()),
            ),
            ("stats", self.stats().to_json()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // CSR offsets for a 6-row graph with row degrees [2, 0, 3, 1, 0, 2].
    fn offsets() -> Vec<u32> {
        vec![0, 2, 2, 5, 6, 6, 8]
    }

    #[test]
    fn valid_split_derives_edge_ranges() {
        let p = RowPartition::try_from_row_splits(&offsets(), &[(0, 2), (2, 4), (4, 6)]).unwrap();
        assert_eq!(p.num_shards(), 3);
        assert_eq!(p.num_rows(), 6);
        assert_eq!(p.nnz(), 8);
        let s = p.shards();
        assert_eq!((s[0].edge_start, s[0].edge_end), (0, 2));
        assert_eq!((s[1].edge_start, s[1].edge_end), (2, 6));
        assert_eq!((s[2].edge_start, s[2].edge_end), (6, 8));
        assert_eq!(p.owner_of_row(0), 0);
        assert_eq!(p.owner_of_row(3), 1);
        assert_eq!(p.owner_of_row(5), 2);
    }

    #[test]
    fn overlap_and_gap_are_structured_rejections() {
        let overlap = RowPartition::try_from_row_splits(&offsets(), &[(0, 3), (2, 6)]).unwrap_err();
        assert_eq!(overlap.structure, "RowPartition");
        assert!(overlap.detail.contains("overlaps"), "{overlap}");
        let gap = RowPartition::try_from_row_splits(&offsets(), &[(0, 2), (3, 6)]).unwrap_err();
        assert!(gap.detail.contains("ownership gap"), "{gap}");
        let short = RowPartition::try_from_row_splits(&offsets(), &[(0, 2), (2, 5)]).unwrap_err();
        assert!(short.detail.contains("owned by no shard"), "{short}");
        let over = RowPartition::try_from_row_splits(&offsets(), &[(0, 7)]).unwrap_err();
        assert!(over.detail.contains("exceeds 6 rows"), "{over}");
        let inverted =
            RowPartition::try_from_row_splits(&offsets(), &[(0, 2), (2, 1)]).unwrap_err();
        // An inverted range reads as an overlap or inversion, never a panic.
        assert_eq!(inverted.structure, "RowPartition");
        let empty = RowPartition::try_from_row_splits(&offsets(), &[]).unwrap_err();
        assert!(empty.detail.contains("at least one shard"), "{empty}");
    }

    #[test]
    fn empty_shards_are_legal_and_counted() {
        // K=4 over a graph whose middle rows are empty: shard (1,1) owns
        // nothing — legal, and visible in the stats.
        let p = RowPartition::try_from_row_splits(&offsets(), &[(0, 1), (1, 1), (1, 2), (2, 6)])
            .unwrap();
        let stats = p.stats();
        assert_eq!(stats.shards, 4);
        assert_eq!(stats.empty_shards, 2); // rows [1,1) and row 1 (degree 0)
        assert_eq!(stats.max_nnz, 6);
        assert!(stats.imbalance > 1.0);
    }

    #[test]
    fn single_covers_everything() {
        let p = RowPartition::single(&offsets());
        assert_eq!(p.num_shards(), 1);
        assert_eq!(p.shards()[0].num_rows(), 6);
        assert_eq!(p.shards()[0].nnz(), 8);
        let single_vertex = RowPartition::single(&[0, 0]);
        assert_eq!(single_vertex.num_rows(), 1);
        assert_eq!(single_vertex.nnz(), 0);
        assert_eq!(single_vertex.stats().imbalance, 0.0);
    }

    #[test]
    fn json_carries_shards_and_stats() {
        let p = RowPartition::try_from_row_splits(&offsets(), &[(0, 3), (3, 6)]).unwrap();
        let j = p.to_json().to_string_compact();
        assert!(j.contains("\"edge_start\""), "{j}");
        assert!(j.contains("\"imbalance\""), "{j}");
    }
}
