//! # gnnone-sparse — sparse formats, graph generators, datasets, references
//!
//! Substrate crate for the GNNOne reproduction:
//!
//! * [`formats`] — the standard storage formats from the paper's Fig. 1:
//!   [`Coo`] (stored in CSR order, as cuSPARSE defines it — the format
//!   GNNOne standardizes on) and [`Csr`], with checked conversions.
//! * [`custom`] — the *custom* formats the baselines rely on: neighbor
//!   groups (GNNAdvisor / Huang et al.), merge-path coordinates
//!   (Merge-SpMV), and row swizzling (Sputnik).
//! * [`gen`] — deterministic synthetic graph generators standing in for the
//!   SNAP / UFL / OGB downloads of Table 1 (RMAT/Kronecker, preferential
//!   attachment, 2-D grids with shortcuts, Erdős–Rényi, planted partitions
//!   with learnable features for the accuracy experiment).
//! * [`datasets`] — the Table 1 registry: every graph G0–G18 mapped to a
//!   scaled synthetic analogue plus the paper-scale vertex/edge counts used
//!   by the memory (OOM) model.
//! * [`reference`](mod@crate::reference) — sequential and rayon-parallel CPU reference kernels
//!   (SpMM, SDDMM, SpMV) serving as the correctness oracle for every
//!   simulated kernel.
//! * [`io`] — minimal Matrix Market import/export so real datasets can be
//!   dropped in where available.
//! * [`stats`] — degree-distribution summaries (Gini, skew) characterizing
//!   the workload-imbalance risk each kernel strategy faces.
//! * [`validate`] — structural invariant checks (monotone CSR offsets,
//!   in-range strictly-increasing column IDs, finite features) run at load
//!   and after every format conversion; failures are typed
//!   [`gnnone_sim::ValidationError`]s rather than panics.
//! * [`partition`] — validated row-aligned K-way partitions
//!   ([`RowPartition`]) for sharded multi-device execution; malformed
//!   partition specs (overlaps, ownership gaps) are rejected with the same
//!   structured taxonomy.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod custom;
pub mod datasets;
pub mod formats;
pub mod gen;
pub mod io;
pub mod partition;
pub mod reference;
pub mod stats;
pub mod validate;

pub use datasets::{Dataset, DatasetSpec, Scale};
pub use formats::{Coo, Csr, CsrRows, EdgeList, VertexId};
pub use partition::{PartitionStats, RowPartition, ShardSpec};
