//! Offline vendored `ChaCha8Rng`, **stream-compatible** with
//! `rand_chacha` 0.3 + `rand_core` 0.6.
//!
//! Upstream wraps the ChaCha block function in `BlockRng`: blocks are
//! generated four at a time into a 64-word buffer, `next_u32` consumes one
//! word, and `next_u64` consumes two with a special case when only one word
//! remains. All of that — including the 64-bit block counter spanning state
//! words 12–13 and the zero nonce — is reproduced here so that every seeded
//! stream (and therefore every committed golden file) is bit-identical.

pub use rand_core;
use rand_core::{RngCore, SeedableRng};

const BUF_WORDS: usize = 64; // four 16-word ChaCha blocks per refill
const ROUNDS: usize = 8;

/// The ChaCha8 block cipher as a deterministic RNG.
#[derive(Clone, Debug)]
pub struct ChaCha8Rng {
    key: [u32; 8],
    /// 64-bit block counter (words 12–13 of the ChaCha state).
    counter: u64,
    results: [u32; BUF_WORDS],
    index: usize,
}

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn block(&self, counter: u64, out: &mut [u32]) {
        let mut state = [0u32; 16];
        state[0] = 0x6170_7865; // "expa"
        state[1] = 0x3320_646e; // "nd 3"
        state[2] = 0x7962_2d32; // "2-by"
        state[3] = 0x6b20_6574; // "te k"
        state[4..12].copy_from_slice(&self.key);
        state[12] = counter as u32;
        state[13] = (counter >> 32) as u32;
        // words 14–15: stream id, always zero for seed_from_u64/from_seed
        let initial = state;
        for _ in 0..ROUNDS / 2 {
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for i in 0..16 {
            out[i] = state[i].wrapping_add(initial[i]);
        }
    }

    /// Refills the 4-block buffer and positions the read index at
    /// `offset`, mirroring `BlockRng::generate_and_set`.
    fn generate_and_set(&mut self, offset: usize) {
        debug_assert!(offset < BUF_WORDS);
        let mut out = [0u32; BUF_WORDS];
        for b in 0..4 {
            let (lo, hi) = (b * 16, b * 16 + 16);
            let mut blk = [0u32; 16];
            self.block(self.counter + b as u64, &mut blk);
            out[lo..hi].copy_from_slice(&blk);
        }
        self.counter = self.counter.wrapping_add(4);
        self.results = out;
        self.index = offset;
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: [u8; 32]) -> Self {
        let mut key = [0u32; 8];
        for (i, w) in key.iter_mut().enumerate() {
            *w = u32::from_le_bytes([
                seed[4 * i],
                seed[4 * i + 1],
                seed[4 * i + 2],
                seed[4 * i + 3],
            ]);
        }
        Self {
            key,
            counter: 0,
            results: [0u32; BUF_WORDS],
            index: BUF_WORDS, // buffer starts exhausted
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= BUF_WORDS {
            self.generate_and_set(0);
        }
        let value = self.results[self.index];
        self.index += 1;
        value
    }

    // BlockRng::next_u64 semantics: normally two words (lo, hi); when
    // exactly one word remains it becomes the low half and the first word
    // of the next buffer the high half.
    fn next_u64(&mut self) -> u64 {
        let index = self.index;
        if index < BUF_WORDS - 1 {
            self.index = index + 2;
            (self.results[index] as u64) | ((self.results[index + 1] as u64) << 32)
        } else if index >= BUF_WORDS {
            self.generate_and_set(2);
            (self.results[0] as u64) | ((self.results[1] as u64) << 32)
        } else {
            let lo = self.results[BUF_WORDS - 1] as u64;
            self.generate_and_set(1);
            let hi = self.results[0] as u64;
            (hi << 32) | lo
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// RFC 7539 §2.3.2 test vector, adapted: the ChaCha20 reference state
    /// check can't apply to ChaCha8, so instead pin the *structure*:
    /// deterministic refills, counter stepping, and the one-word-left
    /// `next_u64` splice.
    #[test]
    fn word_stream_is_deterministic_and_splices() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        let words: Vec<u32> = (0..130).map(|_| a.next_u32()).collect();
        let again: Vec<u32> = (0..130).map(|_| b.next_u32()).collect();
        assert_eq!(words, again);

        // Drain 63 words, then next_u64 must splice word 63 (lo) with the
        // first word of the next refill (hi).
        let mut c = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..63 {
            c.next_u32();
        }
        let spliced = c.next_u64();
        assert_eq!(spliced as u32, words[63]);
        assert_eq!((spliced >> 32) as u32, words[64]);
        // And the read index sits at 1 afterwards.
        assert_eq!(c.next_u32(), words[65]);
    }

    #[test]
    fn distinct_seeds_distinct_streams() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }
}
