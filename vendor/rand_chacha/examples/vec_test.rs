use rand_chacha::ChaCha8Rng;
use rand_core::{RngCore, SeedableRng};
fn main() {
    let mut r = ChaCha8Rng::from_seed([0u8; 32]);
    let mut bytes = [0u8; 32];
    r.fill_bytes(&mut bytes);
    for b in bytes {
        print!("{b:02X}");
    }
    println!();
}
