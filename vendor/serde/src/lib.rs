//! Offline vendored `serde` facade.
//!
//! The workspace's on-disk formats all go through the dependency-free
//! `jsonio` modules; the serde derives on its types are declarative
//! compatibility markers (kept so the code builds unchanged against the
//! real crate). This stub therefore provides exactly that: two marker
//! traits and the matching name-only derive macros.

/// Marker for serializable types (no-op in the offline stub).
pub trait Serialize {}

/// Marker for deserializable types (no-op in the offline stub).
pub trait Deserialize<'de>: Sized {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

macro_rules! impl_markers {
    ($($ty:ty),* $(,)?) => {
        $(
            impl Serialize for $ty {}
            impl<'de> Deserialize<'de> for $ty {}
        )*
    };
}

impl_markers!(
    bool, u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize, f32, f64, char, String
);

impl Serialize for str {}
impl<T: Serialize> Serialize for Vec<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {}
impl<T: Serialize> Serialize for Option<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {}
impl<T: Serialize + ?Sized> Serialize for &T {}
impl<T: Serialize + ?Sized> Serialize for Box<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<T> {}
impl<T: Serialize> Serialize for [T] {}
