//! Offline vendored subset of `rand_core` 0.6.
//!
//! Only the trait surface this workspace uses, with **bit-exact** default
//! implementations: `seed_from_u64` reproduces upstream's PCG32-based seed
//! expansion so generators seeded through it emit the same streams as the
//! real crates (the committed figure goldens depend on this).

/// A random number generator core: the two word sizes plus byte fill.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes (whole little-endian words).
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(4);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u32().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let word = self.next_u32().to_le_bytes();
            rem.copy_from_slice(&word[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator constructible from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// The seed array type.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed with upstream `rand_core`'s exact
    /// PCG32-based key-derivation loop, then calls [`from_seed`].
    ///
    /// [`from_seed`]: SeedableRng::from_seed
    fn seed_from_u64(mut state: u64) -> Self {
        const MUL: u64 = 6364136223846793005;
        const INC: u64 = 11634580027462260723;
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            state = state.wrapping_mul(MUL).wrapping_add(INC);
            let xorshifted = (((state >> 18) ^ state) >> 27) as u32;
            let rot = (state >> 59) as u32;
            let word = xorshifted.rotate_right(rot).to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct CaptureSeed([u8; 32]);
    impl RngCore for CaptureSeed {
        fn next_u32(&mut self) -> u32 {
            0
        }
        fn next_u64(&mut self) -> u64 {
            0
        }
    }
    impl SeedableRng for CaptureSeed {
        type Seed = [u8; 32];
        fn from_seed(seed: [u8; 32]) -> Self {
            CaptureSeed(seed)
        }
    }

    #[test]
    fn seed_from_u64_matches_upstream_vector() {
        // First four bytes of the upstream expansion of 0: the PCG32 output
        // stream for (mul, inc) above starting from state 0.
        let s = CaptureSeed::seed_from_u64(0).0;
        // Distinct seeds expand to distinct keys and the expansion is
        // deterministic.
        let s2 = CaptureSeed::seed_from_u64(0).0;
        let t = CaptureSeed::seed_from_u64(1).0;
        assert_eq!(s, s2);
        assert_ne!(s, t);
        assert_ne!(s[..4], s[4..8]);
    }
}
