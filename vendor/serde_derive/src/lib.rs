//! Offline vendored `serde_derive`: emits **empty marker impls** for the
//! stubbed `serde` facade. No `syn`/`quote` — the input is scanned for the
//! `struct`/`enum` keyword and the following identifier; attributes
//! (including `#[serde(...)]`) are accepted and ignored. Generic types are
//! unsupported (none of the workspace's derived types are generic).

use proc_macro::{TokenStream, TokenTree};

fn type_name(input: TokenStream) -> String {
    let mut tokens = input.into_iter();
    while let Some(tok) = tokens.next() {
        if let TokenTree::Ident(id) = &tok {
            let word = id.to_string();
            if word == "struct" || word == "enum" {
                if let Some(TokenTree::Ident(name)) = tokens.next() {
                    return name.to_string();
                }
            }
        }
    }
    panic!("serde_derive stub: could not find a struct/enum name");
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl ::serde::Serialize for {name} {{}}")
        .parse()
        .expect("valid impl block")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl<'de> ::serde::Deserialize<'de> for {name} {{}}")
        .parse()
        .expect("valid impl block")
}
