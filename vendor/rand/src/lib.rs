//! Offline vendored subset of `rand` 0.8.
//!
//! Every sampling path used by this workspace reproduces upstream's exact
//! algorithm **and randomness consumption**, so a generator shared between
//! call sites stays stream-aligned with the real crate:
//!
//! * `Standard` floats: high-bit multiply (`u32 >> 8` / `u64 >> 11`).
//! * `gen_range` on integers: widening-multiply rejection with the
//!   `leading_zeros` zone (one `u32` per `u32` draw, one `u64` per
//!   `usize`/`u64` draw per attempt).
//! * `gen_range` on floats: the `[1, 2)` mantissa-fill path
//!   (`value0_1 * scale + low` with retry on `res >= high`).
//! * `gen_bool`: Bernoulli via 64-bit integer threshold (`p == 1.0`
//!   consumes nothing).
//! * `Open01`: mantissa fill minus `1 - ε/2`.

pub use rand_core;
pub use rand_core::{RngCore, SeedableRng};

pub mod distributions {
    //! Sampling distributions (the subset the workspace samples from).

    use crate::RngCore;

    /// Types which can produce values of `T` from an RNG.
    pub trait Distribution<T> {
        /// Samples one value.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// The "default" distribution: uniform over the value range for
    /// integers, `[0, 1)` for floats.
    #[derive(Clone, Copy, Debug, Default)]
    pub struct Standard;

    /// Uniform over the **open** interval `(0, 1)`.
    #[derive(Clone, Copy, Debug, Default)]
    pub struct Open01;

    impl Distribution<u32> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u32 {
            rng.next_u32()
        }
    }
    impl Distribution<u64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u64 {
            rng.next_u64()
        }
    }
    impl Distribution<usize> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> usize {
            rng.next_u64() as usize
        }
    }
    impl Distribution<bool> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
            // Upstream: sign-bit test on one u32.
            (rng.next_u32() as i32) < 0
        }
    }
    impl Distribution<f32> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
            // 24 mantissa-ish bits: (u >> 8) * 2^-24.
            let fraction = rng.next_u32() >> 8;
            fraction as f32 * (1.0 / (1u32 << 24) as f32)
        }
    }
    impl Distribution<f64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
            // 53 bits: (u >> 11) * 2^-53.
            let fraction = rng.next_u64() >> 11;
            fraction as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    impl Distribution<f64> for Open01 {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
            // Mantissa fill into [1, 2), then shift to (0, 1).
            let fraction = rng.next_u64() >> 12;
            f64::from_bits((1023u64 << 52) | fraction) - (1.0 - f64::EPSILON / 2.0)
        }
    }
    impl Distribution<f32> for Open01 {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
            let fraction = rng.next_u32() >> 9;
            f32::from_bits((127u32 << 23) | fraction) - (1.0 - f32::EPSILON / 2.0)
        }
    }

    pub mod uniform {
        //! `gen_range` backing: upstream's `UniformSampler::sample_single`.

        use crate::RngCore;
        use std::ops::{Range, RangeInclusive};

        /// Ranges which can produce a uniform sample of `T`.
        pub trait SampleRange<T> {
            /// Samples one value from the range.
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
        }

        #[inline]
        fn wmul64(a: u64, b: u64) -> (u64, u64) {
            let t = (a as u128) * (b as u128);
            ((t >> 64) as u64, t as u64)
        }

        #[inline]
        fn wmul32(a: u32, b: u32) -> (u32, u32) {
            let t = (a as u64) * (b as u64);
            ((t >> 32) as u32, t as u32)
        }

        macro_rules! uniform_int_64 {
            ($ty:ty) => {
                impl SampleRange<$ty> for Range<$ty> {
                    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                        assert!(self.start < self.end, "cannot sample empty range");
                        let range = (self.end as u64).wrapping_sub(self.start as u64);
                        let zone = (range << range.leading_zeros()).wrapping_sub(1);
                        loop {
                            let v = rng.next_u64();
                            let (hi, lo) = wmul64(v, range);
                            if lo <= zone {
                                return self.start.wrapping_add(hi as $ty);
                            }
                        }
                    }
                }
                impl SampleRange<$ty> for RangeInclusive<$ty> {
                    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                        let (low, high) = (*self.start(), *self.end());
                        assert!(low <= high, "cannot sample empty range");
                        let range = (high as u64).wrapping_sub(low as u64).wrapping_add(1);
                        if range == 0 {
                            // Full type span: any value.
                            return rng.next_u64() as $ty;
                        }
                        let zone = (range << range.leading_zeros()).wrapping_sub(1);
                        loop {
                            let v = rng.next_u64();
                            let (hi, lo) = wmul64(v, range);
                            if lo <= zone {
                                return low.wrapping_add(hi as $ty);
                            }
                        }
                    }
                }
            };
        }

        macro_rules! uniform_int_32 {
            ($ty:ty) => {
                impl SampleRange<$ty> for Range<$ty> {
                    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                        assert!(self.start < self.end, "cannot sample empty range");
                        let range = (self.end as u32).wrapping_sub(self.start as u32);
                        let zone = (range << range.leading_zeros()).wrapping_sub(1);
                        loop {
                            let v = rng.next_u32();
                            let (hi, lo) = wmul32(v, range);
                            if lo <= zone {
                                return self.start.wrapping_add(hi as $ty);
                            }
                        }
                    }
                }
                impl SampleRange<$ty> for RangeInclusive<$ty> {
                    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                        let (low, high) = (*self.start(), *self.end());
                        assert!(low <= high, "cannot sample empty range");
                        let range = (high as u32).wrapping_sub(low as u32).wrapping_add(1);
                        if range == 0 {
                            return rng.next_u32() as $ty;
                        }
                        let zone = (range << range.leading_zeros()).wrapping_sub(1);
                        loop {
                            let v = rng.next_u32();
                            let (hi, lo) = wmul32(v, range);
                            if lo <= zone {
                                return low.wrapping_add(hi as $ty);
                            }
                        }
                    }
                }
            };
        }

        uniform_int_64!(u64);
        uniform_int_64!(usize);
        uniform_int_64!(i64);
        uniform_int_32!(u32);
        uniform_int_32!(i32);

        impl SampleRange<f32> for Range<f32> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
                assert!(self.start < self.end, "cannot sample empty range");
                let scale = self.end - self.start;
                loop {
                    // value1_2 in [1, 2): 23 mantissa bits (discard 9).
                    let value1_2 = f32::from_bits((127u32 << 23) | (rng.next_u32() >> 9));
                    let value0_1 = value1_2 - 1.0;
                    let res = value0_1 * scale + self.start;
                    if res < self.end {
                        return res;
                    }
                }
            }
        }

        impl SampleRange<f64> for Range<f64> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
                assert!(self.start < self.end, "cannot sample empty range");
                let scale = self.end - self.start;
                loop {
                    // value1_2 in [1, 2): 52 mantissa bits (discard 12).
                    let value1_2 = f64::from_bits((1023u64 << 52) | (rng.next_u64() >> 12));
                    let value0_1 = value1_2 - 1.0;
                    let res = value0_1 * scale + self.start;
                    if res < self.end {
                        return res;
                    }
                }
            }
        }
    }

    pub use uniform::SampleRange;
}

use distributions::{Distribution, SampleRange, Standard};

/// Convenience extension over [`RngCore`] — the user-facing sampling API.
pub trait Rng: RngCore {
    /// Samples via the [`Standard`] distribution.
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(self)
    }

    /// Uniform sample from a (half-open or inclusive) range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Samples from an explicit distribution.
    fn sample<T, D: Distribution<T>>(&mut self, distr: D) -> T {
        distr.sample(self)
    }

    /// Bernoulli draw: `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        if !(0.0..=1.0).contains(&p) {
            panic!("p={p} is outside range [0.0, 1.0]");
        }
        if p == 1.0 {
            return true; // upstream ALWAYS_TRUE: consumes no randomness
        }
        const SCALE: f64 = 2.0 * (1u64 << 63) as f64;
        let p_int = (p * SCALE) as u64;
        self.next_u64() < p_int
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod prelude {
    //! The traits a sampling call site needs in scope.
    pub use crate::distributions::Distribution;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    /// Deterministic counting RNG for consumption tests.
    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.0 += 1;
            (self.0.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 += 1;
            self.0.wrapping_mul(0x9E37_79B9_7F4A_7C15)
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Counter(0);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-1.0f32..1.0);
            assert!((-1.0..1.0).contains(&f));
            let c = rng.gen_range(0u32..5);
            assert!(c < 5);
            let i = rng.gen_range(2usize..=4);
            assert!((2..=4).contains(&i));
        }
    }

    #[test]
    fn standard_floats_are_half_open_unit() {
        let mut rng = Counter(7);
        for _ in 0..1000 {
            let a: f64 = rng.gen();
            let b: f32 = rng.gen();
            assert!((0.0..1.0).contains(&a));
            assert!((0.0..1.0).contains(&b));
            let o: f64 = rng.sample(crate::distributions::Open01);
            assert!(o > 0.0 && o < 1.0);
        }
    }

    #[test]
    fn gen_bool_edge_probabilities() {
        let mut rng = Counter(1);
        assert!(rng.gen_bool(1.0));
        assert!(!rng.gen_bool(0.0));
        // p = 1.0 must not consume randomness (upstream semantics).
        let mut a = Counter(5);
        let mut b = Counter(5);
        a.gen_bool(1.0);
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
