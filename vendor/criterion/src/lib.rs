//! Offline vendored subset of `criterion`.
//!
//! Implements the harness surface the workspace's `[[bench]]` targets use
//! (`criterion_group!`/`criterion_main!`, benchmark groups, `Bencher::iter`,
//! throughput annotation). Measurement is a plain wall-clock median over a
//! fixed iteration budget — enough to compare kernels locally; it makes no
//! attempt at criterion's statistical machinery.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Prevents the optimizer from discarding a value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Benchmark identifier: function name plus parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        Self {
            id: format!("{name}/{parameter}"),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    samples: usize,
    last_median: Duration,
}

impl Bencher {
    /// Times `f`: a couple of warmup calls, then `samples` timed calls;
    /// records the median.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        for _ in 0..2 {
            black_box(f());
        }
        let mut times: Vec<Duration> = (0..self.samples)
            .map(|_| {
                let t0 = Instant::now();
                black_box(f());
                t0.elapsed()
            })
            .collect();
        times.sort_unstable();
        self.last_median = times[times.len() / 2];
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the timed-iteration count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    /// Accepted for API compatibility; the stub's warmup is fixed.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the stub's budget is `sample_size`.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Annotates per-iteration throughput for reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    fn report(&self, id: &str, median: Duration) {
        let extra = match self.throughput {
            Some(Throughput::Elements(n)) => {
                let per_sec = n as f64 / median.as_secs_f64().max(1e-12);
                format!("  ({per_sec:.3e} elem/s)")
            }
            Some(Throughput::Bytes(n)) => {
                let per_sec = n as f64 / median.as_secs_f64().max(1e-12);
                format!("  ({per_sec:.3e} B/s)")
            }
            None => String::new(),
        };
        println!("{}/{id}: median {median:?}{extra}", self.name);
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: self.samples,
            last_median: Duration::ZERO,
        };
        f(&mut b);
        self.report(&id.to_string(), b.last_median);
        self
    }

    /// Runs one parameterized benchmark.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            samples: self.samples,
            last_median: Duration::ZERO,
        };
        f(&mut b, input);
        self.report(&id.to_string(), b.last_median);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Top-level harness handle.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            samples: 10,
            throughput: None,
            _criterion: self,
        }
    }
}

/// Declares a group-runner function invoking each benchmark function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
