//! Offline vendored subset of `rayon`, backed by `std::thread::scope`.
//!
//! This is **real parallelism**, not a sequential stub: every combinator
//! statically partitions its index space into one contiguous block per
//! worker and runs the blocks on scoped OS threads. Two properties the
//! workspace depends on are preserved from real rayon:
//!
//! * **Encounter-order combining** — `collect`, `fold`/`reduce` and
//!   `enumerate` observe items in index order regardless of the thread
//!   count, so deterministic kernels stay bit-identical across pools.
//! * **Panic propagation with payload** — a panicking worker's payload is
//!   resumed on the caller (the simulator downcasts it to its abort
//!   signal), not replaced with a generic message.
//!
//! `ThreadPool::install` scopes an override of the worker count via a
//! thread-local, which is all `num_threads` controls here.

use std::cell::Cell;
use std::ops::Range;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

thread_local! {
    static POOL_OVERRIDE: Cell<Option<usize>> = const { Cell::new(None) };
}

fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

fn effective_threads() -> usize {
    POOL_OVERRIDE
        .with(|c| c.get())
        .unwrap_or_else(default_threads)
        .max(1)
}

/// Worker count of the current pool (the global default, or the pool
/// whose `install` scope we are inside).
pub fn current_num_threads() -> usize {
    effective_threads()
}

/// Error building a [`ThreadPool`].
#[derive(Debug)]
pub struct ThreadPoolBuildError {
    msg: String,
}

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder for a [`ThreadPool`].
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize, // 0 = default
}

impl ThreadPoolBuilder {
    /// A builder with default settings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the exact worker count (0 means the global default).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Builds the pool.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let n = if self.num_threads == 0 {
            default_threads()
        } else {
            self.num_threads
        };
        Ok(ThreadPool { num_threads: n })
    }
}

/// A pool with a fixed worker count. Workers are scoped threads spawned
/// per parallel call rather than persistent OS threads; `install` only
/// scopes the worker-count override.
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Runs `op` with this pool's worker count in effect.
    pub fn install<OP, R>(&self, op: OP) -> R
    where
        OP: FnOnce() -> R + Send,
        R: Send,
    {
        let prev = POOL_OVERRIDE.with(|c| c.replace(Some(self.num_threads)));
        struct Restore(Option<usize>);
        impl Drop for Restore {
            fn drop(&mut self) {
                POOL_OVERRIDE.with(|c| c.set(self.0));
            }
        }
        let _restore = Restore(prev);
        op()
    }

    /// This pool's worker count.
    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }
}

/// Splits `n` items into at most `t` non-empty contiguous blocks.
fn block_bounds(n: usize, t: usize) -> Vec<(usize, usize)> {
    let t = t.min(n).max(1);
    let (base, extra) = (n / t, n % t);
    let mut out = Vec::with_capacity(t);
    let mut start = 0;
    for b in 0..t {
        let len = base + usize::from(b < extra);
        if len > 0 {
            out.push((start, start + len));
            start += len;
        }
    }
    out
}

/// Runs `f(start, end)` for each block of `0..n` on scoped threads (block
/// 0 on the calling thread), returning per-block results in block order.
/// The first worker panic is resumed on the caller with its payload.
fn run_blocks<R, F>(n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize, usize) -> R + Sync,
{
    let bounds = block_bounds(n, effective_threads());
    if bounds.len() <= 1 {
        let (a, b) = *bounds.first().unwrap_or(&(0, 0));
        return if n == 0 { Vec::new() } else { vec![f(a, b)] };
    }
    std::thread::scope(|s| {
        let f = &f;
        let handles: Vec<_> = bounds[1..]
            .iter()
            .map(|&(a, b)| s.spawn(move || f(a, b)))
            .collect();
        let mut payload = None;
        let mut results = Vec::with_capacity(bounds.len());
        match catch_unwind(AssertUnwindSafe(|| f(bounds[0].0, bounds[0].1))) {
            Ok(r) => results.push(r),
            Err(p) => payload = Some(p),
        }
        for h in handles {
            match h.join() {
                Ok(r) => results.push(r),
                Err(p) => {
                    if payload.is_none() {
                        payload = Some(p);
                    }
                }
            }
        }
        if let Some(p) = payload {
            resume_unwind(p);
        }
        results
    })
}

/// Like [`run_blocks`] but hands each worker an owned per-block payload.
fn run_owned_blocks<T, F>(parts: Vec<(usize, T)>, f: F)
where
    T: Send,
    F: Fn(usize, T) + Sync,
{
    if parts.len() <= 1 {
        for (base, part) in parts {
            f(base, part);
        }
        return;
    }
    std::thread::scope(|s| {
        let f = &f;
        let mut iter = parts.into_iter();
        let first = iter.next().expect("non-empty");
        let handles: Vec<_> = iter
            .map(|(base, part)| s.spawn(move || f(base, part)))
            .collect();
        let mut payload = None;
        if let Err(p) = catch_unwind(AssertUnwindSafe(|| f(first.0, first.1))) {
            payload = Some(p);
        }
        for h in handles {
            if let Err(p) = h.join() {
                if payload.is_none() {
                    payload = Some(p);
                }
            }
        }
        if let Some(p) = payload {
            resume_unwind(p);
        }
    })
}

// ---------------------------------------------------------------------
// into_par_iter: ranges and vectors
// ---------------------------------------------------------------------

/// Conversion into a parallel iterator.
pub trait IntoParallelIterator {
    /// The parallel iterator type.
    type Iter;
    /// Converts `self`.
    fn into_par_iter(self) -> Self::Iter;
}

impl IntoParallelIterator for Range<usize> {
    type Iter = ParRange;
    fn into_par_iter(self) -> ParRange {
        ParRange { range: self }
    }
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Iter = ParVec<T>;
    fn into_par_iter(self) -> ParVec<T> {
        ParVec { items: self }
    }
}

/// Parallel iterator over a `usize` range.
pub struct ParRange {
    range: Range<usize>,
}

impl ParRange {
    /// Maps each index through `f`.
    pub fn map<R, F>(self, f: F) -> ParRangeMap<F>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        ParRangeMap {
            range: self.range,
            f,
        }
    }

    /// Runs `f` for every index.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(usize) + Sync,
    {
        let s = self.range.start;
        run_blocks(self.range.len(), |a, b| {
            for i in a..b {
                f(s + i);
            }
        });
    }
}

/// Mapped parallel range.
pub struct ParRangeMap<F> {
    range: Range<usize>,
    f: F,
}

impl<F> ParRangeMap<F> {
    /// Collects mapped values in index order.
    pub fn collect<C, R>(self) -> C
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
        C: FromParallelOutput<R>,
    {
        let s = self.range.start;
        let f = &self.f;
        let blocks = run_blocks(self.range.len(), |a, b| {
            (a..b).map(|i| f(s + i)).collect::<Vec<R>>()
        });
        let mut out = Vec::with_capacity(self.range.len());
        for block in blocks {
            out.extend(block);
        }
        C::from_parallel_output(out)
    }

    /// Runs the mapped closure for every index, discarding results.
    pub fn for_each<R>(self, g: impl Fn(R) + Sync)
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        let s = self.range.start;
        let f = &self.f;
        run_blocks(self.range.len(), |a, b| {
            for i in a..b {
                g(f(s + i));
            }
        });
    }

    /// Per-worker fold in index order (terminal: [`ParRangeFold::reduce`]).
    pub fn fold<A, ID, FF, R>(self, identity: ID, fold_op: FF) -> ParRangeFold<F, ID, FF>
    where
        R: Send,
        A: Send,
        F: Fn(usize) -> R + Sync,
        ID: Fn() -> A + Sync,
        FF: Fn(A, R) -> A + Sync,
    {
        ParRangeFold {
            range: self.range,
            f: self.f,
            identity,
            fold_op,
        }
    }
}

/// Folded parallel range awaiting its reduce step.
pub struct ParRangeFold<F, ID, FF> {
    range: Range<usize>,
    f: F,
    identity: ID,
    fold_op: FF,
}

impl<F, ID, FF> ParRangeFold<F, ID, FF> {
    /// Combines per-worker fold results **in encounter order** — the
    /// indexed-reduce determinism real rayon guarantees.
    pub fn reduce<A, R, RID, RF>(self, reduce_identity: RID, reduce_op: RF) -> A
    where
        A: Send,
        R: Send,
        F: Fn(usize) -> R + Sync,
        ID: Fn() -> A + Sync,
        FF: Fn(A, R) -> A + Sync,
        RID: Fn() -> A + Sync,
        RF: Fn(A, A) -> A + Sync,
    {
        let s = self.range.start;
        let (f, id, ff) = (&self.f, &self.identity, &self.fold_op);
        let parts = run_blocks(self.range.len(), |a, b| {
            let mut acc = id();
            for i in a..b {
                acc = ff(acc, f(s + i));
            }
            acc
        });
        let mut out = reduce_identity();
        for p in parts {
            out = reduce_op(out, p);
        }
        out
    }
}

/// Parallel iterator over an owned vector.
pub struct ParVec<T> {
    items: Vec<T>,
}

impl<T: Send> ParVec<T> {
    /// Runs `f` on every element (elements move to workers by block).
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(T) + Sync,
    {
        let n = self.items.len();
        let bounds = block_bounds(n, effective_threads());
        let mut iter = self.items.into_iter();
        let parts: Vec<(usize, Vec<T>)> = bounds
            .iter()
            .map(|&(a, b)| (a, iter.by_ref().take(b - a).collect()))
            .collect();
        run_owned_blocks(parts, |_base, part| {
            for item in part {
                f(item);
            }
        });
    }
}

// ---------------------------------------------------------------------
// par_iter over shared slices
// ---------------------------------------------------------------------

/// `par_iter` on shared slices.
pub trait ParallelSlice<T: Sync> {
    /// A parallel iterator over `&T`.
    fn par_iter(&self) -> ParIter<'_, T>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> ParIter<'_, T> {
        ParIter { slice: self }
    }
}

/// Parallel shared-slice iterator.
pub struct ParIter<'a, T> {
    slice: &'a [T],
}

impl<'a, T: Sync> ParIter<'a, T> {
    /// Maps each element reference.
    pub fn map<R, F>(self, f: F) -> ParIterMap<'a, T, F>
    where
        R: Send,
        F: Fn(&'a T) -> R + Sync,
    {
        ParIterMap {
            slice: self.slice,
            f,
        }
    }

    /// Pairs with a same-length slice.
    pub fn zip<'b, U: Sync>(self, other: &'b [U]) -> ParZip<'a, 'b, T, U> {
        ParZip {
            a: self.slice,
            b: other,
        }
    }
}

/// Mapped shared-slice iterator.
pub struct ParIterMap<'a, T, F> {
    slice: &'a [T],
    f: F,
}

impl<'a, T: Sync, F> ParIterMap<'a, T, F> {
    /// Collects mapped values in index order.
    pub fn collect<C, R>(self) -> C
    where
        R: Send,
        F: Fn(&'a T) -> R + Sync,
        C: FromParallelOutput<R>,
    {
        let (slice, f) = (self.slice, &self.f);
        let blocks = run_blocks(slice.len(), |a, b| {
            slice[a..b].iter().map(f).collect::<Vec<R>>()
        });
        let mut out = Vec::with_capacity(slice.len());
        for block in blocks {
            out.extend(block);
        }
        C::from_parallel_output(out)
    }
}

/// Zipped pair of shared slices.
pub struct ParZip<'a, 'b, T, U> {
    a: &'a [T],
    b: &'b [U],
}

impl<'a, 'b, T: Sync, U: Sync> ParZip<'a, 'b, T, U> {
    /// Maps each pair of element references.
    pub fn map<R, F>(self, f: F) -> ParZipMap<'a, 'b, T, U, F>
    where
        R: Send,
        F: Fn((&'a T, &'b U)) -> R + Sync,
    {
        ParZipMap {
            a: self.a,
            b: self.b,
            f,
        }
    }
}

/// Mapped zip of two shared slices.
pub struct ParZipMap<'a, 'b, T, U, F> {
    a: &'a [T],
    b: &'b [U],
    f: F,
}

impl<'a, 'b, T: Sync, U: Sync, F> ParZipMap<'a, 'b, T, U, F> {
    /// Collects mapped values in index order.
    pub fn collect<C, R>(self) -> C
    where
        R: Send,
        F: Fn((&'a T, &'b U)) -> R + Sync,
        C: FromParallelOutput<R>,
    {
        let n = self.a.len().min(self.b.len());
        let (xs, ys, f) = (self.a, self.b, &self.f);
        let blocks = run_blocks(n, |a, b| {
            (a..b).map(|i| f((&xs[i], &ys[i]))).collect::<Vec<R>>()
        });
        let mut out = Vec::with_capacity(n);
        for block in blocks {
            out.extend(block);
        }
        C::from_parallel_output(out)
    }
}

/// Collection target of a parallel `collect` (only `Vec` is needed).
pub trait FromParallelOutput<T> {
    /// Builds the collection from items in encounter order.
    fn from_parallel_output(items: Vec<T>) -> Self;
}

impl<T> FromParallelOutput<T> for Vec<T> {
    fn from_parallel_output(items: Vec<T>) -> Self {
        items
    }
}

// ---------------------------------------------------------------------
// par_chunks_mut over mutable slices
// ---------------------------------------------------------------------

/// `par_chunks_mut` on mutable slices.
pub trait ParallelSliceMut<T: Send> {
    /// Parallel iterator over non-overlapping mutable chunks.
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T> {
        assert!(chunk_size > 0, "chunk size must be non-zero");
        ParChunksMut {
            slice: self,
            size: chunk_size,
        }
    }
}

/// Parallel mutable-chunk iterator.
pub struct ParChunksMut<'a, T> {
    slice: &'a mut [T],
    size: usize,
}

impl<'a, T: Send> ParChunksMut<'a, T> {
    /// Attaches chunk indices.
    pub fn enumerate(self) -> ParChunksMutEnumerate<'a, T> {
        ParChunksMutEnumerate {
            slice: self.slice,
            size: self.size,
        }
    }

    /// Runs `f` on every chunk.
    pub fn for_each<F>(self, f: F)
    where
        F: for<'b> Fn(&'b mut [T]) + Sync,
    {
        self.enumerate().for_each(|(_, chunk)| f(chunk));
    }
}

/// Enumerated parallel mutable-chunk iterator.
pub struct ParChunksMutEnumerate<'a, T> {
    slice: &'a mut [T],
    size: usize,
}

impl<'a, T: Send> ParChunksMutEnumerate<'a, T> {
    /// Runs `f` on every `(index, chunk)` pair. Workers receive disjoint
    /// sub-slices split at chunk boundaries, so indices match the
    /// sequential `chunks_mut(..).enumerate()` exactly.
    pub fn for_each<F>(self, f: F)
    where
        F: for<'b> Fn((usize, &'b mut [T])) + Sync,
    {
        let size = self.size;
        let n_chunks = self.slice.len().div_ceil(size);
        let bounds = block_bounds(n_chunks, effective_threads());
        let mut rest = self.slice;
        let mut parts = Vec::with_capacity(bounds.len());
        for &(a, b) in &bounds {
            let take = ((b - a) * size).min(rest.len());
            let (head, tail) = rest.split_at_mut(take);
            parts.push((a, head));
            rest = tail;
        }
        run_owned_blocks(parts, |base, part| {
            for (j, chunk) in part.chunks_mut(size).enumerate() {
                f((base + j, chunk));
            }
        });
    }
}

pub mod prelude {
    //! Glob-import surface mirroring `rayon::prelude`.
    pub use crate::{IntoParallelIterator, ParallelSlice, ParallelSliceMut};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn blocks_cover_exactly() {
        for n in [0usize, 1, 2, 7, 64, 1000] {
            for t in [1usize, 2, 3, 8, 200] {
                let b = block_bounds(n, t);
                let mut next = 0;
                for &(a, e) in &b {
                    assert_eq!(a, next);
                    assert!(e > a);
                    next = e;
                }
                assert_eq!(next, n);
            }
        }
    }

    #[test]
    fn range_map_collect_in_order() {
        let v: Vec<usize> = (0..10_000).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(v, (0..10_000).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn fold_reduce_matches_sequential() {
        let total: usize = (0..1000)
            .into_par_iter()
            .map(|i| i)
            .fold(|| 0usize, |a, b| a + b)
            .reduce(|| 0usize, |a, b| a + b);
        assert_eq!(total, 499_500);
    }

    #[test]
    fn chunks_mut_enumerate_indices() {
        let mut data = vec![0usize; 103];
        data.par_chunks_mut(10).enumerate().for_each(|(i, chunk)| {
            for v in chunk.iter_mut() {
                *v = i;
            }
        });
        for (k, &v) in data.iter().enumerate() {
            assert_eq!(v, k / 10);
        }
    }

    #[test]
    fn par_iter_zip_map() {
        let a: Vec<f32> = (0..513).map(|i| i as f32).collect();
        let b: Vec<f32> = (0..513).map(|i| (i * 2) as f32).collect();
        let sums: Vec<f32> = a.par_iter().zip(&b).map(|(&x, &y)| x + y).collect();
        assert!(sums.iter().enumerate().all(|(i, &s)| s == (i * 3) as f32));
        let doubled: Vec<f32> = a.par_iter().map(|&x| x * 2.0).collect();
        assert_eq!(doubled[512], 1024.0);
    }

    #[test]
    fn vec_into_par_iter_for_each_visits_all() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let seen = AtomicUsize::new(0);
        let items: Vec<usize> = (0..777).collect();
        items.into_par_iter().for_each(|i| {
            seen.fetch_add(i, Ordering::Relaxed);
        });
        assert_eq!(seen.load(Ordering::Relaxed), 777 * 776 / 2);
    }

    #[test]
    fn panic_payload_propagates() {
        struct Marker(u32);
        let caught = std::panic::catch_unwind(|| {
            (0..64usize).into_par_iter().for_each(|i| {
                if i == 40 {
                    std::panic::panic_any(Marker(7));
                }
            });
        });
        let payload = caught.expect_err("must panic");
        let marker = payload.downcast::<Marker>().expect("payload preserved");
        assert_eq!(marker.0, 7);
    }

    #[test]
    fn install_overrides_thread_count() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        assert_eq!(pool.current_num_threads(), 3);
        let inside = pool.install(current_num_threads);
        assert_eq!(inside, 3);
        assert_ne!(current_num_threads(), 0);
    }
}
