//! Offline vendored subset of `proptest`.
//!
//! Supports the strategy/macro surface this workspace's property tests
//! use: range strategies, tuples, `Just`, `prop_map` / `prop_flat_map` /
//! `prop_perturb`, `prop::collection::vec`, `prop::sample::select`,
//! `prop::bool::ANY`, `any::<T>()`, the `proptest!` macro (with an
//! optional `#![proptest_config(..)]` header) and the `prop_assert*`
//! macros. Cases are generated from a **deterministic** per-test seed;
//! there is no shrinking — a failing case reports its inputs via `Debug`.

pub mod test_runner {
    //! Runner configuration and failure plumbing.

    /// Why a test case failed.
    #[derive(Debug, Clone)]
    pub struct TestCaseError {
        msg: String,
    }

    impl TestCaseError {
        /// A failed assertion / rejected case with an explanation.
        pub fn fail(msg: impl Into<String>) -> Self {
            Self { msg: msg.into() }
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.msg)
        }
    }

    /// Runner configuration (`ProptestConfig` in the prelude).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Self { cases: 64 }
        }
    }

    /// Deterministic split-mix generator driving all strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds from an arbitrary value (test name hash + case index).
        pub fn new(seed: u64) -> Self {
            Self {
                state: seed ^ 0x9E37_79B9_7F4A_7C15,
            }
        }

        /// Next 64 random bits (splitmix64).
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Next 32 random bits.
        pub fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        /// Uniform index in `[0, n)` (`n > 0`).
        pub fn index(&mut self, n: usize) -> usize {
            (self.next_u64() % n.max(1) as u64) as usize
        }

        /// Forks an independent child generator.
        pub fn fork(&mut self) -> TestRng {
            TestRng::new(self.next_u64())
        }
    }

    /// FNV-1a over the test name: the per-test base seed.
    pub fn seed_for(name: &str, case: u64) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.as_bytes() {
            h ^= *b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15)
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Chains into a dependent strategy.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }

        /// Perturbs generated values with extra randomness.
        fn prop_perturb<O, F>(self, f: F) -> Perturb<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value, TestRng) -> O,
        {
            Perturb { inner: self, f }
        }
    }

    /// Always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// [`Strategy::prop_map`] adapter.
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// [`Strategy::prop_flat_map`] adapter.
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;
        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// [`Strategy::prop_perturb`] adapter.
    pub struct Perturb<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value, TestRng) -> O> Strategy for Perturb<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            let value = self.inner.generate(rng);
            let child = rng.fork();
            (self.f)(value, child)
        }
    }

    macro_rules! int_range_strategy {
        ($($ty:ty),*) => {
            $(
                impl Strategy for Range<$ty> {
                    type Value = $ty;
                    fn generate(&self, rng: &mut TestRng) -> $ty {
                        assert!(self.start < self.end, "empty range strategy");
                        let span = (self.end as i128 - self.start as i128) as u128;
                        let off = (rng.next_u64() as u128) % span;
                        (self.start as i128 + off as i128) as $ty
                    }
                }
                impl Strategy for RangeInclusive<$ty> {
                    type Value = $ty;
                    fn generate(&self, rng: &mut TestRng) -> $ty {
                        let (lo, hi) = (*self.start(), *self.end());
                        assert!(lo <= hi, "empty range strategy");
                        let span = (hi as i128 - lo as i128) as u128 + 1;
                        let off = (rng.next_u64() as u128) % span;
                        (lo as i128 + off as i128) as $ty
                    }
                }
            )*
        };
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! float_range_strategy {
        ($($ty:ty),*) => {
            $(
                impl Strategy for Range<$ty> {
                    type Value = $ty;
                    fn generate(&self, rng: &mut TestRng) -> $ty {
                        assert!(self.start < self.end, "empty range strategy");
                        let unit = (rng.next_u64() >> 11) as f64
                            * (1.0 / (1u64 << 53) as f64);
                        self.start + (self.end - self.start) * unit as $ty
                    }
                }
            )*
        };
    }

    float_range_strategy!(f32, f64);

    macro_rules! tuple_strategy {
        ($(($($name:ident),+)),+ $(,)?) => {
            $(
                impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                    type Value = ($($name::Value,)+);
                    #[allow(non_snake_case)]
                    fn generate(&self, rng: &mut TestRng) -> Self::Value {
                        let ($($name,)+) = self;
                        ($($name.generate(rng),)+)
                    }
                }
            )+
        };
    }

    tuple_strategy!(
        (A),
        (A, B),
        (A, B, C),
        (A, B, C, D),
        (A, B, C, D, E),
        (A, B, C, D, E, G)
    );

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// Generates an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for u64 {
        fn arbitrary(rng: &mut TestRng) -> u64 {
            rng.next_u64()
        }
    }
    impl Arbitrary for u32 {
        fn arbitrary(rng: &mut TestRng) -> u32 {
            rng.next_u32()
        }
    }
    impl Arbitrary for usize {
        fn arbitrary(rng: &mut TestRng) -> usize {
            rng.next_u64() as usize
        }
    }
    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// `any::<T>()` strategy object.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T> Any<T> {
        /// Const constructor (used by `prop::bool::ANY`).
        pub const fn new() -> Self {
            Any(std::marker::PhantomData)
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The full value range of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any::new()
    }
}

pub mod prop {
    //! The `prop::` namespace (`collection`, `sample`, `bool`).

    pub mod collection {
        //! Collection strategies.
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        use std::ops::Range;

        /// Length bounds for [`vec()`]: a fixed size or a half-open range.
        pub trait SizeBounds {
            /// `(min, max)` inclusive length bounds.
            fn bounds(&self) -> (usize, usize);
        }

        impl SizeBounds for usize {
            fn bounds(&self) -> (usize, usize) {
                (*self, *self)
            }
        }

        impl SizeBounds for Range<usize> {
            fn bounds(&self) -> (usize, usize) {
                assert!(self.start < self.end, "empty size range");
                (self.start, self.end - 1)
            }
        }

        /// Strategy for `Vec`s of strategy-generated elements.
        pub struct VecStrategy<S> {
            element: S,
            min: usize,
            max: usize,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let len = self.min + rng.index(self.max - self.min + 1);
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }

        /// A vector of `element`-generated items with length in `size`.
        pub fn vec<S: Strategy>(element: S, size: impl SizeBounds) -> VecStrategy<S> {
            let (min, max) = size.bounds();
            VecStrategy { element, min, max }
        }
    }

    pub mod sample {
        //! Sampling from explicit value sets.
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;

        /// Strategy choosing uniformly from a fixed list.
        pub struct Select<T: Clone> {
            options: Vec<T>,
        }

        impl<T: Clone> Strategy for Select<T> {
            type Value = T;
            fn generate(&self, rng: &mut TestRng) -> T {
                self.options[rng.index(self.options.len())].clone()
            }
        }

        /// Chooses one of `options` uniformly.
        pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
            assert!(!options.is_empty(), "select needs at least one option");
            Select { options }
        }
    }

    pub mod bool {
        //! Boolean strategies.
        use crate::strategy::Any;

        /// Either boolean, uniformly.
        pub const ANY: Any<::core::primitive::bool> = Any::new();
    }
}

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude`.
    pub use crate::prop;
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Asserts a condition inside a `proptest!` body, failing the case (not
/// aborting the process) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Equality assertion for `proptest!` bodies.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{:?}` == `{:?}`",
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)*);
    }};
}

/// Inequality assertion for `proptest!` bodies.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{:?}` != `{:?}`",
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, $($fmt)*);
    }};
}

/// Declares property tests: each `fn name(arg in strategy, ..) { body }`
/// becomes a `#[test]` running `config.cases` deterministic cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($config) $($rest)*);
    };
    (@with_config ($config:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                #[allow(unused_imports)]
                use $crate::strategy::Strategy as _;
                let config: $crate::test_runner::Config = $config;
                let strategies = ($($strategy,)+);
                for case in 0..config.cases as u64 {
                    let mut rng = $crate::test_runner::TestRng::new(
                        $crate::test_runner::seed_for(
                            concat!(module_path!(), "::", stringify!($name)),
                            case,
                        ),
                    );
                    let values = strategies.generate(&mut rng);
                    let inputs = format!("{values:?}");
                    let ($($arg,)+) = values;
                    let outcome: ::core::result::Result<
                        (),
                        $crate::test_runner::TestCaseError,
                    > = (|| {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                    if let ::core::result::Result::Err(e) = outcome {
                        panic!("proptest case #{case} failed: {e}\n  inputs: {inputs}");
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(
            @with_config ($crate::test_runner::Config::default()) $($rest)*
        );
    };
}
